"""Units for repro.exec attempts/lease/checkpoint — the shared execution
core the sweep runner, fabric coordinator, and service client draw on."""

import os

import pytest

from repro.common.errors import ConfigurationError
from repro.exec.attempts import AttemptTracker, RetryPolicy, backoff_delay
from repro.exec.checkpoint import (
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.exec.lease import LeaseTable


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- attempts ---------------------------------------------------------------

class TestBackoffDelay:
    def test_doubles_per_failed_attempt(self):
        assert backoff_delay(0.1, 1) == pytest.approx(0.1)
        assert backoff_delay(0.1, 2) == pytest.approx(0.2)
        assert backoff_delay(0.1, 4) == pytest.approx(0.8)

    def test_cap_clamps_the_curve(self):
        assert backoff_delay(0.1, 10, cap_s=2.0) == pytest.approx(2.0)
        assert backoff_delay(0.1, 1, cap_s=2.0) == pytest.approx(0.1)

    def test_rejects_zero_failed_attempts(self):
        with pytest.raises(ValueError, match=">= 1"):
            backoff_delay(0.1, 0)

    def test_is_the_curve_every_layer_pins(self):
        # The client and the runner policy must produce identical delays —
        # that is the whole point of centralizing the formula.
        policy = RetryPolicy(backoff_s=0.25)
        for failed in (1, 2, 3):
            assert policy.backoff_for(failed) == \
                backoff_delay(0.25, failed)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="backoff_s"):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ConfigurationError, match="timeout_s"):
            RetryPolicy(timeout_s=0)

    def test_runner_reexport_is_the_same_class(self):
        # repro.sweep.runner re-exports (not redefines) the exec policy:
        # exactly one retry implementation remains in the codebase.
        from repro.sweep.runner import RetryPolicy as runner_policy

        assert runner_policy is RetryPolicy


class TestAttemptTracker:
    def test_charge_and_exhaustion(self):
        tracker = AttemptTracker(max_attempts=2)
        assert tracker.remaining(7) == 2
        assert tracker.charge(7) == 1
        assert not tracker.exhausted(7)
        assert tracker.charge(7) == 2
        assert tracker.exhausted(7)
        assert tracker.remaining(7) == 0
        assert tracker.attempts(7) == 2
        assert tracker.attempts(8) == 0

    def test_snapshot_restore_round_trip(self):
        tracker = AttemptTracker(max_attempts=3)
        tracker.charge(0)
        tracker.charge(0)
        tracker.charge(5)
        snap = tracker.snapshot()
        assert snap == {"0": 2, "5": 1}
        fresh = AttemptTracker(max_attempts=3)
        fresh.restore(snap, key=int)
        assert fresh.attempts(0) == 2
        assert fresh.attempts(5) == 1
        assert not fresh.exhausted(0)
        fresh.charge(0)
        assert fresh.exhausted(0)

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            AttemptTracker(0)


# -- leases -----------------------------------------------------------------

class TestLeaseTable:
    def test_issue_release_and_held_by(self):
        clock = FakeClock()
        table = LeaseTable(10.0, clock=clock)
        a = table.issue("shard-0", "fast")
        b = table.issue("shard-1", "fast")
        c = table.issue("shard-2", "slow")
        assert len(table) == 3
        assert table.held_by("fast") == 2
        assert table.held_by("slow") == 1
        assert table.held_by("idle") == 0
        assert table.release(b.ticket) is b
        assert table.held_by("fast") == 1
        assert table.release(b.ticket) is None   # already settled
        assert {lease.ticket for lease in table.live()} == \
            {a.ticket, c.ticket}

    def test_heartbeats_keep_a_lease_alive(self):
        clock = FakeClock()
        table = LeaseTable(5.0, clock=clock)
        lease = table.issue("shard-0", "worker")
        clock.advance(4.0)
        lease.beat()
        clock.advance(4.0)
        assert table.expire_stale() == []
        clock.advance(5.1)
        stale = table.expire_stale()
        assert stale == [lease]
        assert lease.expired
        assert table.n_expired == 1
        assert len(table) == 0

    def test_lookup_survives_expiry(self):
        # Completions can arrive after expiry; the orchestrator still
        # needs the lease's identity to judge the late result.
        clock = FakeClock()
        table = LeaseTable(1.0, clock=clock)
        lease = table.issue("shard-0", "straggler")
        clock.advance(2.0)
        table.expire_stale()
        found = table.lookup(lease.ticket)
        assert found is lease
        assert found.expired
        assert found.item == "shard-0"

    def test_age_tracks_the_clock(self):
        clock = FakeClock()
        table = LeaseTable(60.0, clock=clock)
        lease = table.issue("x", "w")
        clock.advance(3.0)
        assert lease.age() == pytest.approx(3.0)

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="positive"):
            LeaseTable(0.0)


# -- checkpoints ------------------------------------------------------------

class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        payload = {"version": 1, "merged_through": 3,
                   "attempts": {"0": 2}}
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload
        # Byte-determinism: identical state, identical file bytes.
        first = open(path, "rb").read()
        write_checkpoint(path, payload)
        assert open(path, "rb").read() == first

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(path, {"a": 1})
        assert os.listdir(str(tmp_path)) == ["run.ckpt"]

    def test_missing_file_reads_none(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "absent.ckpt")) is None

    def test_torn_or_junk_reads_none(self, tmp_path):
        path = str(tmp_path / "torn.ckpt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"version": 1, "merged')
        assert read_checkpoint(path) is None
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[1, 2, 3]\n")      # JSON, but not an object
        assert read_checkpoint(path) is None

    def test_clear_is_idempotent(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(path, {"a": 1})
        clear_checkpoint(path)
        assert read_checkpoint(path) is None
        clear_checkpoint(path)           # missing is fine

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nest" / "run.ckpt")
        write_checkpoint(path, {"a": 1})
        assert read_checkpoint(path) == {"a": 1}
