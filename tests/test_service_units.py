"""Unit tests for the service's building blocks: schemas and events.

No HTTP here — these exercise the request-schema validator and the SSE
event broadcaster directly, on a locally-driven event loop.
"""

import asyncio
import json
import threading

import pytest

from repro.service.events import (
    EventBroadcaster,
    MAX_EVENT_HISTORY,
    format_sse,
    is_terminal,
)
from repro.service.schemas import (
    CANCEL_SCHEMA,
    SUBMIT_SCHEMA,
    SchemaError,
    validate,
)


class TestValidate:
    def test_accepts_matching_object(self):
        validate({"spec": {}, "workers": 4, "energy": True}, SUBMIT_SCHEMA)
        validate({"spec": {}, "retries": 0, "timeout_s": 1.5,
                  "backoff_s": 0}, SUBMIT_SCHEMA)
        validate({}, CANCEL_SCHEMA)

    def test_missing_required_key(self):
        with pytest.raises(SchemaError) as err:
            validate({"workers": 1}, SUBMIT_SCHEMA)
        assert "missing required key 'spec'" in str(err.value)
        assert err.value.path == "body"

    def test_unknown_key_names_path_and_valid_keys(self):
        with pytest.raises(SchemaError) as err:
            validate({"spec": {}, "wrokers": 1}, SUBMIT_SCHEMA)
        assert err.value.path == "body.wrokers"
        assert "workers" in str(err.value)

    def test_type_mismatch_names_both_types(self):
        with pytest.raises(SchemaError) as err:
            validate({"spec": {}, "workers": "four"}, SUBMIT_SCHEMA)
        assert "expected integer, got string" in str(err.value)

    def test_bool_is_not_an_integer(self):
        # bool subclasses int in python; the schema must still reject it.
        with pytest.raises(SchemaError) as err:
            validate({"spec": {}, "workers": True}, SUBMIT_SCHEMA)
        assert "expected integer" in str(err.value)
        with pytest.raises(SchemaError):
            validate({"spec": {}, "timeout_s": False}, SUBMIT_SCHEMA)

    def test_minimum_maximum(self):
        with pytest.raises(SchemaError) as err:
            validate({"spec": {}, "workers": 0}, SUBMIT_SCHEMA)
        assert "must be >= 1" in str(err.value)
        with pytest.raises(SchemaError) as err:
            validate({"spec": {}, "workers": 65}, SUBMIT_SCHEMA)
        assert "must be <= 64" in str(err.value)
        with pytest.raises(SchemaError):
            validate({"spec": {}, "retries": 17}, SUBMIT_SCHEMA)

    def test_enum(self):
        validate({"spec": {}, "kernel_variant": "generic"}, SUBMIT_SCHEMA)
        with pytest.raises(SchemaError) as err:
            validate({"spec": {}, "kernel_variant": "turbo"}, SUBMIT_SCHEMA)
        assert "'turbo'" in str(err.value)

    def test_items_recursion_names_index(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        validate([1, 2, 3], schema)
        with pytest.raises(SchemaError) as err:
            validate([1, "two", 3], schema, path="body.seeds")
        assert err.value.path == "body.seeds[1]"

    def test_nested_path_in_message(self):
        schema = {
            "type": "object",
            "properties": {"inner": {"type": "object",
                                     "properties": {"n": {"type": "integer"}}}},
        }
        with pytest.raises(SchemaError) as err:
            validate({"inner": {"n": "x"}}, schema)
        assert err.value.path == "body.inner.n"

    def test_cancel_schema_rejects_payloads(self):
        with pytest.raises(SchemaError):
            validate({"force": True}, CANCEL_SCHEMA)


class TestFormatSSE:
    def test_wire_format(self):
        wire = format_sse((7, "point", {"b": 2, "a": 1}))
        assert wire == b'id: 7\nevent: point\ndata: {"a":1,"b":2}\n\n'

    def test_data_is_single_line(self):
        wire = format_sse((1, "x", {"text": "line1\nline2"}))
        # the newline lives escaped inside the JSON, never on the wire
        assert wire.count(b"\n") == 4
        body = wire.split(b"data: ")[1].rstrip(b"\n")
        assert json.loads(body) == {"text": "line1\nline2"}

    def test_is_terminal(self):
        assert is_terminal("done") and is_terminal("failed")
        assert is_terminal("cancelled")
        assert not is_terminal("point") and not is_terminal("table")


def drive(coro):
    """Run a coroutine on a fresh event loop (3.9-safe)."""
    return asyncio.new_event_loop().run_until_complete(coro)


async def collect(broadcaster, limit=None):
    events = []
    stream = broadcaster.subscribe()
    try:
        async for event in stream:
            events.append(event)
            if limit is not None and len(events) >= limit:
                break
    finally:
        await stream.aclose()
    return events


class TestEventBroadcaster:
    def test_replay_then_live_with_monotonic_ids(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            broadcaster.publish("queued", {"n": 1})
            broadcaster.publish("running", {"n": 2})
            await asyncio.sleep(0)  # let call_soon_threadsafe land

            late = asyncio.ensure_future(collect(broadcaster))
            await asyncio.sleep(0)
            broadcaster.publish("point", {"n": 3})
            broadcaster.publish("done", {"n": 4})
            broadcaster.close()
            return await late

        events = drive(scenario())
        assert [(eid, name) for eid, name, _d in events] == [
            (1, "queued"), (2, "running"), (3, "point"), (4, "done"),
        ]

    def test_subscriber_after_close_gets_full_history(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            broadcaster.publish("queued", {})
            broadcaster.publish("done", {})
            broadcaster.close()
            await asyncio.sleep(0)
            assert broadcaster.closed
            return await collect(broadcaster)

        events = drive(scenario())
        assert [name for _eid, name, _d in events] == ["queued", "done"]

    def test_publish_after_close_is_dropped(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            broadcaster.publish("done", {})
            broadcaster.close()
            broadcaster.publish("straggler", {})
            await asyncio.sleep(0)
            return broadcaster.history()

        history = drive(scenario())
        assert [name for _eid, name, _d in history] == ["done"]

    def test_reset_clears_history_but_ids_keep_increasing(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            broadcaster.publish("queued", {})
            broadcaster.publish("done", {})
            broadcaster.close()
            broadcaster.reset()
            broadcaster.publish("queued", {"run": 2})
            await asyncio.sleep(0)
            return broadcaster.history()

        history = drive(scenario())
        assert [(eid, name) for eid, name, _d in history] == [(3, "queued")]

    def test_reset_releases_stuck_subscribers(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            broadcaster.publish("queued", {})
            await asyncio.sleep(0)
            subscriber = asyncio.ensure_future(collect(broadcaster))
            await asyncio.sleep(0)
            broadcaster.reset()  # no close() first: reset must release
            return await asyncio.wait_for(subscriber, 5)

        events = drive(scenario())
        assert [name for _eid, name, _d in events] == ["queued"]

    def test_slow_subscriber_does_not_block_publisher_or_peers(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            slow = broadcaster.subscribe()
            fast = asyncio.ensure_future(collect(broadcaster))
            await asyncio.sleep(0)
            for n in range(50):
                broadcaster.publish("point", {"n": n})
            broadcaster.publish("done", {})
            broadcaster.close()
            events = await asyncio.wait_for(fast, 5)
            # the slow subscriber never consumed anything — queues are
            # per-subscriber and unbounded, so nobody waited on it
            await slow.aclose()
            return events

        events = drive(scenario())
        assert len(events) == 51
        assert events[-1][1] == "done"

    def test_history_overflow_yields_truncated_marker(self):
        async def scenario():
            broadcaster = EventBroadcaster(asyncio.get_running_loop())
            extra = 5
            for n in range(MAX_EVENT_HISTORY + extra):
                broadcaster._publish_on_loop("point", {"n": n})
            broadcaster._close_on_loop()
            events = await collect(broadcaster)
            return extra, events

        extra, events = drive(scenario())
        assert events[0][1] == "truncated"
        assert events[0][2] == {"dropped_events": extra}
        assert len(events) == MAX_EVENT_HISTORY + 1  # marker + retained

    def test_cross_thread_publish(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            broadcaster = EventBroadcaster(loop)
            subscriber = asyncio.ensure_future(collect(broadcaster))
            await asyncio.sleep(0)

            def worker():
                for n in range(10):
                    broadcaster.publish("point", {"n": n})
                broadcaster.publish("done", {})
                broadcaster.close()

            thread = threading.Thread(target=worker)
            thread.start()
            events = await asyncio.wait_for(subscriber, 10)
            thread.join()
            return events

        events = drive(scenario())
        assert [d.get("n") for _eid, name, d in events if name == "point"] \
            == list(range(10))
        assert events[-1][1] == "done"
