"""Sweep runner: determinism, caching, sharding, correctness vs the engine."""

from repro.engine import ENGINE_VERSION, Pipeline
from repro.sweep.grid import SweepSpec
from repro.sweep.runner import execute_point, run_sweep
from repro.sweep.store import ResultStore
from repro.workloads import generate_trace


def small_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        name="small",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=300,
        seeds=(7,),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestRunner:
    def test_computes_every_point(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "store.jsonl"))
        summary = run_sweep(spec.expand(), store, workers=1)
        assert summary.n_points == 4
        assert summary.n_computed == 4
        assert summary.n_cached == 0
        assert len(store) == 4
        assert set(summary.timings) == set(store.keys())
        assert all(t >= 0 for t in summary.timings.values())

    def test_second_run_all_cache_hits(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "store.jsonl")
        run_sweep(spec.expand(), store=ResultStore(path), workers=1)
        with open(path, "rb") as fh:
            first_bytes = fh.read()
        summary = run_sweep(spec.expand(), store=ResultStore(path), workers=1)
        assert summary.n_computed == 0
        assert summary.n_cached == 4
        assert summary.cache_hit_rate == 1.0
        with open(path, "rb") as fh:
            assert fh.read() == first_bytes

    def test_two_fresh_runs_byte_identical(self, tmp_path):
        spec = small_spec()
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        run_sweep(spec.expand(), ResultStore(path_a), workers=1)
        run_sweep(spec.expand(), ResultStore(path_b), workers=1)
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_multiprocess_matches_inline(self, tmp_path):
        spec = small_spec(cluster_counts=(2, 4, 8))  # 6 points >= pool floor
        path_inline = str(tmp_path / "inline.jsonl")
        path_pool = str(tmp_path / "pool.jsonl")
        run_sweep(spec.expand(), ResultStore(path_inline), workers=1)
        summary = run_sweep(spec.expand(), ResultStore(path_pool), workers=2)
        assert summary.n_workers == 2
        assert summary.n_computed == 6
        with open(path_inline, "rb") as fi, open(path_pool, "rb") as fp:
            assert fi.read() == fp.read()

    def test_partial_store_resumes(self, tmp_path):
        spec = small_spec()
        points = spec.expand()
        path = str(tmp_path / "store.jsonl")
        run_sweep(points[:2], ResultStore(path), workers=1)
        summary = run_sweep(points, ResultStore(path), workers=1)
        assert summary.n_cached == 2
        assert summary.n_computed == 2
        assert len(ResultStore(path)) == 4

    def test_force_recomputes(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "store.jsonl"))
        run_sweep(spec.expand(), store, workers=1)
        summary = run_sweep(spec.expand(), store, workers=1, force=True)
        assert summary.n_computed == 4
        assert summary.n_cached == 0

    def test_duplicate_points_computed_once(self, tmp_path):
        points = small_spec().expand()
        store = ResultStore(str(tmp_path / "store.jsonl"))
        summary = run_sweep(points + points, store, workers=1)
        assert summary.n_points == 4
        assert summary.n_computed == 4


class TestRecordContents:
    def test_record_matches_direct_engine_run(self, tmp_path):
        spec = small_spec()
        points = spec.expand()
        store = ResultStore(str(tmp_path / "store.jsonl"))
        run_sweep(points, store, workers=1)
        for point in points:
            record = store.get(point.key())
            trace = generate_trace(point.mix, point.n_instructions,
                                   seed=point.seed)
            expected = Pipeline(point.config).run_record(trace)
            assert record["result"] == expected["result"]
            assert record["engine_version"] == ENGINE_VERSION
            assert record["config_digest"] == point.config.config_digest()
            assert record["point"] == point.to_dict()
            # Variant provenance is summary-only: stored records must stay
            # byte-identical whichever kernel variant computed them.
            assert "kernel_variant" not in record

    def test_summary_reports_resolved_kernel_variant(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "store.jsonl"))
        summary = run_sweep(spec.expand(), store, workers=1,
                            kernel_variant="generic")
        assert summary.kernel_variant == "generic"
        assert "[generic]" in summary.describe()

    def test_execute_point_round_trips_through_dicts(self):
        point = small_spec().expand()[0]
        record, elapsed = execute_point(point.to_dict())
        assert record["key"] == point.key()
        assert elapsed >= 0
        assert record["result"]["n_instructions"] == point.n_instructions

    def test_custom_mix_survives_fresh_worker_interpreter(self, tmp_path):
        # Under the spawn start method a worker re-imports the package with
        # a pristine registry; the payload must carry the mix definition.
        from repro.common.config import ProcessorConfig
        from repro.common.types import InstrClass
        from repro.sweep.grid import ExperimentPoint
        from repro.sweep.runner import _payload_for
        from repro.workloads import MIX_REGISTRY, WorkloadMix, register_mix

        mix = WorkloadMix(
            name="spawn_test_mix",
            class_weights={InstrClass.INT_ALU: 0.6, InstrClass.LOAD: 0.4},
        )
        register_mix(mix)
        try:
            point = ExperimentPoint(ProcessorConfig(), "spawn_test_mix", 200, 3)
            key = point.key()
            payload = _payload_for(point)
            # Simulate the fresh interpreter: the registry forgets the mix.
            MIX_REGISTRY.pop("spawn_test_mix")
            record, _elapsed = execute_point(payload)
            assert record["key"] == key
            assert record["result"]["n_instructions"] == 200
            # ... and a full sweep over the custom mix works too.
            register_mix(mix, overwrite=True)
            store = ResultStore(str(tmp_path / "store.jsonl"))
            summary = run_sweep([point], store, workers=1)
            assert summary.n_computed == 1
            assert store.get(key)["result"] == record["result"]
        finally:
            MIX_REGISTRY.pop("spawn_test_mix", None)


class TestTraceMemoization:
    """_run-time trace cache: a grid that varies only the config must
    generate each (mix, n, seed) trace once per worker process."""

    def _count_generations(self, monkeypatch):
        import repro.sweep.runner as runner_mod

        calls = []
        real = runner_mod.generate_trace

        def counting(mix, n, seed):
            calls.append((mix, n, seed))
            return real(mix, n, seed=seed)

        monkeypatch.setattr(runner_mod, "generate_trace", counting)
        return calls

    def test_config_only_grid_generates_one_trace(self, tmp_path, monkeypatch):
        from repro.sweep.runner import clear_trace_cache

        clear_trace_cache()
        calls = self._count_generations(monkeypatch)
        spec = small_spec(cluster_counts=(2, 3, 4, 8))  # 8 configs, 1 workload
        store = ResultStore(str(tmp_path / "store.jsonl"))
        summary = run_sweep(spec.expand(), store, workers=1)
        assert summary.n_computed == 8
        assert len(calls) == 1

    def test_distinct_workloads_each_generated(self, tmp_path, monkeypatch):
        from repro.sweep.runner import clear_trace_cache

        clear_trace_cache()
        calls = self._count_generations(monkeypatch)
        spec = small_spec(seeds=(1, 2, 3))
        store = ResultStore(str(tmp_path / "store.jsonl"))
        run_sweep(spec.expand(), store, workers=1)
        assert len(calls) == 3  # one per seed, shared across the 4 configs

    def test_lru_bound_evicts_oldest(self, monkeypatch):
        import repro.sweep.runner as runner_mod
        from repro.sweep.runner import (
            TRACE_CACHE_SIZE,
            _cached_trace,
            clear_trace_cache,
        )

        clear_trace_cache()
        calls = self._count_generations(monkeypatch)
        for seed in range(TRACE_CACHE_SIZE + 1):
            _cached_trace("int_heavy", 100, seed)
        assert len(runner_mod._TRACE_CACHE) == TRACE_CACHE_SIZE
        # Seed 0 was evicted: fetching it again regenerates (and evicts
        # seed 1, now the oldest entry).
        n_before = len(calls)
        _cached_trace("int_heavy", 100, 0)
        assert len(calls) == n_before + 1
        # The most recent seed is still resident: no regeneration.
        _cached_trace("int_heavy", 100, TRACE_CACHE_SIZE)
        assert len(calls) == n_before + 1

    def test_redefined_mix_busts_the_cache(self, monkeypatch):
        from repro.common.types import InstrClass
        from repro.sweep.runner import _cached_trace, clear_trace_cache
        from repro.workloads import MIX_REGISTRY, WorkloadMix, register_mix

        clear_trace_cache()
        calls = self._count_generations(monkeypatch)
        mix = WorkloadMix(
            name="memo_mix",
            class_weights={InstrClass.INT_ALU: 0.7, InstrClass.LOAD: 0.3},
        )
        register_mix(mix)
        try:
            t1 = _cached_trace("memo_mix", 150, 9)
            assert _cached_trace("memo_mix", 150, 9) is t1
            assert len(calls) == 1
            # Same name, different definition: must regenerate.
            register_mix(
                WorkloadMix(
                    name="memo_mix",
                    class_weights={InstrClass.INT_ALU: 0.2,
                                   InstrClass.LOAD: 0.8},
                ),
                overwrite=True,
            )
            t2 = _cached_trace("memo_mix", 150, 9)
            assert len(calls) == 2
            assert t2 is not t1
        finally:
            MIX_REGISTRY.pop("memo_mix", None)


class TestProgressHooks:
    """The on_point_done / should_stop hooks the service is built on."""

    def test_on_point_done_called_in_expansion_order(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "store.jsonl"))
        seen = []
        run_sweep(spec.expand(), store, workers=1,
                  on_point_done=lambda key, record, index:
                  seen.append((index, key, record["key"])))
        expected = [point.key() for point in spec.expand()]
        assert [key for _i, key, _rk in seen] == expected
        assert [index for index, _k, _rk in seen] == [0, 1, 2, 3]
        # the record passed to the hook is the durably-appended one
        assert all(key == record_key for _i, key, record_key in seen)

    def test_on_point_done_does_not_change_store_bytes(self, tmp_path):
        spec = small_spec()
        plain = str(tmp_path / "plain.jsonl")
        hooked = str(tmp_path / "hooked.jsonl")
        run_sweep(spec.expand(), ResultStore(plain), workers=1)
        run_sweep(spec.expand(), ResultStore(hooked), workers=1,
                  on_point_done=lambda *args: None)
        with open(plain, "rb") as fa, open(hooked, "rb") as fb:
            assert fa.read() == fb.read()

    def test_on_point_done_skips_cached_points(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "store.jsonl")
        run_sweep(spec.expand(), ResultStore(path), workers=1)
        calls = []
        summary = run_sweep(spec.expand(), ResultStore(path), workers=1,
                            on_point_done=lambda *args: calls.append(args))
        assert summary.n_cached == 4
        assert calls == []

    def test_on_point_done_expansion_order_under_pool(self, tmp_path):
        spec = small_spec(cluster_counts=(2, 4, 8))  # 6 points >= pool floor
        store = ResultStore(str(tmp_path / "store.jsonl"))
        indexes = []
        run_sweep(spec.expand(), store, workers=2,
                  on_point_done=lambda _k, _r, index: indexes.append(index))
        assert indexes == sorted(indexes) == list(range(6))

    def test_should_stop_interrupts_with_durable_prefix(self, tmp_path):
        import pytest

        from repro.sweep.runner import SweepInterrupted

        spec = small_spec()
        path = str(tmp_path / "store.jsonl")
        reference = str(tmp_path / "reference.jsonl")
        run_sweep(spec.expand(), ResultStore(reference), workers=1)
        done = []
        store = ResultStore(path)
        with pytest.raises(SweepInterrupted) as err:
            run_sweep(spec.expand(), store, workers=1,
                      on_point_done=lambda *args: done.append(args),
                      should_stop=lambda: len(done) >= 2)
        summary = err.value.summary
        assert summary.interrupted
        assert summary.n_computed == 2
        # the flushed prefix is a byte prefix of the fault-free store...
        with open(reference, "rb") as fh:
            full = fh.read()
        with open(path, "rb") as fh:
            partial = fh.read()
        assert full.startswith(partial) and len(partial) < len(full)
        # ...and a plain re-run resumes it to byte-identical completion
        resumed = run_sweep(spec.expand(), ResultStore(path), workers=1)
        assert resumed.n_cached == 2 and resumed.n_computed == 2
        with open(path, "rb") as fh:
            assert fh.read() == full

    def test_should_stop_false_is_a_no_op(self, tmp_path):
        spec = small_spec()
        plain = str(tmp_path / "plain.jsonl")
        guarded = str(tmp_path / "guarded.jsonl")
        run_sweep(spec.expand(), ResultStore(plain), workers=1)
        summary = run_sweep(spec.expand(), ResultStore(guarded), workers=1,
                            should_stop=lambda: False)
        assert summary.n_computed == 4 and not summary.interrupted
        with open(plain, "rb") as fa, open(guarded, "rb") as fb:
            assert fa.read() == fb.read()


class TestBatchVariant:
    """kernel_variant="batch": the runner groups same-specialization-key
    points into single vectorized kernel calls, without touching bytes."""

    def _bytes(self, path):
        with open(path, "rb") as fh:
            return fh.read()

    def test_store_byte_identical_inline_and_pool(self, tmp_path):
        spec = small_spec(cluster_counts=(2, 4, 8), seeds=(1, 2, 3))  # 18
        reference = str(tmp_path / "generic.jsonl")
        run_sweep(spec.expand(), ResultStore(reference), workers=1,
                  kernel_variant="generic")
        inline = str(tmp_path / "batch-inline.jsonl")
        summary = run_sweep(spec.expand(), ResultStore(inline), workers=1,
                            kernel_variant="batch")
        assert summary.kernel_variant == "batch"
        assert summary.n_computed == 18
        pooled = str(tmp_path / "batch-pool.jsonl")
        run_sweep(spec.expand(), ResultStore(pooled), workers=2,
                  kernel_variant="batch")
        assert self._bytes(inline) == self._bytes(reference)
        assert self._bytes(pooled) == self._bytes(reference)

    def test_groups_by_specialization_key(self, tmp_path):
        # 4 distinct machine shapes x 3 seeds: 4 batched calls of 3 lanes.
        spec = small_spec(seeds=(1, 2, 3))
        messages = []
        run_sweep(spec.expand(), ResultStore(str(tmp_path / "s.jsonl")),
                  workers=1, kernel_variant="batch", log=messages.append)
        batched = [m for m in messages if "batch variant:" in m]
        assert len(batched) == 1
        assert "12 of 12 point(s) in 4 batched kernel call(s)" in batched[0]

    def test_oversize_groups_chunk_to_max_lanes(self, tmp_path):
        from repro.sweep.runner import MAX_BATCH_LANES

        n_seeds = MAX_BATCH_LANES + 3
        spec = small_spec(topologies=("ring",), cluster_counts=(2,),
                          n_instructions=60, seeds=tuple(range(n_seeds)))
        reference = str(tmp_path / "generic.jsonl")
        run_sweep(spec.expand(), ResultStore(reference), workers=1,
                  kernel_variant="generic")
        batch = str(tmp_path / "batch.jsonl")
        messages = []
        run_sweep(spec.expand(), ResultStore(batch), workers=1,
                  kernel_variant="batch", log=messages.append)
        joined = "\n".join(messages)
        assert (f"{n_seeds} of {n_seeds} point(s) in 2 "
                "batched kernel call(s)") in joined
        assert self._bytes(batch) == self._bytes(reference)

    def test_singleton_groups_fall_back_to_per_point(self, tmp_path):
        # Every point has its own specialization key: nothing batches, the
        # per-point path runs the batch kernel with one lane, bytes match.
        spec = small_spec()
        reference = str(tmp_path / "generic.jsonl")
        run_sweep(spec.expand(), ResultStore(reference), workers=1,
                  kernel_variant="generic")
        batch = str(tmp_path / "batch.jsonl")
        messages = []
        summary = run_sweep(spec.expand(), ResultStore(batch), workers=1,
                            kernel_variant="batch", log=messages.append)
        assert not any("batch variant:" in m for m in messages)
        assert summary.n_computed == 4
        assert self._bytes(batch) == self._bytes(reference)

    def test_execute_batch_records_match_execute_point(self):
        from repro.sweep.runner import _payload_for, execute_batch

        spec = small_spec(topologies=("conv",), cluster_counts=(4,),
                          seeds=(1, 2, 3))
        points = spec.expand()
        payloads = [_payload_for(point) for point in points]
        batched = execute_batch(payloads)
        assert len(batched) == len(points)
        for payload, (record, elapsed) in zip(payloads, batched):
            reference, _ = execute_point(dict(payload))
            assert record == reference
            assert elapsed >= 0

    def test_failed_batch_demotes_to_per_point(self, tmp_path, monkeypatch):
        # Every point's first attempt raises an injected fault, so every
        # batched call fails wholesale; each member is charged one attempt
        # and recomputed point by point — converging on identical bytes.
        from repro.faults import ENV_VAR, FaultPlan
        from repro.sweep.runner import RetryPolicy

        spec = small_spec(seeds=(1, 2, 3))
        reference = str(tmp_path / "generic.jsonl")
        run_sweep(spec.expand(), ResultStore(reference), workers=1,
                  kernel_variant="generic")
        monkeypatch.setenv(
            ENV_VAR,
            FaultPlan(seed=5, exception_rate=1.0,
                      max_faults_per_point=1).to_env(),
        )
        batch = str(tmp_path / "batch.jsonl")
        messages = []
        summary = run_sweep(
            spec.expand(), ResultStore(batch), workers=1,
            kernel_variant="batch", log=messages.append,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        assert summary.n_computed == 12
        assert not summary.failures
        assert any("retry" in m for m in messages)
        assert self._bytes(batch) == self._bytes(reference)
