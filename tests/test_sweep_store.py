"""ResultStore: durability, recovery, and corruption detection."""

import json
import os

import pytest

from repro.common.errors import StoreError
from repro.sweep.store import ResultStore


def record(key: str, value: int = 0) -> dict:
    return {"key": key, "value": value}


class TestBasics:
    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        store.append(record("b", 2))
        assert len(store) == 2
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.get("a") == record("a", 1)
        assert "b" in reloaded and "c" not in reloaded

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "nope.jsonl"))
        assert len(store) == 0
        assert store.get("x") is None

    def test_records_preserve_insertion_order(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for key in ("z", "a", "m"):
            store.append(record(key))
        assert [r["key"] for r in ResultStore(path).records()] == ["z", "a", "m"]

    def test_append_without_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        with pytest.raises(StoreError, match="key"):
            store.append({"value": 1})

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "store.jsonl")
        ResultStore(path).append(record("a"))
        assert os.path.exists(path)

    def test_duplicate_key_last_wins(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        store.append(record("a", 2))
        assert store.get("a")["value"] == 2
        assert ResultStore(path).get("a")["value"] == 2

    def test_compact_deduplicates_file(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        store.append(record("a", 2))
        store.append(record("b", 3))
        store.compact()
        with open(path) as fh:
            lines = [line for line in fh.read().splitlines() if line]
        assert len(lines) == 2
        reloaded = ResultStore(path)
        assert reloaded.get("a")["value"] == 2

    def test_compact_reports_dropped_duplicates(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        store.append(record("a", 2))
        store.append(record("a", 3))
        store.append(record("b", 1))
        assert store.physical_records == 4
        assert store.compact() == 2
        assert store.physical_records == 2
        # Idempotent: a second compaction has nothing left to drop.
        assert store.compact() == 0

    def test_physical_records_tracked_across_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        store.append(record("a", 2))
        reloaded = ResultStore(path)
        assert reloaded.physical_records == 2
        assert len(reloaded) == 1
        assert reloaded.compact() == 1


class TestRecovery:
    def _store_with_tail(self, tmp_path, tail: bytes) -> str:
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        store.append(record("b", 2))
        with open(path, "ab") as fh:
            fh.write(tail)
        return path

    def test_truncated_last_line_recovered(self, tmp_path):
        path = self._store_with_tail(tmp_path, b'{"key": "c", "val')
        store = ResultStore(path)
        assert store.recovered_bytes > 0
        assert len(store) == 2
        assert "c" not in store

    def test_recovery_truncates_file_for_future_appends(self, tmp_path):
        path = self._store_with_tail(tmp_path, b'{"key": "c"')
        store = ResultStore(path)
        store.append(record("c", 3))
        reloaded = ResultStore(path)
        assert reloaded.recovered_bytes == 0
        assert len(reloaded) == 3
        assert reloaded.get("c") == record("c", 3)

    def test_read_only_load_leaves_file_untouched(self, tmp_path):
        # A reader (report/list) must never mutate the file: the "truncated
        # tail" it sees may be a concurrent writer's append in flight.
        path = self._store_with_tail(tmp_path, b'{"key": "c", "val')
        with open(path, "rb") as fh:
            before = fh.read()
        store = ResultStore(path)
        assert store.recovered_bytes > 0
        with open(path, "rb") as fh:
            assert fh.read() == before

    def test_truncated_tail_with_newline_recovered(self, tmp_path):
        path = self._store_with_tail(tmp_path, b'{"key": "c", "val\n')
        store = ResultStore(path)
        assert len(store) == 2
        assert store.recovered_bytes > 0

    def test_non_object_tail_recovered(self, tmp_path):
        # Valid JSON but not a keyed record — same recovery path.
        path = self._store_with_tail(tmp_path, b"[1, 2, 3]")
        assert len(ResultStore(path)) == 2

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        good = json.dumps(record("b", 2))
        with open(path, "w") as fh:
            fh.write('{"key": "a", "broken...\n')
            fh.write(good + "\n")
        with pytest.raises(StoreError, match="corrupt interior record"):
            ResultStore(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(record("a", 1)) + "\n\n")
            fh.write(json.dumps(record("b", 2)) + "\n")
        assert len(ResultStore(path)) == 2

    def test_non_utf8_tail_recovered(self, tmp_path):
        # An interrupted append can cut a multi-byte character in half: the
        # tail is then not even decodable, and recovery must treat the
        # UnicodeDecodeError exactly like a truncated-JSON tail.
        path = self._store_with_tail(tmp_path, b'{"key": "caf\xc3')
        store = ResultStore(path)
        assert len(store) == 2
        assert store.recovered_bytes > 0
        store.append(record("c", 3))
        assert len(ResultStore(path)) == 3

    def test_non_utf8_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "wb") as fh:
            fh.write(b'{"key": "caf\xc3\n')
            fh.write(json.dumps(record("b", 2)).encode("utf-8") + b"\n")
        with pytest.raises(StoreError, match="corrupt interior record"):
            ResultStore(path)

    def test_keyless_object_interior_line_raises(self, tmp_path):
        # Valid JSON, valid object, but no "key": interior corruption, not
        # a recoverable tail.
        path = str(tmp_path / "store.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"value": 1}) + "\n")
            fh.write(json.dumps(record("b", 2)) + "\n")
        with pytest.raises(StoreError, match="corrupt interior record"):
            ResultStore(path)

    def test_compact_discards_pending_tail_repair(self, tmp_path):
        # compact() rewrites the whole file from the live records; a repair
        # offset scheduled by load() must not be applied to the new bytes.
        path = self._store_with_tail(tmp_path, b'{"key": "c", "val')
        store = ResultStore(path)
        assert store.recovered_bytes > 0
        store.compact()
        store.append(record("d", 4))
        reloaded = ResultStore(path)
        assert reloaded.recovered_bytes == 0
        assert sorted(reloaded.keys()) == ["a", "b", "d"]


class TestReadRecord:
    """read_record: point lookups that see other writers' appends."""

    def test_hit_from_memory(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.append(record("a", 1))
        assert store.read_record("a") == record("a", 1)

    def test_missing_key_returns_default(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        assert store.read_record("nope") is None
        assert store.read_record("nope", default={"x": 1}) == {"x": 1}
        store.append(record("a"))
        assert store.read_record("nope") is None

    def test_sees_record_appended_by_another_writer(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        reader = ResultStore(path)
        writer = ResultStore(path)
        writer.append(record("a", 1))
        assert reader.get("a") is None  # plain get: in-memory view only
        assert reader.read_record("a") == record("a", 1)
        # and the reload also refreshed the rest of the view
        assert reader.get("a") == record("a", 1)

    def test_torn_tail_is_invisible_then_appears(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        writer = ResultStore(path)
        writer.append(record("a", 1))
        reader = ResultStore(path)
        # simulate the writer's next record in flight: bytes down, no
        # newline yet
        import json as _json

        line = _json.dumps(record("b", 2), sort_keys=True,
                           separators=(",", ":"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line)
        assert reader.read_record("b") is None
        assert reader.read_record("a") == record("a", 1)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n")
        assert reader.read_record("b") == record("b", 2)

    def test_read_record_never_mutates_the_file(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        writer = ResultStore(path)
        writer.append(record("a", 1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn"')  # unterminated tail
        with open(path, "rb") as fh:
            before = fh.read()
        reader = ResultStore(path)
        assert reader.read_record("torn") is None
        assert reader.read_record("missing") is None
        with open(path, "rb") as fh:
            assert fh.read() == before

    def test_stat_shortcut_skips_reload_when_size_unchanged(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "s.jsonl")
        store = ResultStore(path)
        store.append(record("a", 1))
        calls = []
        original = ResultStore._load_locked

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(ResultStore, "_load_locked", counting)
        assert store.read_record("missing") is None
        assert store.read_record("missing") is None
        assert calls == []  # size matched _seen_size: no re-read

    def test_concurrent_reader_while_appender(self, tmp_path):
        """A reader thread polling read_record during a burst of appends
        must only ever see fully-written records, and must eventually see
        all of them."""
        import threading

        path = str(tmp_path / "s.jsonl")
        writer = ResultStore(path)
        reader = ResultStore(path)
        n = 200
        stop = threading.Event()
        seen = set()
        errors = []

        def poll():
            while not stop.is_set() or len(seen) < n:
                for i in range(n):
                    key = f"k{i}"
                    got = reader.read_record(key)
                    if got is not None:
                        if got != record(key, i):
                            errors.append((key, got))
                        seen.add(key)
                if stop.is_set() and len(seen) < n:
                    # writer done: one final sweep must find everything
                    for i in range(n):
                        if reader.read_record(f"k{i}") is not None:
                            seen.add(f"k{i}")
                    break

        thread = threading.Thread(target=poll)
        thread.start()
        for i in range(n):
            writer.append(record(f"k{i}", i))
        stop.set()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert not errors
        assert len(seen) == n


class TestMerge:
    """Shard-merge semantics the distributed fabric relies on."""

    def test_merge_appends_new_records_in_order(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        added = store.merge([record("a", 1), record("b", 2)])
        assert added == 2
        assert [r["key"] for r in ResultStore(store.path).records()] == \
            ["a", "b"]

    def test_duplicate_across_shards_is_silently_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.merge([record("a", 1)])
        before = open(store.path, "rb").read()
        # A requeued shard computed "a" again — byte-identical, harmless.
        assert store.merge([record("a", 1), record("b", 2)]) == 1
        after = open(store.path, "rb").read()
        assert after.startswith(before)
        assert len(store) == 2

    def test_conflicting_record_raises_named_error(self, tmp_path):
        from repro.common.errors import StoreConflictError

        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.merge([record("a", 1)])
        with pytest.raises(StoreConflictError, match="'a'"):
            store.merge([record("a", 999)])

    def test_conflict_is_subclass_of_store_error(self):
        from repro.common.errors import StoreConflictError

        assert issubclass(StoreConflictError, StoreError)

    def test_failed_merge_appends_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.merge([record("a", 1)])
        before = open(store.path, "rb").read()
        from repro.common.errors import StoreConflictError
        with pytest.raises(StoreConflictError):
            # "b" precedes the conflict in the batch but must NOT land:
            # the conflict scan runs before any append.
            store.merge([record("b", 2), record("a", 999)])
        assert open(store.path, "rb").read() == before
        assert "b" not in store

    def test_intra_batch_conflict_detected(self, tmp_path):
        from repro.common.errors import StoreConflictError

        store = ResultStore(str(tmp_path / "s.jsonl"))
        with pytest.raises(StoreConflictError):
            store.merge([record("a", 1), record("a", 2)])
        assert len(store) == 0

    def test_intra_batch_duplicate_appended_once(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        assert store.merge([record("a", 1), record("a", 1)]) == 1
        assert store.physical_records == 1

    def test_empty_shard_merge_is_a_noop(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        assert store.merge([]) == 0
        assert not os.path.exists(store.path) or \
            open(store.path, "rb").read() == b""

    def test_merge_without_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        with pytest.raises(StoreError, match="non-empty string 'key'"):
            store.merge([{"value": 1}])


class TestMergeScaling:
    """The merge conflict scan is O(batch), not O(batch × store): every
    record's canonical line is cached, so merging N shards costs one
    serialization per supplied record — nothing already on disk is ever
    re-serialized just to compare against."""

    @pytest.fixture
    def serializations(self, monkeypatch):
        import repro.sweep.store as store_mod

        real = store_mod.canonical_json
        calls = {"n": 0}

        def counting(obj):
            calls["n"] += 1
            return real(obj)

        monkeypatch.setattr(store_mod, "canonical_json", counting)
        return calls

    def test_fresh_merge_serializes_once_per_record(
            self, tmp_path, serializations):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        batch = [record(f"k{i}", i) for i in range(50)]
        serializations["n"] = 0
        assert store.merge(batch) == 50
        assert serializations["n"] == 50

    def test_duplicate_merge_never_rescans_the_store(
            self, tmp_path, serializations):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.merge([record(f"k{i}", i) for i in range(50)])
        serializations["n"] = 0
        # A requeued shard delivered the same 50 records again: each
        # candidate is serialized once and compared against its cached
        # line — the 50 existing records are not re-serialized.
        assert store.merge([record(f"k{i}", i) for i in range(50)]) == 0
        assert serializations["n"] == 50

    def test_reloaded_store_rebuilds_the_cache_from_file_bytes(
            self, tmp_path, serializations):
        path = str(tmp_path / "s.jsonl")
        ResultStore(path).merge([record(f"k{i}", i) for i in range(20)])
        serializations["n"] = 0
        reloaded = ResultStore(path)      # cache comes from the raw lines
        assert reloaded.merge([record(f"k{i}", i) for i in range(20)]) == 0
        assert serializations["n"] == 20
