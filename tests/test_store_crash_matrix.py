"""Store crash-recovery matrix (ISSUE 6 satellite).

Simulates a run killed *during* `ResultStore.append` — at byte offsets
inside a record and at the clean boundaries between records — and asserts
the two-step recovery contract: `load` drops (and schedules truncation of)
the cut tail, and a frontier-resume of the same sweep lands a store
byte-identical to the fault-free single run.
"""

import pytest

from repro.sweep.grid import SweepSpec
from repro.sweep.runner import run_sweep
from repro.sweep.store import ResultStore


def crash_spec() -> SweepSpec:
    return SweepSpec(
        name="crash",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=200,
        seeds=(11,),
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Fault-free store bytes plus per-record line offsets."""
    tmp = tmp_path_factory.mktemp("crash_ref")
    points = crash_spec().expand()
    path = str(tmp / "ref.jsonl")
    run_sweep(points, ResultStore(path), workers=1)
    with open(path, "rb") as fh:
        raw = fh.read()
    line_ends = []
    offset = 0
    for line in raw.split(b"\n")[:-1]:
        offset += len(line) + 1
        line_ends.append(offset)
    assert len(line_ends) == len(points) == 4
    return points, raw, line_ends


def _crash_points(reference):
    """(description, crash byte offset) matrix over the reference store."""
    _points, raw, line_ends = reference
    boundaries = [("empty-file", 0)]
    for n_complete, end in enumerate(line_ends[:-1], start=1):
        boundaries.append((f"between-records-{n_complete}", end))
    starts = [0] + line_ends[:-1]
    cuts = []
    for idx, (start, end) in enumerate(zip(starts, line_ends)):
        line_len = end - start
        for label, within in (
            ("first-byte", 1),
            ("mid-record", line_len // 2),
            ("missing-newline", line_len - 1),
        ):
            cuts.append((f"record{idx}-{label}", start + within))
    return boundaries + cuts


def test_crash_matrix_covers_interior_and_boundary_offsets(reference):
    matrix = _crash_points(reference)
    # 1 empty + 3 boundaries + 4 records x 3 in-record offsets.
    assert len(matrix) == 16


def test_resume_after_crash_is_byte_identical(reference, tmp_path):
    points, raw, _line_ends = reference
    for label, offset in _crash_points(reference):
        path = str(tmp_path / f"{label}.jsonl")
        with open(path, "wb") as fh:
            fh.write(raw[:offset])
        store = ResultStore(path)
        # A cut inside a record is detected as a recoverable tail; a cut
        # at a record boundary is simply a shorter valid store.
        boundary = any(offset == e for e in (0, *_boundaries(reference)))
        assert (store.recovered_bytes > 0) == (not boundary), label
        summary = run_sweep(points, store, workers=1)
        assert not summary.failures, label
        with open(path, "rb") as fh:
            assert fh.read() == raw, f"crash at {label} broke byte-identity"


def _boundaries(reference):
    _points, _raw, line_ends = reference
    return line_ends


def test_resume_with_multiprocess_workers_after_mid_record_crash(
        reference, tmp_path):
    # The pool path must honour the deferred tail repair exactly like the
    # inline path: same final bytes.
    points, raw, _line_ends = reference
    offset = 17  # mid-way through the very first record: all 4 points
    path = str(tmp_path / "pool_crash.jsonl")  # pending -> pool engages
    with open(path, "wb") as fh:
        fh.write(raw[:offset])
    store = ResultStore(path)
    assert store.recovered_bytes == 17
    assert len(store) == 0
    run_sweep(points, store, workers=2)
    with open(path, "rb") as fh:
        assert fh.read() == raw
