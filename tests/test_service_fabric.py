"""Service-side fabric support: shard jobs, restart recovery, client retry.

Everything here runs against a real :class:`ServiceThread` over real
sockets, with network faults injected through the seeded plan in
:mod:`repro.faults` — the same wire paths the distributed fabric uses.
"""

import json
import os
import threading

import pytest

from repro.faults import (
    NET_CORRUPT,
    NET_DISCONNECT,
    NET_OK,
    NET_REFUSE,
    NetworkFaultPlan,
    clear_net_plan,
    install_net_plan,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager, job_id_for
from repro.service.server import ServiceThread
from repro.sweep.grid import SweepSpec
from repro.sweep.store import ResultStore


def spec_dict(name="fab-tiny", seeds=(1, 2), **kwargs):
    defaults = dict(
        name=name,
        topologies=("ring", "conv"),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=300,
        seeds=seeds,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults).to_dict()


@pytest.fixture(autouse=True)
def _no_leftover_net_plan():
    clear_net_plan()
    yield
    clear_net_plan()


@pytest.fixture()
def service(tmp_path):
    svc = ServiceThread(str(tmp_path / "store.jsonl")).start()
    try:
        yield svc, ServiceClient(svc.host, svc.port)
    finally:
        svc.stop()


class TestShardJobs:
    def test_shard_job_runs_only_its_slice(self, service):
        svc, client = service
        spec = spec_dict(seeds=(1, 2, 3, 4))  # 8 points
        sub = client.submit(spec, workers=1, shard={"start": 2, "stop": 5})
        assert sub["job"]["shard"] == {"start": 2, "stop": 5}
        done = client.wait(sub["job_id"])
        assert done["state"] == "done"
        assert done["summary"]["n_points"] == 3
        assert done["summary"]["n_computed"] == 3

    def test_shard_changes_job_identity(self, service):
        _svc, client = service
        spec = spec_dict(seeds=(1, 2, 3, 4))
        a = client.submit(spec, workers=1, shard={"start": 0, "stop": 2})
        b = client.submit(spec, workers=1, shard={"start": 2, "stop": 4})
        whole = client.submit(spec, workers=1)
        assert len({a["job_id"], b["job_id"], whole["job_id"]}) == 3
        for sub in (a, b, whole):
            assert client.wait(sub["job_id"])["state"] == "done"

    def test_shardless_digest_is_unchanged(self):
        spec = SweepSpec.from_dict(spec_dict())
        assert job_id_for(spec) == job_id_for(spec, None)
        assert job_id_for(spec) != job_id_for(spec, {"start": 0, "stop": 1})

    def test_two_shards_cover_the_spec_like_one_run(self, tmp_path):
        spec = spec_dict(seeds=(1, 2, 3))  # 6 points
        ref_store = ResultStore(str(tmp_path / "ref.jsonl"))
        from repro.sweep.runner import run_sweep
        run_sweep(SweepSpec.from_dict(spec).expand(), ref_store, workers=1)

        svc = ServiceThread(str(tmp_path / "peer.jsonl")).start()
        try:
            client = ServiceClient(svc.host, svc.port)
            for start, stop in ((0, 3), (3, 6)):
                sub = client.submit(spec, workers=1,
                                    shard={"start": start, "stop": stop})
                assert client.wait(sub["job_id"])["state"] == "done"
            # The peer's records are fetchable and byte-identical to the
            # single-host run's store lines.
            ref_bytes = open(ref_store.path, "rb").read()
            fetched = b"".join(
                client.result(record["key"])
                for record in ref_store.records()
            )
            assert fetched == ref_bytes
        finally:
            svc.stop()

    def test_out_of_range_shard_fails_cleanly(self, service):
        _svc, client = service
        sub = client.submit(spec_dict(), workers=1,
                            shard={"start": 0, "stop": 999})
        done = client.wait(sub["job_id"])
        assert done["state"] == "failed"
        assert "out of range" in done["error"]

    def test_inverted_shard_rejected_at_submit(self, service):
        _svc, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(), shard={"start": 5, "stop": 2})
        assert excinfo.value.status == 400

    def test_negative_shard_rejected_by_schema(self, service):
        _svc, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(), shard={"start": -1, "stop": 2})
        assert excinfo.value.status == 400


class TestRestartRecovery:
    def _boot(self, tmp_path):
        return ServiceThread(str(tmp_path / "store.jsonl")).start()

    def test_active_job_listed_as_interrupted_after_reboot(self, tmp_path):
        svc = self._boot(tmp_path)
        client = ServiceClient(svc.host, svc.port)
        sub = client.submit(spec_dict(), workers=1)
        client.wait(sub["job_id"])
        svc.stop()

        # Simulate dying mid-run: rewrite the persisted state to "running"
        # (stopping cleanly settles the job, as it should).
        job_file = tmp_path / "jobs" / f"{sub['job_id']}.json"
        record = json.loads(job_file.read_text())
        record["state"] = "running"
        job_file.write_text(json.dumps(record))

        svc2 = self._boot(tmp_path)
        try:
            client2 = ServiceClient(svc2.host, svc2.port)
            jobs = client2.jobs()
            assert [j["job_id"] for j in jobs] == [sub["job_id"]]
            assert jobs[0]["state"] == "interrupted"
            # The recovered stream has an explanatory terminal history.
            events = list(client2.stream(sub["job_id"]))
            assert events and events[-1][1] == "interrupted"
        finally:
            svc2.stop()

    def test_interrupted_job_resumes_as_cache_hit(self, tmp_path):
        svc = self._boot(tmp_path)
        client = ServiceClient(svc.host, svc.port)
        sub = client.submit(spec_dict(), workers=1)
        client.wait(sub["job_id"])
        svc.stop()
        job_file = tmp_path / "jobs" / f"{sub['job_id']}.json"
        record = json.loads(job_file.read_text())
        record["state"] = "queued"
        job_file.write_text(json.dumps(record))

        svc2 = self._boot(tmp_path)
        try:
            client2 = ServiceClient(svc2.host, svc2.port)
            again = client2.submit(spec_dict(), workers=1)
            assert again["disposition"] == "resubmitted"
            done = client2.wait(again["job_id"])
            assert done["state"] == "done"
            assert done["summary"]["n_computed"] == 0
            assert done["summary"]["n_cached"] == 4
        finally:
            svc2.stop()

    def test_terminal_job_state_survives_reboot(self, tmp_path):
        svc = self._boot(tmp_path)
        client = ServiceClient(svc.host, svc.port)
        sub = client.submit(spec_dict(), workers=1)
        client.wait(sub["job_id"])
        svc.stop()
        svc2 = self._boot(tmp_path)
        try:
            jobs = ServiceClient(svc2.host, svc2.port).jobs()
            assert jobs[0]["state"] == "done"
        finally:
            svc2.stop()

    def test_torn_job_file_is_skipped(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        (jobs_dir / "deadbeef.json").write_text('{"job_id": "dead')
        manager = JobManager(str(tmp_path / "store.jsonl"))
        assert manager.list_jobs() == []

    def test_persistence_can_be_disabled(self, tmp_path):
        manager = JobManager(str(tmp_path / "store.jsonl"),
                             persist_jobs=False)
        assert not os.path.isdir(str(tmp_path / "jobs"))
        assert manager.list_jobs() == []


class TestClientRetry:
    def test_request_rides_out_scripted_refusals(self, service, tmp_path):
        svc, _ = service
        client = ServiceClient(svc.host, svc.port, retries=2,
                               backoff_s=0.01, peer_name="pA")
        install_net_plan(NetworkFaultPlan(scripted={
            "pA GET /healthz": (NET_REFUSE, NET_REFUSE, NET_OK),
        }))
        assert client.health()["status"] == "ok"

    def test_retry_budget_exhaustion_raises_unreachable(self, service):
        svc, _ = service
        client = ServiceClient(svc.host, svc.port, retries=1,
                               backoff_s=0.01, peer_name="pA")
        install_net_plan(NetworkFaultPlan(scripted={
            "pA GET /healthz": (NET_REFUSE, NET_REFUSE, NET_REFUSE),
        }))
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.code == "unreachable"

    def test_submit_retry_is_idempotent(self, service):
        svc, _ = service
        client = ServiceClient(svc.host, svc.port, retries=2,
                               backoff_s=0.01, peer_name="pA")
        # Disconnect AFTER the request reaches the server: the retry hits
        # the dedup path instead of starting a second run.
        install_net_plan(NetworkFaultPlan(scripted={
            "pA POST /jobs": (NET_DISCONNECT, NET_OK),
        }))
        sub = client.submit(spec_dict(), workers=1)
        # The retried submit lands on the job the first (disconnected)
        # attempt created: deduplicated while it runs, resubmitted if the
        # tiny grid already finished — never a second job.
        assert sub["disposition"] in ("deduplicated", "resubmitted")
        clear_net_plan()
        assert client.wait(sub["job_id"])["state"] == "done"
        assert len(client.jobs()) == 1

    def test_result_attempt_advances_fault_schedule(self, service):
        svc, client0 = service
        sub = client0.submit(spec_dict(), workers=1)
        client0.wait(sub["job_id"])
        key = ResultStore(str(svc.service.manager.store.path)).keys()[0]
        client = ServiceClient(svc.host, svc.port, retries=0,
                               backoff_s=0.01, peer_name="pA")
        install_net_plan(NetworkFaultPlan(scripted={
            f"pA GET /results/{key}": (NET_CORRUPT, NET_OK),
        }))
        first = client.result(key, attempt=1)
        second = client.result(key, attempt=2)
        assert not first.endswith(b"\n")      # corrupted in flight
        assert second.endswith(b"\n")         # schedule advanced past it
        assert json.loads(second)["key"] == key

    def test_stream_reconnects_and_replays_without_duplicates(self, service):
        svc, client0 = service
        sub = client0.submit(spec_dict(), workers=1)
        client0.wait(sub["job_id"])
        job_id = sub["job_id"]
        # Baseline: the full event history, cleanly.
        baseline = list(client0.stream(job_id))
        assert baseline[-1][1] == "done"

        client = ServiceClient(svc.host, svc.port, retries=2,
                               backoff_s=0.01, peer_name="pA")
        install_net_plan(NetworkFaultPlan(scripted={
            f"pA SSE /jobs/{job_id}/events": (NET_DISCONNECT, NET_OK),
        }))
        events = list(client.stream(job_id))
        assert events == baseline
        ids = [event_id for event_id, _n, _d in events]
        assert ids == sorted(set(ids))  # strictly increasing, no dups

    def test_stream_gives_up_after_retry_budget(self, service):
        svc, client0 = service
        sub = client0.submit(spec_dict(), workers=1)
        client0.wait(sub["job_id"])
        job_id = sub["job_id"]
        client = ServiceClient(svc.host, svc.port, retries=1,
                               backoff_s=0.01, peer_name="pA")
        install_net_plan(NetworkFaultPlan(scripted={
            f"pA SSE /jobs/{job_id}/events":
                (NET_DISCONNECT, NET_DISCONNECT),
        }))
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream(job_id))
        assert excinfo.value.code == "stream_interrupted"

    def test_wait_falls_back_to_polling_when_stream_dies(self, service):
        svc, client0 = service
        sub = client0.submit(spec_dict(), workers=1)
        client0.wait(sub["job_id"])
        job_id = sub["job_id"]
        client = ServiceClient(svc.host, svc.port, retries=0,
                               backoff_s=0.01, peer_name="pA")
        install_net_plan(NetworkFaultPlan(scripted={
            f"pA SSE /jobs/{job_id}/events": (NET_DISCONNECT,),
        }))
        assert client.wait(job_id)["state"] == "done"

    def test_unknown_job_is_not_retried(self, service):
        svc, _ = service
        client = ServiceClient(svc.host, svc.port, retries=3,
                               backoff_s=0.2, peer_name="pA")
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream("feedfacedeadbeef"))
        assert excinfo.value.status == 404
