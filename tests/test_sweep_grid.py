"""Grid expansion: axes, overrides, content keys, spec serialization."""

import pytest

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError
from repro.common.types import Topology
from repro.sweep.grid import ExperimentPoint, SweepSpec, paper_spec, smoke_spec


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        name="tiny",
        topologies=("ring",),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=100,
        seeds=(1,),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_smoke_spec_is_24_points(self):
        points = smoke_spec().expand()
        assert len(points) == 24
        assert len({p.key() for p in points}) == 24

    def test_n_points_matches_expand(self):
        for spec in (smoke_spec(), paper_spec(), tiny_spec()):
            assert spec.n_points() == len(spec.expand())

    def test_axes_are_applied(self):
        points = tiny_spec(
            topologies=("ring", "conv"), cluster_counts=(2, 4),
            steerings=("modulo",), seeds=(1, 2),
        ).expand()
        assert len(points) == 8
        assert {p.config.topology for p in points} == {Topology.RING, Topology.CONV}
        assert {p.config.n_clusters for p in points} == {2, 4}
        assert all(p.config.steering == "modulo" for p in points)
        assert {p.seed for p in points} == {1, 2}

    def test_expansion_order_is_deterministic(self):
        a = smoke_spec().expand()
        b = smoke_spec().expand()
        assert [p.key() for p in a] == [p.key() for p in b]


class TestOverrides:
    def test_override_axis_multiplies_grid(self):
        spec = tiny_spec(overrides={"bus.hop_latency": [1, 2]})
        points = spec.expand()
        assert len(points) == 2
        assert {p.config.bus.hop_latency for p in points} == {1, 2}

    def test_top_level_override(self):
        spec = tiny_spec(overrides={"window_size": [64, 128, 256]})
        assert {p.config.window_size for p in spec.expand()} == {64, 128, 256}

    def test_base_applies_to_every_point(self):
        spec = tiny_spec(
            topologies=("ring", "conv"),
            base={"cluster.issue_width": 4},
        )
        assert all(p.config.cluster.issue_width == 4 for p in spec.expand())

    def test_unknown_override_path_rejected(self):
        with pytest.raises(ConfigurationError, match="not a field"):
            tiny_spec(overrides={"bus.width": [1]}).expand()

    def test_axis_field_cannot_be_overridden(self):
        with pytest.raises(ConfigurationError, match="sweep axis"):
            tiny_spec(overrides={"n_clusters": [2]})
        with pytest.raises(ConfigurationError, match="sweep axis"):
            tiny_spec(base={"topology": "ring"})

    def test_empty_override_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            tiny_spec(overrides={"bus.hop_latency": []})


class TestValidation:
    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            tiny_spec(topologies=("mesh",))

    def test_unknown_steering(self):
        with pytest.raises(ConfigurationError, match="unknown steering"):
            tiny_spec(steerings=("magic",))

    def test_unknown_mix(self):
        with pytest.raises(ConfigurationError, match="unknown workload mix"):
            tiny_spec(mixes=("spec2000",))

    def test_empty_axis(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            tiny_spec(seeds=())


class TestSpecSerialization:
    def test_round_trip(self):
        spec = tiny_spec(
            topologies=("ring", "conv"),
            overrides={"bus.hop_latency": [1, 2]},
            base={"cluster.issue_width": 4},
        )
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert [p.key() for p in rebuilt.expand()] == \
            [p.key() for p in spec.expand()]

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key.*'points'"):
            SweepSpec.from_dict({"points": 7})


class TestExperimentPoint:
    def test_round_trip(self):
        point = smoke_spec().expand()[5]
        rebuilt = ExperimentPoint.from_dict(point.to_dict())
        assert rebuilt == point
        assert rebuilt.key() == point.key()

    def test_key_depends_on_each_component(self):
        base = ExperimentPoint(ProcessorConfig(), "int_heavy", 100, 1)
        assert base.key() != ExperimentPoint(
            ProcessorConfig(n_clusters=8), "int_heavy", 100, 1).key()
        assert base.key() != ExperimentPoint(
            ProcessorConfig(), "branchy", 100, 1).key()
        assert base.key() != ExperimentPoint(
            ProcessorConfig(), "int_heavy", 101, 1).key()
        assert base.key() != ExperimentPoint(
            ProcessorConfig(), "int_heavy", 100, 2).key()

    def test_key_includes_engine_version(self, monkeypatch):
        import repro.sweep.grid as grid_mod

        point = ExperimentPoint(ProcessorConfig(), "int_heavy", 100, 1)
        before = point.key()
        monkeypatch.setattr(grid_mod, "ENGINE_VERSION", "999-test")
        assert point.key() != before

    def test_key_is_memoized_per_instance(self, monkeypatch):
        # The runner calls key() on every dispatch/flush/retry step, so the
        # digest is cached on the instance — but the cache must still track
        # ENGINE_VERSION (the version test above re-keys the same object).
        import repro.sweep.grid as grid_mod

        point = ExperimentPoint(ProcessorConfig(), "int_heavy", 100, 1)
        first = point.key()
        calls = []
        real_digest = grid_mod.content_digest

        def counting_digest(*args, **kwargs):
            calls.append(args)
            return real_digest(*args, **kwargs)

        monkeypatch.setattr(grid_mod, "content_digest", counting_digest)
        assert point.key() == first
        assert point.key() == first
        assert calls == []
        # A fresh-but-equal instance computes its own digest once.
        other = ExperimentPoint(ProcessorConfig(), "int_heavy", 100, 1)
        assert other.key() == first
        assert other.key() == first
        assert len(calls) == 1

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload mix"):
            ExperimentPoint(ProcessorConfig(), "nope", 100, 1)

    def test_label_is_readable(self):
        point = ExperimentPoint(ProcessorConfig(), "int_heavy", 100, 7)
        assert "int_heavy" in point.label()
        assert "ring" in point.label()
