"""Tests for the cycle-level engine: trace handling, topology semantics,
determinism, and agreement with the naive reference model."""

import os
import sys

import pytest

from repro.common.config import ProcessorConfig
from repro.common.errors import TraceError
from repro.common.types import InstrClass, Topology
from repro.engine import (
    FLAG_L1_MISS,
    FLAG_MISPREDICT,
    Pipeline,
    SoAWindow,
    Trace,
    simulate,
)
from repro.workloads import generate_trace

IALU = InstrClass.INT_ALU


def chain_trace(n=200):
    """A single serial dependence chain — maximally bypass-sensitive."""
    ops = [(IALU, f"r{i + 1}", f"r{i}", None, 0) for i in range(n)]
    return Trace.from_ops(ops, name="chain")


def independent_trace(n=400):
    """Fully independent ALU ops — limited only by machine bandwidth."""
    ops = [(IALU, f"r{i}") for i in range(n)]
    return Trace.from_ops(ops, name="independent")


class TestTrace:
    def test_from_ops_renames_registers(self):
        t = Trace.from_ops([
            (IALU, "a"),
            (IALU, "b", "a", None, 0),
            (IALU, "a", "a", "b", 0),
        ])
        assert list(t.src1) == [-1, 0, 0]
        assert list(t.src2) == [-1, -1, 1]

    def test_unwritten_register_is_live_in(self):
        t = Trace.from_ops([(IALU, "x", "never_written", None, 0)])
        assert t.src1[0] == -1

    def test_forward_dependence_rejected(self):
        with pytest.raises(TraceError, match="precede"):
            Trace("bad", [0, 0], [1, -1], [-1, -1], [0, 1], [0, 0])

    def test_source_must_produce_a_value(self):
        branch = int(InstrClass.BRANCH)
        with pytest.raises(TraceError, match="no register value"):
            Trace("bad", [branch, 0], [-1, 0], [-1, -1], [-1, 0], [0, 0])

    def test_mispredict_flag_only_on_branches(self):
        with pytest.raises(TraceError, match="mispredict"):
            Trace("bad", [0], [-1], [-1], [0], [FLAG_MISPREDICT])

    def test_miss_flag_only_on_memory(self):
        with pytest.raises(TraceError, match="cache-miss"):
            Trace("bad", [0], [-1], [-1], [0], [FLAG_L1_MISS])

    def test_from_ops_flags_position_enforced(self):
        branch = InstrClass.BRANCH
        # Correct padded form round-trips the flag.
        t = Trace.from_ops([(IALU, "a"),
                            (branch, None, "a", None, FLAG_MISPREDICT)])
        assert t.flags[1] == FLAG_MISPREDICT
        # An int in a source slot is an error, never a silent register name.
        with pytest.raises(TraceError, match="not a register name"):
            Trace.from_ops([(IALU, "a"), (branch, None, "a", FLAG_MISPREDICT)])

    def test_window_columns_parallel(self):
        t = chain_trace(10)
        win = SoAWindow(t)
        assert len(win) == 10
        cols = win.columns()
        assert all(len(c) == 10 for c in cols)


class TestFuCoverage:
    def test_missing_fu_type_rejected_up_front(self):
        from repro.common.config import ClusterConfig
        from repro.common.errors import ConfigurationError

        cfg = ProcessorConfig(cluster=ClusterConfig(fu_counts=(1, 1, 0, 0)))
        t = generate_trace("fp_heavy", 200, seed=1)
        with pytest.raises(ConfigurationError, match="zero units"):
            simulate(t, cfg)

    def test_int_only_cluster_runs_int_only_trace(self):
        from repro.common.config import ClusterConfig

        cfg = ProcessorConfig(cluster=ClusterConfig(fu_counts=(1, 1, 0, 0)))
        t = generate_trace("int_heavy", 500, seed=1)
        assert simulate(t, cfg).cycles > 0


class TestTopologySemantics:
    def test_conv_beats_ring_on_dependence_chain(self):
        """The paper's central trade-off: no bypass in the ring means a
        serial chain pays the hop+writeback on every producer->consumer
        edge, while the conventional cluster issues back-to-back."""
        t = chain_trace()
        ipc = {}
        for topo in (Topology.CONV, Topology.RING):
            cfg = ProcessorConfig(n_clusters=4, topology=topo)
            ipc[topo] = Pipeline(cfg).run(t).get_scalar("ipc")
        assert ipc[Topology.CONV] > ipc[Topology.RING]
        assert ipc[Topology.CONV] > 0.9  # bypass: ~1 instr/cycle
        assert ipc[Topology.RING] < 0.5  # >= 2 extra cycles per edge

    def test_ring_results_always_communicate(self):
        t = independent_trace(100)
        cfg = ProcessorConfig(n_clusters=4, topology=Topology.RING)
        stats = Pipeline(cfg).run(t)
        assert int(stats.counter("comm.messages")) == 100

    def test_conv_local_values_never_communicate(self):
        t = chain_trace(100)
        cfg = ProcessorConfig(n_clusters=4, topology=Topology.CONV)
        stats = Pipeline(cfg).run(t)
        # Dependence steering keeps the chain in one cluster: no traffic.
        assert int(stats.counter("comm.messages")) == 0

    def test_independent_work_reaches_fetch_limit(self):
        t = independent_trace(800)
        cfg = ProcessorConfig(n_clusters=4, topology=Topology.CONV)
        ipc = Pipeline(cfg).run(t).get_scalar("ipc")
        assert ipc == pytest.approx(cfg.fetch_width, rel=0.1)

    def test_more_clusters_do_not_hurt_parallel_work(self):
        t = generate_trace("int_heavy", 5000, seed=11)
        prev = 0.0
        for n_clusters in (1, 2, 4):
            cfg = ProcessorConfig(n_clusters=n_clusters, topology=Topology.CONV)
            ipc = Pipeline(cfg).run(t).get_scalar("ipc")
            assert ipc >= prev * 0.95  # allow steering noise, no collapse
            prev = ipc


class TestPenalties:
    def test_smaller_window_cannot_be_faster(self):
        t = generate_trace("int_heavy", 3000, seed=5)
        big = ProcessorConfig(window_size=256)
        small = ProcessorConfig(window_size=8)
        cycles_big = int(Pipeline(big).run(t).counter("cycles"))
        cycles_small = int(Pipeline(small).run(t).counter("cycles"))
        assert cycles_small >= cycles_big

    def test_mispredicted_branch_costs_cycles(self):
        base_ops = [(IALU, f"r{i}") for i in range(50)]
        branch = int(InstrClass.BRANCH)
        taken = base_ops[:25] + [(branch, None, "r0", None, FLAG_MISPREDICT)] + base_ops[25:]
        clean = base_ops[:25] + [(branch, None, "r0", None, 0)] + base_ops[25:]
        cfg = ProcessorConfig()
        c_taken = int(Pipeline(cfg).run(Trace.from_ops(taken)).counter("cycles"))
        c_clean = int(Pipeline(cfg).run(Trace.from_ops(clean)).counter("cycles"))
        assert c_taken > c_clean

    def test_load_miss_stalls_consumer(self):
        load = int(InstrClass.LOAD)
        hit = [(load, "r0"), (IALU, "r1", "r0", None, 0)]
        miss = [(load, "r0", None, None, FLAG_L1_MISS),
                (IALU, "r1", "r0", None, 0)]
        cfg = ProcessorConfig()
        c_hit = int(Pipeline(cfg).run(Trace.from_ops(hit)).counter("cycles"))
        c_miss = int(Pipeline(cfg).run(Trace.from_ops(miss)).counter("cycles"))
        assert c_miss == c_hit + cfg.memory.l1d.miss_penalty


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        t = generate_trace("branchy", 4000, seed=77)
        cfg = ProcessorConfig(topology=Topology.RING)
        a = Pipeline(cfg).run(t).as_dict()
        b = Pipeline(cfg).run(t).as_dict()
        assert a == b

    def test_regenerated_trace_identical_stats(self):
        cfg = ProcessorConfig()
        runs = []
        for _ in range(2):
            t = generate_trace("memory_bound", 4000, seed=13)
            runs.append(Pipeline(cfg).run(t).as_dict())
        assert runs[0] == runs[1]


class TestStatsAccounting:
    def test_counters_consistent_with_trace(self):
        t = generate_trace("int_heavy", 3000, seed=3)
        cfg = ProcessorConfig()
        stats = Pipeline(cfg).run(t)
        assert int(stats.counter("instructions")) == len(t)
        issued = sum(
            int(stats.counter(f"issued.cluster{c}"))
            for c in range(cfg.n_clusters)
        )
        nops = t.class_counts()[InstrClass.NOP]
        assert issued == len(t) - nops

    def test_class_counters_match_trace(self):
        t = generate_trace("fp_heavy", 2000, seed=9)
        stats = Pipeline(ProcessorConfig()).run(t)
        counts = t.class_counts()
        for k in InstrClass:
            if counts[k]:
                assert int(stats.counter(f"class.{k.name.lower()}")) == counts[k]

    def test_empty_trace(self):
        t = Trace("empty", [], [], [], [], [])
        stats = Pipeline(ProcessorConfig()).run(t)
        assert int(stats.counter("cycles")) == 0
        assert stats.get_scalar("ipc") == 0.0


class TestNaiveReferenceAgreement:
    """The object-per-instruction model in bench/ is the correctness oracle:
    both implementations must agree cycle-for-cycle on every mix/topology."""

    @classmethod
    def setup_class(cls):
        bench_dir = os.path.join(os.path.dirname(__file__), os.pardir, "bench")
        sys.path.insert(0, bench_dir)

    @pytest.mark.parametrize("mix", ["int_heavy", "fp_heavy", "memory_bound",
                                     "branchy"])
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.CONV])
    def test_cycles_and_comms_agree(self, mix, topology):
        from naive_ref import NaivePipeline

        t = generate_trace(mix, 2000, seed=123)
        cfg = ProcessorConfig(n_clusters=4, topology=topology)
        naive = NaivePipeline(cfg).run(t)
        soa = simulate(t, cfg)
        assert naive["cycles"] == soa.cycles
        assert naive["communications"] == soa.communications
        assert naive["mispredicts"] == soa.mispredicts
        assert naive["l1_misses"] == soa.l1_misses

    @pytest.mark.parametrize("n_clusters", [1, 3, 5])
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.CONV])
    def test_agreement_off_power_of_two(self, n_clusters, topology):
        """The kernel's &-mask modulo fast path only engages for power-of-two
        cluster counts; odd counts must take the % path and still agree."""
        from naive_ref import NaivePipeline

        t = generate_trace("int_heavy", 2000, seed=31)
        cfg = ProcessorConfig(n_clusters=n_clusters, topology=topology)
        naive = NaivePipeline(cfg).run(t)
        soa = simulate(t, cfg)
        assert naive["cycles"] == soa.cycles
        assert naive["communications"] == soa.communications


class TestResultRecord:
    """Serializable result records (consumed by the sweep result store)."""

    def test_kernel_result_round_trip(self):
        from repro.engine import KernelResult

        t = generate_trace("int_heavy", 1500, seed=9)
        result = simulate(t, ProcessorConfig())
        data = result.to_dict()
        rebuilt = KernelResult.from_dict(data)
        assert rebuilt == result
        assert rebuilt.ipc == result.ipc
        # JSON round trip too: histogram keys survive str->int coercion
        import json

        rebuilt2 = KernelResult.from_dict(json.loads(json.dumps(data)))
        assert rebuilt2 == result

    def test_kernel_result_from_dict_rejects_bad_keys(self):
        from repro.engine import KernelResult

        t = generate_trace("int_heavy", 100, seed=9)
        data = simulate(t, ProcessorConfig()).to_dict()
        data["speedup"] = 2.0
        with pytest.raises(ValueError, match="unknown keys"):
            KernelResult.from_dict(data)
        del data["speedup"]
        del data["cycles"]
        with pytest.raises(ValueError, match="missing keys"):
            KernelResult.from_dict(data)

    def test_kernel_result_from_dict_names_bad_histogram_key(self):
        from repro.engine import KernelResult

        t = generate_trace("int_heavy", 100, seed=9)
        data = simulate(t, ProcessorConfig()).to_dict()
        data["hop_histogram"] = {"not-a-number": 3}
        with pytest.raises(ValueError, match="'not-a-number'"):
            KernelResult.from_dict(data)
        data["hop_histogram"] = {"1": None}
        with pytest.raises(ValueError, match="None"):
            KernelResult.from_dict(data)

    def test_kernel_result_empty_histogram_round_trip(self):
        """A one-cluster CONV machine never communicates: the histogram is
        empty and must survive the to_dict/from_dict (and JSON) round trip."""
        import json

        from repro.engine import KernelResult

        t = generate_trace("int_heavy", 500, seed=9)
        cfg = ProcessorConfig(n_clusters=1, topology=Topology.CONV)
        result = simulate(t, cfg)
        assert result.hop_histogram == {}
        data = result.to_dict()
        assert KernelResult.from_dict(data) == result
        assert KernelResult.from_dict(json.loads(json.dumps(data))) == result

    def test_pipeline_run_record(self):
        from repro.engine import ENGINE_VERSION, Pipeline

        cfg = ProcessorConfig(n_clusters=4, topology=Topology.RING)
        t = generate_trace("int_heavy", 1000, seed=5)
        record = Pipeline(cfg).run_record(t)
        assert record["engine_version"] == ENGINE_VERSION
        assert record["config_digest"] == cfg.config_digest()
        assert record["trace"] == t.name
        assert record["kernel_variant"] == Pipeline(cfg).kernel_variant
        assert record["result"]["cycles"] == simulate(t, cfg).cycles
        import json

        json.dumps(record)  # fully JSON-serializable
