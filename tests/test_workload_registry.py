"""The workload-mix registry: enumeration, lookup errors, registration."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import InstrClass
from repro.workloads import (
    MIX_REGISTRY,
    MIXES,
    WorkloadMix,
    available_mixes,
    generate_trace,
    get_mix,
    list_mixes,
    register_mix,
)


class TestRegistry:
    def test_mixes_alias_is_the_registry(self):
        assert MIXES is MIX_REGISTRY

    def test_list_mixes_sorted_and_complete(self):
        assert list_mixes() == tuple(sorted(MIX_REGISTRY))
        assert set(list_mixes()) >= {
            "int_heavy", "fp_heavy", "memory_bound", "branchy",
        }

    def test_available_mixes_alias(self):
        assert available_mixes() == list_mixes()

    def test_get_mix_returns_registered(self):
        assert get_mix("int_heavy") is MIX_REGISTRY["int_heavy"]

    def test_get_mix_unknown_lists_valid_names(self):
        with pytest.raises(ConfigurationError) as err:
            get_mix("spec2000")
        message = str(err.value)
        assert "spec2000" in message
        for name in list_mixes():
            assert name in message

    def test_generate_trace_unknown_mix_helpful_error(self):
        with pytest.raises(ConfigurationError, match="int_heavy"):
            generate_trace("nope", 10)


class TestRegisterMix:
    def _mix(self, name="test_only_mix"):
        return WorkloadMix(
            name=name,
            class_weights={InstrClass.INT_ALU: 0.7, InstrClass.LOAD: 0.3},
        )

    def test_register_and_generate(self):
        mix = self._mix()
        try:
            assert register_mix(mix) is mix
            assert "test_only_mix" in list_mixes()
            trace = generate_trace("test_only_mix", 500, seed=3)
            assert len(trace) == 500
        finally:
            MIX_REGISTRY.pop("test_only_mix", None)

    def test_duplicate_registration_rejected(self):
        mix = self._mix()
        try:
            register_mix(mix)
            with pytest.raises(ConfigurationError, match="already registered"):
                register_mix(self._mix())
            replacement = self._mix()
            register_mix(replacement, overwrite=True)
            assert MIX_REGISTRY["test_only_mix"] is replacement
        finally:
            MIX_REGISTRY.pop("test_only_mix", None)

    def test_existing_name_collision_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_mix(self._mix(name="int_heavy"))
