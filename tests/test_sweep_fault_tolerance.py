"""Fault-tolerant sweep execution: flush frontier, retry/timeout/backoff,
resumable interrupts, and chaos determinism under repro.faults injection.

The governing invariant (ISSUE 6 / the abelian-networks correctness bar):
whatever workers crash, hang, raise, or get interrupted, the bytes that
reach the result store are always an expansion-order prefix of the
fault-free sweep — so a resumed run converges on a store byte-identical
to a single fault-free run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.faults import (
    ENV_VAR,
    FAULT_DEATH,
    FAULT_EXCEPTION,
    FAULT_HANG,
    FAULT_OK,
    FaultPlan,
    clear_plan,
    install_plan,
)
from repro.sweep.grid import SweepSpec
from repro.sweep.runner import (
    FailureRecord,
    RetryPolicy,
    SweepInterrupted,
    run_sweep,
)
from repro.sweep.store import ResultStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _no_leftover_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_plan()
    yield
    clear_plan()


def small_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        name="ft",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=300,
        seeds=(7,),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def reference_bytes(points, tmp_path, name="ref.jsonl") -> bytes:
    """Fault-free single-process store bytes for ``points``."""
    path = str(tmp_path / name)
    run_sweep(points, ResultStore(path), workers=1)
    with open(path, "rb") as fh:
        return fh.read()


def store_bytes(path) -> bytes:
    with open(str(path), "rb") as fh:
        return fh.read()


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout_s is None

    def test_backoff_doubles(self):
        policy = RetryPolicy(backoff_s=0.5)
        assert [policy.backoff_for(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="backoff_s"):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ConfigurationError, match="timeout_s"):
            RetryPolicy(timeout_s=0)


class TestFlushFrontierDurability:
    """Regression for the data-loss bug: the seed runner buffered every
    record in memory and appended only after the full shard completed, so
    one failure at point N of M discarded all N-1 finished results."""

    def test_exception_at_last_point_keeps_prior_points(self, tmp_path):
        points = small_spec().expand()
        doomed = points[-1].key()
        install_plan(FaultPlan(scripted={doomed: [FAULT_EXCEPTION]}))
        store = ResultStore(str(tmp_path / "store.jsonl"))
        summary = run_sweep(
            points, store, workers=1, policy=RetryPolicy(max_attempts=1)
        )
        assert set(summary.failures) == {doomed}
        failure = summary.failures[doomed]
        assert isinstance(failure, FailureRecord)
        assert failure.error == "InjectedFault"
        assert failure.attempts == 1
        # The three finished points survived the failure on disk.
        reloaded = ResultStore(store.path)
        assert set(reloaded.keys()) == {p.key() for p in points[:-1]}
        assert summary.n_computed == 3

    def test_worker_death_mid_sweep_keeps_prior_points(self, tmp_path, monkeypatch):
        # Hard os._exit death of the worker holding point #2, no retries:
        # the runner detects it via the per-point timeout, fails the point,
        # and the already-flushed prefix (points 0 and 1) stays durable.
        points = small_spec().expand()
        assert len(points) == 4
        doomed = points[2].key()
        plan = FaultPlan(scripted={doomed: [FAULT_DEATH]})
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        store = ResultStore(str(tmp_path / "store.jsonl"))
        summary = run_sweep(
            points, store, workers=2,
            policy=RetryPolicy(max_attempts=1, timeout_s=1.0),
        )
        assert set(summary.failures) == {doomed}
        assert summary.failures[doomed].error == "TimeoutError"
        reloaded = ResultStore(store.path)
        assert points[0].key() in reloaded
        assert points[1].key() in reloaded
        assert doomed not in reloaded
        # Point 3 may have been computed, but the blocked frontier must
        # not have persisted it out of order.
        assert points[3].key() not in reloaded

    def test_failed_prefix_resume_reaches_fault_free_bytes(self, tmp_path):
        # A permanently-failed point blocks the frontier; once the fault
        # clears, re-running the sweep must land the byte-identical store
        # a fault-free run would have produced.
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        path = str(tmp_path / "store.jsonl")
        install_plan(FaultPlan(scripted={points[1].key(): [FAULT_EXCEPTION]}))
        summary = run_sweep(
            points, ResultStore(path), workers=1,
            policy=RetryPolicy(max_attempts=1),
        )
        assert summary.n_computed == 1  # only point 0 reached the file
        assert summary.n_discarded == 2  # points 2, 3 computed past the block
        assert ref.startswith(store_bytes(path))
        clear_plan()
        resumed = run_sweep(points, ResultStore(path), workers=1)
        assert resumed.n_cached == 1
        assert resumed.n_computed == 3
        assert store_bytes(path) == ref


class TestRetryRecovery:
    def test_transient_exception_is_retried_to_success(self, tmp_path):
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        flaky = points[2].key()
        install_plan(
            FaultPlan(scripted={flaky: [FAULT_EXCEPTION, FAULT_EXCEPTION]})
        )
        path = str(tmp_path / "store.jsonl")
        messages = []
        summary = run_sweep(
            points, ResultStore(path), workers=1,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.01),
            log=messages.append,
        )
        assert not summary.failures
        assert summary.n_computed == 4
        assert store_bytes(path) == ref
        assert any("retry" in m and "backing off" in m for m in messages)

    def test_inline_demotes_fatal_faults_and_recovers(self, tmp_path):
        # Single-worker runs execute in the orchestrator process, where
        # injected death/hang are demoted to exceptions and retried.
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        install_plan(
            FaultPlan(scripted={
                points[0].key(): [FAULT_DEATH],
                points[3].key(): [FAULT_HANG],
            })
        )
        path = str(tmp_path / "store.jsonl")
        summary = run_sweep(
            points, ResultStore(path), workers=1,
            policy=RetryPolicy(max_attempts=2, backoff_s=0.01),
        )
        assert not summary.failures
        assert store_bytes(path) == ref

    def test_worker_death_recovered_via_timeout_and_pool_replacement(
            self, tmp_path, monkeypatch):
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        plan = FaultPlan(scripted={points[1].key(): [FAULT_DEATH]})
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        path = str(tmp_path / "store.jsonl")
        messages = []
        summary = run_sweep(
            points, ResultStore(path), workers=2,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.01, timeout_s=1.0),
            log=messages.append,
        )
        assert not summary.failures
        assert store_bytes(path) == ref
        assert any("pool replaced" in m for m in messages)

    def test_hung_worker_recovered_via_timeout(self, tmp_path, monkeypatch):
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        plan = FaultPlan(
            hang_s=30.0, scripted={points[2].key(): [FAULT_HANG]}
        )
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        path = str(tmp_path / "store.jsonl")
        t0 = time.monotonic()
        summary = run_sweep(
            points, ResultStore(path), workers=2,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.01, timeout_s=1.0),
        )
        # The 30 s hang must have been cut off by the 1 s timeout, not
        # waited out.
        assert time.monotonic() - t0 < 15.0
        assert not summary.failures
        assert store_bytes(path) == ref

    def test_final_attempt_runs_in_process(self, tmp_path, monkeypatch):
        # Both pool-dispatched attempts of one point die hard; the point
        # still completes because the last permitted attempt executes in
        # the orchestrator (graceful degradation), where the script has
        # run out of faults to inject.
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        doomed = points[0].key()
        plan = FaultPlan(scripted={doomed: [FAULT_DEATH, FAULT_DEATH]})
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        path = str(tmp_path / "store.jsonl")
        messages = []
        summary = run_sweep(
            points, ResultStore(path), workers=2,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.01, timeout_s=1.0),
            log=messages.append,
        )
        assert not summary.failures
        assert store_bytes(path) == ref
        assert any("in-process" in m for m in messages)

    def test_summary_describe_names_failures(self, tmp_path):
        points = small_spec().expand()
        install_plan(FaultPlan(scripted={points[0].key(): [FAULT_EXCEPTION]}))
        summary = run_sweep(
            points, ResultStore(str(tmp_path / "s.jsonl")), workers=1,
            policy=RetryPolicy(max_attempts=1),
        )
        assert "1 FAILED" in summary.describe()
        assert "computed-but-unflushed" in summary.describe()


class TestChaosDeterminism:
    """Seeded injection across every fault type must leave the final store
    byte-identical to the fault-free run at every worker count."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_seeded_exception_storm(self, tmp_path, monkeypatch, workers):
        points = small_spec(cluster_counts=(2, 3, 4, 8)).expand()  # 8 points
        ref = reference_bytes(points, tmp_path)
        plan = FaultPlan(seed=2005, exception_rate=0.6,
                         max_faults_per_point=2)
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        path = str(tmp_path / f"chaos{workers}.jsonl")
        summary = run_sweep(
            points, ResultStore(path), workers=workers,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.01),
        )
        assert not summary.failures
        assert summary.n_computed == 8
        assert store_bytes(path) == ref

    def test_mixed_faults_with_timeouts(self, tmp_path, monkeypatch):
        points = small_spec().expand()
        ref = reference_bytes(points, tmp_path)
        plan = FaultPlan(
            seed=7, exception_rate=0.35, hang_rate=0.15, death_rate=0.15,
            max_faults_per_point=2, hang_s=30.0,
        )
        # The seeded schedule must actually contain at least one fault in
        # the attempt window or this test would assert nothing.
        assert any(
            plan.decide(p.key(), a) for p in points for a in (1, 2)
        )
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        path = str(tmp_path / "chaos.jsonl")
        summary = run_sweep(
            points, ResultStore(path), workers=2,
            policy=RetryPolicy(max_attempts=4, backoff_s=0.01, timeout_s=1.0),
        )
        assert not summary.failures
        assert store_bytes(path) == ref


def _spec_file(tmp_path, n_seeds=20, n_instructions=100_000) -> str:
    spec = {
        "name": "interrupt",
        "topologies": ["ring"],
        "cluster_counts": [4],
        "steerings": ["dependence"],
        "mixes": ["int_heavy"],
        "n_instructions": n_instructions,
        "seeds": list(range(n_seeds)),
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def _sweep_argv(spec_path, store_path):
    return [
        sys.executable, "-m", "repro.sweep", "run",
        "--spec", spec_path, "--store", store_path, "--workers", "2",
    ]


def _cli_env():
    env = dict(os.environ)
    env.pop(ENV_VAR, None)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _assert_no_leaked_workers(store_path, deadline_s=5.0):
    """No process on the box may still reference our unique store path."""
    own = os.getpid()
    end = time.monotonic() + deadline_s
    while True:
        holders = []
        for pid_dir in os.listdir("/proc"):
            if not pid_dir.isdigit() or int(pid_dir) == own:
                continue
            try:
                with open(f"/proc/{pid_dir}/cmdline", "rb") as fh:
                    cmdline = fh.read()
            except OSError:
                continue
            if store_path.encode() in cmdline:
                holders.append(pid_dir)
        if not holders:
            return
        if time.monotonic() > end:
            raise AssertionError(
                f"leaked sweep processes still alive: {holders}"
            )
        time.sleep(0.1)


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_signal_interrupt_is_clean_and_resumable(tmp_path, signum):
    """Satellite: SIGINT/SIGTERM mid-sweep must tear down the pool (no
    leaked workers), keep the flushed expansion-order prefix, exit 130,
    and leave the store resumable to fault-free byte-identity."""
    spec_path = _spec_file(tmp_path)
    store_path = str(tmp_path / "interrupted.jsonl")
    ref_path = str(tmp_path / "reference.jsonl")
    env = _cli_env()

    proc = subprocess.Popen(
        _sweep_argv(spec_path, store_path), env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        # Let the run make some durable progress before interrupting.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if os.path.exists(store_path) and os.path.getsize(store_path) > 0:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            proc.send_signal(signum)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    _assert_no_leaked_workers(store_path)
    # Uninterrupted reference for the same spec.
    ref = subprocess.run(
        _sweep_argv(spec_path, ref_path), env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, timeout=120,
    )
    assert ref.returncode == 0, ref.stderr
    ref_bytes = store_bytes(ref_path)

    if proc.returncode == 130:
        assert "re-run the same command to resume" in stderr
        # Whatever was flushed is an expansion-order prefix — modulo a
        # final line the interrupt may have cut mid-append, which a resume
        # recovers.
        partial = store_bytes(store_path) if os.path.exists(store_path) else b""
        complete_prefix = partial[: partial.rfind(b"\n") + 1]
        assert ref_bytes.startswith(complete_prefix)
        assert len(complete_prefix) < len(ref_bytes)
    else:
        # The sweep won the race and finished before the signal landed;
        # the resume checks below still verify byte-identity.
        assert proc.returncode == 0, (stdout, stderr)

    resume = subprocess.run(
        _sweep_argv(spec_path, store_path), env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, timeout=120,
    )
    assert resume.returncode == 0, resume.stderr
    assert store_bytes(store_path) == ref_bytes


def test_interrupt_mid_run_raises_sweep_interrupted(tmp_path, monkeypatch):
    """API-level interrupt: a KeyboardInterrupt surfacing inside the run
    becomes SweepInterrupted carrying the partial summary, and the flushed
    prefix survives."""
    import repro.sweep.runner as runner_mod

    points = small_spec().expand()
    ref = reference_bytes(points, tmp_path)
    real_execute = runner_mod.execute_point
    calls = []

    def interrupting(payload):
        calls.append(payload)
        if len(calls) == 3:
            raise KeyboardInterrupt()
        return real_execute(payload)

    monkeypatch.setattr(runner_mod, "execute_point", interrupting)
    path = str(tmp_path / "store.jsonl")
    with pytest.raises(SweepInterrupted) as excinfo:
        run_sweep(points, ResultStore(path), workers=1)
    summary = excinfo.value.summary
    assert summary.interrupted
    assert summary.n_computed == 2
    assert "interrupted" in summary.describe()
    assert ref.startswith(store_bytes(path))
    # Resume completes to byte-identity.
    monkeypatch.setattr(runner_mod, "execute_point", real_execute)
    resumed = run_sweep(points, ResultStore(path), workers=1)
    assert resumed.n_cached == 2
    assert store_bytes(path) == ref
