"""``python -m repro.sweep`` CLI: run/report/list/compact wiring, --energy,
and the retry/timeout fault-handling flags."""

import json
import os

import pytest

from repro.faults import FaultPlan, clear_plan, install_plan
from repro.sweep.cli import main
from repro.sweep.grid import SweepSpec
from repro.sweep.store import ResultStore


def tiny_spec_file(tmp_path) -> str:
    spec = SweepSpec(
        name="tiny",
        topologies=("ring", "conv"),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=200,
        seeds=(7,),
    )
    path = str(tmp_path / "spec.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spec.to_dict(), fh)
    return path


class TestRun:
    def test_run_spec_file_and_cache_hits(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert len(ResultStore(store)) == 2
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1"]) == 0
        assert "2 cached, 0 computed" in capsys.readouterr().out

    def test_exactly_one_spec_source_required(self, tmp_path, capsys):
        assert main(["run", "--store", str(tmp_path / "s.jsonl")]) == 2
        assert "choose exactly one" in capsys.readouterr().err
        assert main(["run", "--smoke", "--paper",
                     "--store", str(tmp_path / "s.jsonl")]) == 2

    def test_missing_spec_file_clean_error(self, tmp_path, capsys):
        # Regression: used to dump a raw FileNotFoundError traceback.
        missing = str(tmp_path / "missing.json")
        assert main(["run", "--spec", missing,
                     "--store", str(tmp_path / "s.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read sweep spec")
        assert missing in err
        assert "Traceback" not in err

    def test_non_utf8_spec_file_clean_error(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.json")
        with open(bad, "wb") as fh:
            fh.write(b"\xff\xfe{}")
        assert main(["run", "--spec", bad,
                     "--store", str(tmp_path / "s.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: sweep spec")
        assert "not UTF-8" in err
        assert "Traceback" not in err

    def test_malformed_spec_file_clean_error(self, tmp_path, capsys):
        # Regression: used to dump a raw json.JSONDecodeError traceback.
        bad = str(tmp_path / "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write('{"name": "broken",')
        assert main(["run", "--spec", bad,
                     "--store", str(tmp_path / "s.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: sweep spec")
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_energy_flag_enables_model_on_every_point(self, tmp_path):
        spec = tiny_spec_file(tmp_path)
        store_path = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec, "--store", store_path,
                     "--workers", "1", "--energy"]) == 0
        records = list(ResultStore(store_path).records())
        assert records, "energy run stored nothing"
        for record in records:
            assert record["result"]["energy"]["total"] > 0
            assert record["point"]["config"]["energy"]["enabled"] is True

    def test_energy_points_have_distinct_cache_keys(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1"]) == 0
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1", "--energy"]) == 0
        assert "0 cached, 2 computed" in capsys.readouterr().out
        assert len(ResultStore(store)) == 4


class TestReport:
    def test_report_empty_store_fails(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "none.jsonl"),
                     "--out", str(tmp_path / "report")]) == 1
        assert "empty" in capsys.readouterr().err

    def test_report_without_energy_has_no_energy_tables(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        out_dir = str(tmp_path / "report")
        main(["run", "--spec", spec, "--store", store, "--workers", "1"])
        assert main(["report", "--store", store, "--out", out_dir]) == 0
        stdout = capsys.readouterr().out
        assert "RING/CONV relative IPC" in stdout
        assert "Energy per instruction" not in stdout
        with open(os.path.join(out_dir, "report.md"), encoding="utf-8") as fh:
            assert "Energy per instruction" not in fh.read()
        assert not os.path.exists(os.path.join(out_dir, "epi_vs_clusters.csv"))

    def test_report_with_energy_emits_epi_tables(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        out_dir = str(tmp_path / "report")
        main(["run", "--spec", spec, "--store", store, "--workers", "1",
              "--energy"])
        assert main(["report", "--store", store, "--out", out_dir]) == 0
        assert "Energy per instruction vs cluster count" in \
            capsys.readouterr().out
        epi_csv = os.path.join(out_dir, "epi_vs_clusters.csv")
        with open(epi_csv, encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line]
        assert len(lines) > 1, "EPI table is empty"
        with open(os.path.join(out_dir, "report.md"), encoding="utf-8") as fh:
            report_md = fh.read()
        assert "Energy breakdown by steering policy" in report_md


class TestList:
    def test_list_store_and_mixes(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        main(["run", "--spec", spec, "--store", store, "--workers", "1"])
        assert main(["list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "int_heavy" in out
        assert main(["list", "--mixes"]) == 0
        assert "memory_bound" in capsys.readouterr().out


class TestCompact:
    def test_compact_after_force_rerun_dedups(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1"]) == 0
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1", "--force"]) == 0
        with open(store) as fh:
            assert len(fh.read().splitlines()) == 4
        capsys.readouterr()
        assert main(["compact", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 live record(s)" in out
        assert "2 shadowed duplicate line(s) dropped" in out
        with open(store) as fh:
            assert len(fh.read().splitlines()) == 2
        assert len(ResultStore(store)) == 2

    def test_compact_is_idempotent(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        main(["run", "--spec", spec, "--store", store, "--workers", "1"])
        assert main(["compact", "--store", store]) == 0
        capsys.readouterr()
        assert main(["compact", "--store", store]) == 0
        assert "0 shadowed duplicate line(s) dropped" in capsys.readouterr().out

    def test_compact_help_documents_last_wins(self, capsys):
        with pytest.raises(SystemExit):
            main(["compact", "--help"])
        help_text = capsys.readouterr().out
        assert "last-wins" in help_text
        assert "--force" in help_text


class TestFaultHandlingFlags:
    @pytest.fixture(autouse=True)
    def _clean_faults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        clear_plan()
        yield
        clear_plan()

    def test_permanent_failure_exits_1_with_diagnostics(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        install_plan(FaultPlan(seed=1, exception_rate=1.0,
                               max_faults_per_point=5))
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1", "--retries", "0"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "InjectedFault" in err
        assert "re-run the same command" in err

    def test_retries_recover_from_transient_faults(self, tmp_path):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        # Every point faults exactly once; one retry absorbs it.
        install_plan(FaultPlan(seed=1, exception_rate=1.0,
                               max_faults_per_point=1))
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1", "--retries", "1",
                     "--backoff", "0"]) == 0
        assert len(ResultStore(store)) == 2

    def test_invalid_retry_flags_exit_2(self, tmp_path, capsys):
        spec = tiny_spec_file(tmp_path)
        store = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec, "--store", store,
                     "--workers", "1", "--timeout", "0"]) == 2
        assert "timeout_s" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [["run", "--smoke", "--workers", "1"]])
def test_smoke_spec_runs_end_to_end(tmp_path, argv, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(argv + ["--store", "store.jsonl"]) == 0
    assert len(ResultStore("store.jsonl")) == 24
