"""Work-stealing shard pipelining and coordinator checkpoint/handoff.

Covers the two behaviors the unified execution core enabled:

* ``max_inflight_shards`` — a live backend may hold several leases and
  steal the oldest unleased shard (default 1 preserves the classic
  one-shard-per-backend dispatch);
* ``checkpoint_path`` — the coordinator snapshots its plan, merge
  position, attempt counters, and completed-but-unmerged shard records,
  and a replacement coordinator on the same store + checkpoint resumes
  mid-run (including after dying *between* a merge and the next
  snapshot) with the merged store byte-identical to a fault-free
  single-host run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.common.errors import ConfigurationError, FabricError
from repro.exec.checkpoint import read_checkpoint
from repro.fabric import (
    FabricCoordinator,
    LocalBackend,
    RunnerBackend,
    ShardExecutionError,
)
from repro.sweep.grid import SweepSpec
from repro.sweep.runner import FailureRecord, run_sweep
from repro.sweep.store import ResultStore


def tiny_spec(name="fab-handoff", seeds=(1, 2, 3), **kwargs):
    defaults = dict(
        name=name,
        topologies=("ring", "conv"),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=300,
        seeds=seeds,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def reference_store(spec, path):
    store = ResultStore(str(path))
    run_sweep(spec.expand(), store, workers=1)
    return store


def records_by_key(reference):
    return {record["key"]: record for record in reference.records()}


class _GatedServeBackend(RunnerBackend):
    """Serves precomputed records, but holds every shard (while
    heartbeating) until released — freezing the coordinator mid-run so a
    test can observe its live lease table."""

    def __init__(self, records, name="gated", expect=1):
        self.name = name
        self._records = records
        self.release = threading.Event()
        self.all_started = threading.Event()
        self.expect = expect
        self._lock = threading.Lock()
        self._inflight = 0
        self.peak_inflight = 0

    def run_shard(self, spec, shard, heartbeat):
        with self._lock:
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            if self._inflight >= self.expect:
                self.all_started.set()
        try:
            while not self.release.wait(timeout=0.02):
                heartbeat()
            heartbeat()
            return [self._records[key] for key in shard.keys]
        finally:
            with self._lock:
                self._inflight -= 1


class _ServeBackend(RunnerBackend):
    """Returns precomputed records instantly, remembering which shard
    ordinals it was asked to run."""

    def __init__(self, records, name="serve"):
        self.name = name
        self._records = records
        self.ran = []

    def run_shard(self, spec, shard, heartbeat):
        heartbeat()
        self.ran.append(shard.index)
        return [self._records[key] for key in shard.keys]


class _FailShardZeroBackend(RunnerBackend):
    """Serves every shard except ordinal 0, which always fails (slowly
    enough that the other shards complete and buffer first)."""

    def __init__(self, records, name="half"):
        self.name = name
        self._records = records

    def run_shard(self, spec, shard, heartbeat):
        heartbeat()
        if shard.index == 0:
            time.sleep(0.05)
            raise ShardExecutionError(f"{self.name}: shard 0 always fails")
        return [self._records[key] for key in shard.keys]


class _CrashLog:
    """A coordinator log callback that raises once a trigger message has
    been seen ``after`` times — simulating the process dying at an exact
    point in the run (log calls happen synchronously on the coordinator
    thread, e.g. right after a merge wrote to the store but before the
    next checkpoint snapshot)."""

    def __init__(self, trigger, after=1):
        self.trigger = trigger
        self.after = after
        self.lines = []

    def __call__(self, message):
        self.lines.append(message)
        if self.trigger in message:
            self.after -= 1
            if self.after == 0:
                raise RuntimeError("simulated coordinator crash")


# -- work stealing ----------------------------------------------------------

class TestWorkStealing:
    def test_backend_pipelines_up_to_the_inflight_cap(self, tmp_path):
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        gated = _GatedServeBackend(records_by_key(ref), expect=3)
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        ckpt = str(tmp_path / "run.ckpt")
        coordinator = FabricCoordinator(
            [gated], shard_size=2, poll_s=0.01,
            max_inflight_shards=3, checkpoint_path=ckpt,
        )
        outcome = {}

        def drive():
            outcome["summary"] = coordinator.run(spec, store)

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        try:
            assert gated.all_started.wait(timeout=10.0)
            # One backend, three live leases: the steal loop filled it to
            # the cap instead of stopping at one shard.
            assert coordinator.lease_counts() == {"gated": 3}
            # The run is mid-flight, so the handoff snapshot exists.
            assert read_checkpoint(ckpt) is not None
        finally:
            gated.release.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        summary = outcome["summary"]
        assert gated.peak_inflight == 3
        assert summary.n_computed == 6
        assert summary.backends["gated"]["shards_completed"] == 3
        assert summary.backends["gated"]["max_inflight"] == 3
        assert summary.backends["gated"]["inflight_leases"] == 0
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()
        # Terminal success clears the checkpoint.
        assert read_checkpoint(ckpt) is None

    def test_default_cap_keeps_one_lease_per_backend(self, tmp_path):
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        gated = _GatedServeBackend(records_by_key(ref), expect=1)
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        coordinator = FabricCoordinator([gated], shard_size=2, poll_s=0.01)
        outcome = {}

        def drive():
            outcome["summary"] = coordinator.run(spec, store)

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        try:
            assert gated.all_started.wait(timeout=10.0)
            time.sleep(0.1)     # several dispatch ticks
            assert coordinator.lease_counts() == {"gated": 1}
        finally:
            gated.release.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert gated.peak_inflight == 1
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_inflight_cap_validation(self, tmp_path):
        backend = LocalBackend(str(tmp_path / "s"), workers=1)
        with pytest.raises(ConfigurationError, match="max_inflight_shards"):
            FabricCoordinator([backend], max_inflight_shards=0)
        with pytest.raises(ConfigurationError, match="checkpoint_interval"):
            FabricCoordinator([backend], checkpoint_interval_s=0.0)


# -- checkpoint / handoff ---------------------------------------------------

class TestCheckpointHandoff:
    def test_crash_after_merge_resumes_byte_identical(self, tmp_path):
        # The nastiest window: the coordinator dies right after merging a
        # shard into the store but before snapshotting that progress.  The
        # replacement must trust the store, not the stale checkpoint.
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        records = records_by_key(ref)
        ckpt = str(tmp_path / "run.ckpt")
        crash = _CrashLog("merged", after=1)
        first = FabricCoordinator(
            [_ServeBackend(records)], shard_size=2, poll_s=0.01,
            checkpoint_path=ckpt, checkpoint_interval_s=0.01,
            log=crash,
        )
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        with pytest.raises(RuntimeError, match="simulated coordinator"):
            first.run(spec, store)
        # The crash left a checkpoint and a store whose merged prefix is
        # AHEAD of it (shard 0 merged, snapshot not yet updated).
        stale = read_checkpoint(ckpt)
        assert stale is not None
        assert len(ResultStore(store.path)) >= 2
        assert stale["merged_through"] == 0

        replacement = _ServeBackend(records, name="serve2")
        second = FabricCoordinator(
            [replacement], shard_size=2, poll_s=0.01,
            checkpoint_path=ckpt, checkpoint_interval_s=0.01,
        )
        log_store = ResultStore(store.path)     # fresh process: reload
        summary = second.run(spec, log_store)
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()
        # Shard 0 was already durable: the replacement computed only the
        # other two shards.
        assert sorted(replacement.ran) == [1, 2]
        assert summary.n_computed == 4
        assert read_checkpoint(ckpt) is None

    def test_buffered_completions_rehydrate_instead_of_recompute(
            self, tmp_path):
        # The backend completed shards 1 and 2 out of order; the periodic
        # snapshot carried them while shard 0 was still failing.  The
        # replacement coordinator must recompute ONLY shard 0 and merge
        # the rehydrated records for the rest.
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        records = records_by_key(ref)
        ckpt = str(tmp_path / "run.ckpt")
        crash = _CrashLog("requeueing", after=1)
        first = FabricCoordinator(
            [_FailShardZeroBackend(records)],
            shard_size=2, poll_s=0.01, max_inflight_shards=3,
            checkpoint_path=ckpt, checkpoint_interval_s=0.01,
            log=crash, dead_after=99,
        )
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        with pytest.raises(RuntimeError, match="simulated coordinator"):
            first.run(spec, store)
        stale = read_checkpoint(ckpt)
        assert stale is not None
        assert set(stale["completed"]) == {"1", "2"}
        assert stale["attempts"].get("0") == 1

        replacement = _ServeBackend(records, name="serve2")
        second = FabricCoordinator(
            [replacement], shard_size=2, poll_s=0.01,
            checkpoint_path=ckpt, checkpoint_interval_s=0.01,
        )
        summary = second.run(spec, ResultStore(store.path))
        assert sorted(replacement.ran) == [0]
        assert summary.n_computed == 6
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()
        assert read_checkpoint(ckpt) is None

    def test_mismatched_spec_checkpoint_is_ignored(self, tmp_path):
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        ckpt = str(tmp_path / "run.ckpt")
        # A checkpoint from some other spec (wrong digest): planned fresh.
        from repro.exec.checkpoint import write_checkpoint
        write_checkpoint(ckpt, {
            "version": 1, "spec_digest": "not-this-spec",
            "shards": [{"index": 0, "start": 0, "stop": 99}],
            "merged_through": 0, "attempts": {}, "completed": {},
        })
        said = []
        coordinator = FabricCoordinator(
            [_ServeBackend(records_by_key(ref))], shard_size=2,
            poll_s=0.01, checkpoint_path=ckpt, log=said.append,
        )
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        summary = coordinator.run(spec, store)
        assert any("ignoring checkpoint" in line for line in said)
        assert summary.n_computed == 6
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_sigkilled_coordinator_hands_off_to_replacement(self, tmp_path):
        # The end-to-end drill the fabric-handoff CI job runs: a real
        # coordinator process SIGKILLed mid-run, then a replacement
        # invocation on the same store + checkpoint finishing the sweep
        # byte-identically to the single-host reference.
        spec = tiny_spec(n_instructions=2000)
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh)
        store_path = str(tmp_path / "fab.jsonl")
        ckpt = str(tmp_path / "run.ckpt")
        argv = [
            sys.executable, "-m", "repro.fabric", "run",
            "--spec", spec_path, "--store", store_path,
            "--checkpoint", ckpt, "--checkpoint-interval", "0.05",
            "--shard-size", "1", "--local-workers", "1",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            # Kill as soon as some progress is durable but (on any sanely
            # fast machine) well before all 6 shards finished.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and proc.poll() is None:
                if os.path.exists(store_path) and \
                        os.path.getsize(store_path) > 0:
                    break
                time.sleep(0.02)
            killed_midrun = proc.poll() is None
            if killed_midrun:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        if killed_midrun:
            # SIGKILL ran no cleanup: the handoff snapshot must survive.
            assert read_checkpoint(ckpt) is not None

        from repro.fabric.cli import main
        assert main([
            "run", "--spec", spec_path, "--store", store_path,
            "--checkpoint", ckpt, "--checkpoint-interval", "0.05",
            "--shard-size", "1", "--local-workers", "1",
        ]) == 0
        assert open(ref.path, "rb").read() == \
            open(store_path, "rb").read()
        assert read_checkpoint(ckpt) is None


# -- failure schema (shared with the sweep summary) -------------------------

class TestFailureSchema:
    def test_exhausted_shard_reports_sweep_style_failures(self, tmp_path):
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        records = records_by_key(ref)
        backend = _FailShardZeroBackend(records)
        coordinator = FabricCoordinator(
            [backend], shard_size=2, poll_s=0.01,
            max_inflight_shards=4, max_shard_attempts=2, dead_after=99,
        )
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        with pytest.raises(FabricError, match="giving up") as excinfo:
            coordinator.run(spec, store)
        summary = excinfo.value.summary
        assert summary is not None
        # Shard 0's two points carry FailureRecords — the same class, the
        # same fields, the sweep summary uses.
        keyed_failures = summary.failures
        assert len(keyed_failures) == 2
        for key, failure in keyed_failures.items():
            assert isinstance(failure, FailureRecord)
            assert failure.key == key
            assert failure.error == "ShardExecutionError"
            assert failure.attempts == 2
            assert set(failure.to_dict()) == {
                "key", "label", "attempts", "error", "message", "elapsed_s",
            }
        # Shards 1 and 2 were computed but blocked behind the failure.
        assert summary.n_discarded == 4
        described = summary.describe()
        assert "2 FAILED" in described
        assert "4 computed-but-unflushed" in described
        # Nothing merged: the store is still an honest (empty) prefix.
        assert len(ResultStore(store.path, load=True)) == 0

    def test_fabric_and_sweep_summaries_share_failure_fields(self):
        import dataclasses

        from repro.fabric.scheduler import FabricSummary
        from repro.sweep.runner import SweepSummary

        fabric_fields = {f.name for f in dataclasses.fields(FabricSummary)}
        sweep_fields = {f.name for f in dataclasses.fields(SweepSummary)}
        shared = {"n_points", "n_cached", "n_computed", "elapsed_s",
                  "failures", "n_discarded"}
        assert shared <= fabric_fields
        assert shared <= sweep_fields

    def test_cli_prints_failure_lines_like_the_sweep_cli(
            self, tmp_path, monkeypatch, capsys):
        from repro.fabric import cli as fabric_cli
        from repro.fabric.scheduler import FabricSummary

        summary = FabricSummary(n_points=2, n_cached=0, n_computed=0,
                                n_shards=1)
        summary.failures["k1"] = FailureRecord(
            key="k1", label="ring/c2", attempts=3,
            error="ShardExecutionError", message="synthetic",
            elapsed_s=1.25,
        )

        def fail_run(self, spec, store):
            raise FabricError("giving up", summary=summary)

        monkeypatch.setattr(fabric_cli.FabricCoordinator, "run", fail_run)
        rc = fabric_cli.main([
            "run", "--smoke", "--store", str(tmp_path / "s.jsonl"),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "FAILED ring/c2: ShardExecutionError: synthetic" in err
        assert "(3 attempt(s), 1.25s)" in err


# -- CLI flags --------------------------------------------------------------

class TestCliFlags:
    def test_bad_values_exit_2(self, tmp_path):
        from repro.fabric.cli import main
        store = str(tmp_path / "s.jsonl")
        assert main(["run", "--smoke", "--store", store,
                     "--max-inflight-shards", "0"]) == 2
        assert main(["run", "--smoke", "--store", store,
                     "--checkpoint", str(tmp_path / "c.ckpt"),
                     "--checkpoint-interval", "0"]) == 2

    def test_probe_shows_inflight_lease_counts(self, tmp_path, capsys):
        from repro.fabric.cli import main
        assert main(["probe", "--local",
                     "--max-inflight-shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "local: up" in out
        assert "inflight 0/2" in out
