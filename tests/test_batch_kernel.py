"""repro.engine.batch: the lane-vectorized numpy kernel.

The equivalence contract — every lane of :func:`simulate_batch` equals
:func:`repro.engine.kernel.simulate` on that lane alone — is fuzzed
broadly in ``test_fuzz_kernels.py``; this file pins the surface: shapes
(B=1, ragged, empty), error paths (mixed specialization keys, config/lane
count mismatch, interpreted-only steering plugins), and the ``batch``
entry in the :class:`~repro.engine.Pipeline` variant selector.
"""

import pytest

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError
from repro.common.types import Topology
from repro.energy import EnergyConfig
from repro.engine import (
    KERNEL_VARIANTS,
    Pipeline,
    resolve_kernel_variant,
    simulate,
    simulate_batch,
)
from repro.steering import STEERING_REGISTRY, SteeringPolicy, register_policy
from repro.workloads import generate_trace

RING = ProcessorConfig(topology=Topology.RING, n_clusters=4)
CONV = ProcessorConfig(topology=Topology.CONV, n_clusters=4)


class TestShapes:
    @pytest.mark.parametrize("cfg", [RING, CONV], ids=["ring", "conv"])
    def test_single_lane_equals_generic(self, cfg):
        trace = generate_trace("int_heavy", 500, seed=7)
        assert simulate_batch([trace], cfg) == [simulate(trace, cfg)]

    @pytest.mark.parametrize("cfg", [RING, CONV], ids=["ring", "conv"])
    def test_ragged_lanes_span_finished_and_running(self, cfg):
        # Lane lengths straddle each other: short lanes sit finished (NOP
        # padded) for most of the run while long lanes keep executing, and
        # none of that may leak across lanes.
        lanes = [
            generate_trace("branchy", n, seed=50 + n)
            for n in (300, 1, 300, 64, 2, 177)
        ]
        batch = simulate_batch(lanes, cfg)
        assert len(batch) == len(lanes)
        for trace, lane_result in zip(lanes, batch):
            assert lane_result == simulate(trace, cfg), len(trace)

    def test_empty_trace_lane(self):
        lanes = [
            generate_trace("int_heavy", 0, seed=1),
            generate_trace("int_heavy", 120, seed=2),
        ]
        batch = simulate_batch(lanes, RING)
        for trace, lane_result in zip(lanes, batch):
            assert lane_result == simulate(trace, RING)
        assert batch[0].n_instructions == 0
        assert batch[0].cycles == 0

    def test_all_lanes_empty(self):
        lanes = [generate_trace("int_heavy", 0, seed=s) for s in (1, 2)]
        batch = simulate_batch(lanes, CONV)
        for trace, lane_result in zip(lanes, batch):
            assert lane_result == simulate(trace, CONV)

    def test_empty_batch(self):
        assert simulate_batch([], RING) == []

    def test_identical_lanes_identical_results(self):
        trace = generate_trace("memory_bound", 250, seed=9)
        first, second = simulate_batch([trace, trace], RING)
        assert first == second == simulate(trace, RING)

    def test_per_lane_config_list(self):
        # Distinct config objects are fine as long as they share one
        # structural specialization key (differing only in, say, the
        # disabled energy model's cost fields).
        trace_a = generate_trace("int_heavy", 200, seed=3)
        trace_b = generate_trace("branchy", 150, seed=4)
        cfg_b = ProcessorConfig(
            topology=Topology.RING, n_clusters=4,
            energy=EnergyConfig(bus_hop=9),  # disabled: structurally equal
        )
        batch = simulate_batch([trace_a, trace_b], [RING, cfg_b])
        assert batch[0] == simulate(trace_a, RING)
        assert batch[1] == simulate(trace_b, cfg_b)


class TestErrors:
    def test_mixed_specialization_keys_rejected(self):
        traces = [generate_trace("int_heavy", 50, seed=s) for s in (1, 2)]
        other = ProcessorConfig(topology=Topology.RING, n_clusters=8)
        with pytest.raises(ConfigurationError, match="specialization key"):
            simulate_batch(traces, [RING, other])

    def test_config_count_mismatch_rejected(self):
        traces = [generate_trace("int_heavy", 50, seed=s) for s in (1, 2)]
        with pytest.raises(ConfigurationError, match="2 traces"):
            simulate_batch(traces, [RING])

    def test_interpreted_only_policy_names_the_escape_hatch(self):
        class _InterpretedOnly(SteeringPolicy):
            name = "test_interpreted_only"

            def make_generic(self, ctx):
                return lambda i, s1, s2, fetch_cycle: 0

            def make_naive(self, ctx):
                return lambda instr, fetch_cycle: 0

        register_policy(_InterpretedOnly())
        try:
            cfg = ProcessorConfig(steering="test_interpreted_only")
            trace = generate_trace("int_heavy", 100, seed=1)
            # The generic kernel runs it fine...
            assert simulate(trace, cfg).n_instructions == 100
            # ...but the batch kernel must refuse with a pointer to the
            # interpreted escape hatch, not crash mid-simulation.
            with pytest.raises(ConfigurationError,
                               match="kernel_variant='generic'"):
                simulate_batch([trace], cfg)
        finally:
            STEERING_REGISTRY.pop("test_interpreted_only", None)


class TestPipelineVariant:
    def test_batch_is_a_registered_variant(self):
        assert "batch" in KERNEL_VARIANTS
        assert resolve_kernel_variant("batch") == "batch"

    def test_pipeline_batch_variant_matches_generic(self):
        trace = generate_trace("fp_heavy", 400, seed=12)
        batch_stats = Pipeline(RING, kernel_variant="batch").run(trace)
        generic_stats = Pipeline(RING, kernel_variant="generic").run(trace)
        assert batch_stats.as_dict() == generic_stats.as_dict()

    def test_pipeline_batch_record_attribution(self):
        trace = generate_trace("int_heavy", 200, seed=13)
        record = Pipeline(RING, kernel_variant="batch").run_record(trace)
        assert record["kernel_variant"] == "batch"
        reference = Pipeline(RING, kernel_variant="generic").run_record(trace)
        reference["kernel_variant"] = "batch"
        assert record == reference

    def test_env_var_selects_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_VARIANT", "batch")
        assert Pipeline(RING).kernel_variant == "batch"

    def test_unknown_variant_error_lists_batch(self):
        with pytest.raises(ConfigurationError, match="batch"):
            resolve_kernel_variant("vectorised")
