"""repro.energy: config validation, digest stability, and model invariants.

The heart of this module is the set of properties the per-event model must
satisfy no matter the configuration:

* the reported ``total`` is exactly the sum of the breakdown components;
* energy is monotone non-decreasing in trace length (every instruction
  contributes a non-negative amount, and processing is prefix-determined);
* a disabled model is *free*: byte-identical ``KernelResult`` serialization
  and byte-identical sweep stores to the pre-energy behaviour, identical
  emitted kernel source, unchanged config digests;
* enabling the model never changes any timing field.
"""

import dataclasses
import os

import pytest

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError
from repro.common.jsonutil import canonical_json
from repro.common.types import Topology
from repro.energy import (
    ENERGY_COMPONENTS,
    EnergyConfig,
    FuEnergy,
    fold_breakdown,
)
from repro.engine import (
    ENGINE_VERSION,
    KernelResult,
    Pipeline,
    emit_kernel_source,
    simulate,
    simulate_batch,
    simulate_specialized,
    specialization_key,
)
from repro.engine.trace import Trace
from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.workloads import generate_trace

ENERGY_ON = EnergyConfig(enabled=True)


def prefix_trace(trace: Trace, m: int) -> Trace:
    """First ``m`` instructions of ``trace`` (dependences point backwards,
    so every prefix is a structurally valid trace)."""
    return Trace(
        f"{trace.name}[:{m}]",
        list(trace.opclass)[:m],
        list(trace.src1)[:m],
        list(trace.src2)[:m],
        list(trace.dst)[:m],
        list(trace.flags)[:m],
    )


class TestEnergyConfig:
    def test_defaults_disabled(self):
        assert EnergyConfig().enabled is False
        assert ProcessorConfig().energy == EnergyConfig()

    def test_round_trip(self):
        cfg = EnergyConfig(enabled=True, bus_hop=7, fu=FuEnergy(int_div=99))
        assert EnergyConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            EnergyConfig.from_dict({"enabled": True, "volts": 3})
        with pytest.raises(ConfigurationError, match="unknown key"):
            FuEnergy.from_dict({"int_alu": 1, "nop": 0})

    @pytest.mark.parametrize("kwargs", [
        {"fetch": -1},
        {"issue": 1.5},
        {"wakeup": True},
        {"enabled": 1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EnergyConfig(**kwargs)

    def test_fu_table_covers_every_class_and_zeroes_nop(self):
        from repro.common.types import InstrClass

        table = FuEnergy().table()
        assert len(table) == len(InstrClass)
        assert table[InstrClass.NOP] == 0
        assert table[InstrClass.LOAD] == table[InstrClass.FP_LOAD]

    def test_processor_config_round_trip_with_energy(self):
        cfg = ProcessorConfig(energy=EnergyConfig(enabled=True, l2_miss=99))
        assert ProcessorConfig.from_dict(cfg.to_dict()) == cfg

    def test_nested_unknown_energy_key_rejected(self):
        data = ProcessorConfig(energy=ENERGY_ON).to_dict()
        data["energy"]["volts"] = 3
        with pytest.raises(ConfigurationError, match="volts"):
            ProcessorConfig.from_dict(data)


class TestDigestRules:
    def test_default_digest_unchanged_by_energy_field(self):
        # The pre-energy pin: adding the (disabled) energy model must not
        # invalidate existing sweep stores.
        assert ProcessorConfig().config_digest() == "ad0812deeb42a9ef"
        assert "energy" not in ProcessorConfig().to_dict()

    def test_explicit_default_energy_is_digest_neutral(self):
        data = ProcessorConfig().to_dict()
        data["energy"] = EnergyConfig().to_dict()
        assert ProcessorConfig.from_dict(data).config_digest() == \
            "ad0812deeb42a9ef"

    def test_enabled_energy_changes_digest(self):
        assert ProcessorConfig(energy=ENERGY_ON).config_digest() != \
            ProcessorConfig().config_digest()

    def test_cost_changes_change_digest_when_serialized(self):
        a = ProcessorConfig(energy=EnergyConfig(enabled=True, bus_hop=1))
        b = ProcessorConfig(energy=EnergyConfig(enabled=True, bus_hop=2))
        assert a.config_digest() != b.config_digest()

    def test_specialization_key_ignores_disabled_model(self):
        cfg = ProcessorConfig()
        custom_off = ProcessorConfig(energy=EnergyConfig(bus_hop=9))
        assert specialization_key(cfg) == specialization_key(custom_off)
        assert emit_kernel_source(cfg) == emit_kernel_source(custom_off)

    def test_disabled_model_leaves_no_trace_in_emitted_source(self):
        # The emitted source of an energy-off kernel was verified
        # byte-identical against the pre-energy tree when this PR landed
        # (old config + old codegen on an isolated PYTHONPATH).  A committed
        # test cannot rerun that cross-version diff, so pin its two
        # observable consequences instead: the default config's structural
        # key is unchanged, and no energy artifact appears in the source.
        assert specialization_key(ProcessorConfig()) == "9ea19684a67f019d"
        for cfg in (
            ProcessorConfig(),
            ProcessorConfig(topology=Topology.CONV, n_clusters=3),
        ):
            source = emit_kernel_source(cfg)
            for artifact in ("energy", "wakeup", "retire_col",
                             "weighted_hops", "operand_reads"):
                assert artifact not in source, (cfg.describe(), artifact)
        assert "energy" not in repr(ProcessorConfig().describe())

    def test_specialization_key_folds_enabled_costs(self):
        on = ProcessorConfig(energy=ENERGY_ON)
        assert specialization_key(on) != specialization_key(ProcessorConfig())
        other = ProcessorConfig(energy=EnergyConfig(enabled=True, bus_hop=9))
        assert specialization_key(on) != specialization_key(other)

    def test_enabled_costs_are_literals_in_emitted_source(self):
        cfg = ProcessorConfig(
            energy=EnergyConfig(enabled=True, bus_hop=1234, wakeup=987)
        )
        source = emit_kernel_source(cfg)
        assert "1234 * weighted_hops" in source
        assert "987 * wakeup_units" in source


class TestBreakdownInvariants:
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.CONV])
    @pytest.mark.parametrize("mix", ["int_heavy", "memory_bound", "branchy"])
    def test_total_is_component_sum(self, topology, mix):
        cfg = ProcessorConfig(topology=topology, energy=ENERGY_ON)
        trace = generate_trace(mix, 1200, seed=11)
        for result in (simulate(trace, cfg), simulate_specialized(trace, cfg),
                       simulate_batch([trace], cfg)[0]):
            assert set(result.energy) == set(ENERGY_COMPONENTS) | {"total"}
            assert result.energy["total"] == sum(
                result.energy[c] for c in ENERGY_COMPONENTS
            )
            assert all(units >= 0 for units in result.energy.values())

    @pytest.mark.parametrize("topology", [Topology.RING, Topology.CONV])
    def test_monotone_non_decreasing_in_trace_length(self, topology):
        cfg = ProcessorConfig(topology=topology, window_size=16,
                              energy=ENERGY_ON)
        trace = generate_trace("memory_bound", 600, seed=3)
        previous = {c: 0 for c in ENERGY_COMPONENTS + ("total",)}
        for m in (0, 1, 7, 50, 200, 450, 600):
            energy = simulate(prefix_trace(trace, m), cfg).energy
            for component, units in energy.items():
                assert units >= previous[component], (m, component)
            previous = energy

    def test_wakeup_bounded_by_window_occupancy(self):
        # Occupancy is in [1, window_size] at every fetch event.
        window = 8
        cfg = ProcessorConfig(window_size=window, energy=ENERGY_ON)
        trace = generate_trace("int_heavy", 2000, seed=5)
        wakeup = simulate(trace, cfg).energy["wakeup"]
        n = len(trace)
        assert ENERGY_ON.wakeup * n <= wakeup <= ENERGY_ON.wakeup * n * window

    def test_single_instruction_breakdown_exact(self):
        from repro.common.types import InstrClass

        cfg = ProcessorConfig(energy=ENERGY_ON)
        trace = Trace.from_ops([(InstrClass.INT_ALU, "r1")])
        energy = simulate(trace, cfg).energy
        e = ENERGY_ON
        assert energy == {
            "fetch": e.fetch,
            "steer": e.steer,
            "issue": e.issue,
            # No sources; one produced value; RING injects but nobody reads,
            # so no hops are tallied and the bus component stays zero.
            "operand": e.result_write,
            "fu": e.fu.int_alu,
            "bus": 0,
            "cache": 0,
            "wakeup": e.wakeup,  # occupancy is exactly 1
            "total": e.fetch + e.steer + e.issue + e.result_write
            + e.fu.int_alu + e.wakeup,
        }

    def test_empty_trace_all_zero(self):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        trace = generate_trace("int_heavy", 0, seed=1)
        energy = simulate(trace, cfg).energy
        assert energy == {c: 0 for c in ENERGY_COMPONENTS + ("total",)}

    def test_enabling_energy_never_changes_timing(self):
        for topology in (Topology.RING, Topology.CONV):
            cfg_off = ProcessorConfig(topology=topology)
            cfg_on = cfg_off.with_(energy=ENERGY_ON)
            trace = generate_trace("fp_heavy", 1500, seed=8)
            off = simulate(trace, cfg_off)
            on = simulate(trace, cfg_on)
            assert on.energy is not None
            assert dataclasses.replace(on, energy=None) == off
            assert simulate_specialized(trace, cfg_on) == on
            assert simulate_batch([trace], cfg_on)[0] == on

    def test_fold_breakdown_matches_kernel(self):
        # The shared fold, fed the kernel's own counters, reproduces the
        # kernel's breakdown (sanity for external consumers of the helper).
        cfg = ProcessorConfig(energy=ENERGY_ON)
        trace = generate_trace("memory_bound", 800, seed=2)
        result = simulate(trace, cfg)
        weighted_hops = sum(d * c for d, c in result.hop_histogram.items())
        operand_reads = sum(
            (s >= 0) for col in (trace.src1, trace.src2) for s in col
        )
        wakeup_units = result.energy["wakeup"] // ENERGY_ON.wakeup
        assert fold_breakdown(
            ENERGY_ON,
            n=result.n_instructions,
            class_counts=result.class_counts,
            operand_reads=operand_reads,
            weighted_hops=weighted_hops,
            l1_misses=result.l1_misses,
            l2_misses=result.l2_misses,
            wakeup_units=wakeup_units,
        ) == result.energy


class TestKernelResultSerialization:
    def test_energy_round_trip(self):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        result = simulate(generate_trace("int_heavy", 400, seed=4), cfg)
        data = result.to_dict()
        assert "energy" in data
        assert KernelResult.from_dict(data) == result

    def test_disabled_serializes_without_energy_key(self):
        result = simulate(generate_trace("int_heavy", 400, seed=4),
                          ProcessorConfig())
        data = result.to_dict()
        assert "energy" not in data
        restored = KernelResult.from_dict(data)
        assert restored == result
        assert restored.energy is None

    def test_bad_energy_units_named(self):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        data = simulate(generate_trace("int_heavy", 50, seed=4), cfg).to_dict()
        data["energy"]["bus"] = "lots"
        with pytest.raises(ValueError, match="bus"):
            KernelResult.from_dict(data)

    @pytest.mark.parametrize("missing", ["total", "wakeup"])
    def test_missing_energy_component_named(self, missing):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        data = simulate(generate_trace("int_heavy", 50, seed=4), cfg).to_dict()
        del data["energy"][missing]
        with pytest.raises(ValueError, match=missing):
            KernelResult.from_dict(data)

    def test_unknown_energy_component_named(self):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        data = simulate(generate_trace("int_heavy", 50, seed=4), cfg).to_dict()
        data["energy"]["wakup"] = 7  # typo'd component must not round-trip
        with pytest.raises(ValueError, match="wakup"):
            KernelResult.from_dict(data)

    def test_energy_per_instr(self):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        result = simulate(generate_trace("int_heavy", 300, seed=4), cfg)
        assert result.energy_per_instr == pytest.approx(
            result.energy["total"] / result.n_instructions
        )
        assert simulate(generate_trace("int_heavy", 300, seed=4),
                        ProcessorConfig()).energy_per_instr == 0.0


class TestOffIsByteIdenticalToPrePR:
    """``energy=off`` must reproduce the pre-energy bytes everywhere."""

    SPEC = SweepSpec(
        name="baseline",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=400,
        seeds=(2005,),
    )

    def _store_bytes(self, tmp_path, filename, **kwargs) -> bytes:
        store = ResultStore(str(tmp_path / filename))
        run_sweep(self.SPEC.expand(), store, workers=1, **kwargs)
        with open(store.path, "rb") as fh:
            return fh.read()

    def test_store_matches_pre_energy_record_schema(self, tmp_path):
        """The store bytes equal a hand-built pre-PR baseline: the exact
        record schema the sweep wrote before the energy model (and the
        ``kernel_variant`` provenance field) existed."""
        data = self._store_bytes(tmp_path, "store.jsonl")
        expected_lines = []
        for point in self.SPEC.expand():
            trace = generate_trace(point.mix, point.n_instructions,
                                   seed=point.seed)
            result = simulate(trace, point.config)
            record = {
                "engine_version": ENGINE_VERSION,
                "config_digest": point.config.config_digest(),
                "trace": trace.name,
                "result": result.to_dict(),
                "key": point.key(),
                "point": point.to_dict(),
            }
            expected_lines.append(canonical_json(record))
        assert data.decode("utf-8") == "".join(
            line + "\n" for line in expected_lines
        )
        assert b'"energy"' not in data
        assert b"kernel_variant" not in data

    def test_store_identical_across_variants_and_workers(self, tmp_path):
        baseline = self._store_bytes(tmp_path, "spec.jsonl",
                                     kernel_variant="specialized")
        generic = self._store_bytes(tmp_path, "gen.jsonl",
                                    kernel_variant="generic")
        batch = self._store_bytes(tmp_path, "batch.jsonl",
                                  kernel_variant="batch")
        assert baseline == generic
        assert baseline == batch

    def test_energy_store_identical_across_variants(self, tmp_path):
        spec = SweepSpec(
            name="energy-baseline",
            topologies=("ring", "conv"),
            cluster_counts=(2,),
            steerings=("dependence",),
            mixes=("int_heavy",),
            n_instructions=300,
            seeds=(2005,),
            base={"energy.enabled": True},
        )
        stores = []
        for variant in ("specialized", "generic", "batch"):
            store = ResultStore(str(tmp_path / f"{variant}.jsonl"))
            run_sweep(spec.expand(), store, workers=1, kernel_variant=variant)
            with open(store.path, "rb") as fh:
                stores.append(fh.read())
        assert stores[0] == stores[1] == stores[2]
        assert b'"energy"' in stores[0]

    def test_energy_exact_across_ragged_batch(self):
        # One batched call whose lanes finish at different steps; every
        # lane's energy breakdown must match the generic kernel's for that
        # lane alone, component by component, as exact integers.
        cfg = ProcessorConfig(energy=ENERGY_ON)
        lanes = [
            generate_trace("int_heavy", n, seed=300 + n)
            for n in (1, 37, 400, 400, 158)
        ]
        for lane_result, trace in zip(simulate_batch(lanes, cfg), lanes):
            reference = simulate(trace, cfg)
            for component in ENERGY_COMPONENTS + ("total",):
                assert lane_result.energy[component] == \
                    reference.energy[component], (len(trace), component)


class TestPipelineSurface:
    def test_stats_gain_energy_counters(self):
        cfg = ProcessorConfig(energy=ENERGY_ON)
        trace = generate_trace("int_heavy", 500, seed=6)
        stats = Pipeline(cfg).run(trace).as_dict()
        result = simulate(trace, cfg)
        for component in ENERGY_COMPONENTS + ("total",):
            assert stats[f"energy.{component}"] == result.energy[component]
        assert stats["energy.per_instr"] == pytest.approx(
            result.energy_per_instr
        )

    def test_stats_without_energy_have_no_energy_keys(self):
        trace = generate_trace("int_heavy", 500, seed=6)
        stats = Pipeline(ProcessorConfig()).run(trace).as_dict()
        assert not any(name.startswith("energy.") for name in stats)

    def test_run_record_carries_kernel_variant(self):
        # Regression: records must be attributable to the kernel variant
        # that produced them (the sweep runner strips it before the store).
        trace = generate_trace("int_heavy", 300, seed=6)
        for variant in ("generic", "specialized", "batch"):
            record = Pipeline(ProcessorConfig(),
                              kernel_variant=variant).run_record(trace)
            assert record["kernel_variant"] == variant
