"""Round-trip serialization and digests of the config dataclasses."""

import re

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    BusConfig,
    CacheConfig,
    ClusterConfig,
    FuLatencies,
    MemoryHierarchyConfig,
    ProcessorConfig,
)
from repro.common.errors import ConfigurationError
from repro.common.types import Topology


def custom_config() -> ProcessorConfig:
    """A config with every field away from its default."""
    return ProcessorConfig(
        n_clusters=6,
        topology=Topology.CONV,
        fetch_width=8,
        window_size=256,
        frontend_depth=6,
        steering="modulo",
        cluster=ClusterConfig(issue_width=4, fu_counts=(2, 1, 2, 1),
                              int_regs=64, fp_regs=48),
        latencies=FuLatencies(int_alu=2, int_mul=4, int_div=24, fp_add=3,
                              fp_mul=5, fp_div=16, load=3, store=2, branch=2),
        bus=BusConfig(hop_latency=2, bandwidth=2, writeback_latency=0),
        branch=BranchPredictorConfig(mispredict_penalty=11),
        memory=MemoryHierarchyConfig(
            l1d=CacheConfig(size_kb=64, line_bytes=32, associativity=8,
                            hit_latency=3, miss_penalty=14),
            l2_miss_penalty=180,
        ),
    )


class TestRoundTrip:
    def test_default_round_trip(self):
        cfg = ProcessorConfig()
        assert ProcessorConfig.from_dict(cfg.to_dict()) == cfg

    def test_custom_round_trip_exact(self):
        cfg = custom_config()
        rebuilt = ProcessorConfig.from_dict(cfg.to_dict())
        assert rebuilt == cfg
        # tuple-vs-list must be normalised, not just equal-by-accident
        assert isinstance(rebuilt.cluster.fu_counts, tuple)
        assert isinstance(rebuilt.topology, Topology)

    def test_to_dict_is_json_serializable(self):
        import json

        json.dumps(custom_config().to_dict())

    def test_from_dict_accepts_partial_nested(self):
        cfg = ProcessorConfig.from_dict({"bus": {"hop_latency": 3}})
        assert cfg.bus.hop_latency == 3
        assert cfg.bus.bandwidth == BusConfig().bandwidth

    def test_from_dict_validates(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig.from_dict({"n_clusters": 0})

    def test_nested_round_trips(self):
        for obj in (FuLatencies(), ClusterConfig(), BusConfig(), CacheConfig(),
                    BranchPredictorConfig(), MemoryHierarchyConfig()):
            assert type(obj).from_dict(obj.to_dict()) == obj


class TestUnknownKeys:
    def test_top_level_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown key.*'frequency'"):
            ProcessorConfig.from_dict({"frequency": 3})

    def test_nested_unknown_key(self):
        with pytest.raises(ConfigurationError, match="ClusterConfig.*'rob_size'"):
            ProcessorConfig.from_dict({"cluster": {"rob_size": 9}})

    def test_deeply_nested_unknown_key(self):
        with pytest.raises(ConfigurationError, match="CacheConfig.*'ways'"):
            ProcessorConfig.from_dict({"memory": {"l1d": {"ways": 2}}})

    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            ProcessorConfig.from_dict({"topology": "mesh"})

    def test_non_mapping(self):
        with pytest.raises(ConfigurationError, match="expects a mapping"):
            ProcessorConfig.from_dict([1, 2, 3])


class TestDigest:
    def test_digest_format(self):
        assert re.fullmatch(r"[0-9a-f]{16}", ProcessorConfig().config_digest())

    def test_digest_pinned(self):
        # Pinned so accidental canonicalisation changes (key order, float
        # formatting, field additions) are caught: any change here silently
        # invalidates every existing sweep store.
        assert ProcessorConfig().config_digest() == "ad0812deeb42a9ef"

    def test_equal_configs_equal_digest(self):
        assert custom_config().config_digest() == custom_config().config_digest()

    def test_any_field_changes_digest(self):
        base = ProcessorConfig().config_digest()
        assert ProcessorConfig(n_clusters=8).config_digest() != base
        assert ProcessorConfig(
            bus=BusConfig(hop_latency=2)
        ).config_digest() != base
        assert ProcessorConfig(
            memory=MemoryHierarchyConfig(l2_miss_penalty=99)
        ).config_digest() != base

    def test_digest_round_trip_stable(self):
        cfg = custom_config()
        assert ProcessorConfig.from_dict(cfg.to_dict()).config_digest() == \
            cfg.config_digest()
