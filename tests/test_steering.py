"""The steering-policy registry: enumeration, registration, plugin contract.

Mirrors ``test_workload_registry.py`` for the registry API itself, then
covers the parts specific to steering: registration is visible to
``ProcessorConfig`` validation and ``SweepSpec.expand``, invalid names are
diagnosed with the live registry contents, a policy returning an illegal
cluster raises :class:`SteeringError` (not an IndexError deep in the loop),
the built-ins routed through the registry keep the pinned specialization
key, and the two shipped plugins (``load_balance``, ``criticality``) agree
across all three kernels deterministically (the fuzz suite covers them
randomly).
"""

import os
import subprocess
import sys

import pytest

from repro.common.config import ProcessorConfig, STEERING_POLICIES
from repro.common.errors import ConfigurationError, SteeringError
from repro.common.types import Topology
from repro.energy import EnergyConfig
from repro.engine import simulate, simulate_specialized
from repro.engine.codegen import emit_kernel_source, specialization_key
from repro.steering import (
    BUILTIN_POLICIES,
    CriticalityPolicy,
    STEERING_REGISTRY,
    SteeringPolicy,
    get_policy,
    list_policies,
    register_policy,
)
from repro.sweep.grid import SweepSpec
from repro.workloads import generate_trace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "bench"))

NEW_POLICIES = ("load_balance", "criticality")


class TestRegistry:
    def test_builtins_and_plugins_registered(self):
        assert set(list_policies()) == set(BUILTIN_POLICIES) | set(NEW_POLICIES)

    def test_list_policies_sorted(self):
        assert list_policies() == tuple(sorted(STEERING_REGISTRY))

    def test_steering_policies_alias_is_builtins(self):
        # The old frozen tuple survives as an alias for the three
        # tuple-era policies; validation no longer reads it.
        assert STEERING_POLICIES == BUILTIN_POLICIES

    def test_get_policy_returns_registered(self):
        for name in list_policies():
            policy = get_policy(name)
            assert policy is STEERING_REGISTRY[name]
            assert policy.name == name

    def test_steering_importable_first(self):
        # Regression: the README plugin example starts with
        # ``from repro.steering import ...`` — importing this module before
        # repro.common.config must not trip the config<->steering cycle.
        import repro.steering

        src_dir = os.path.dirname(
            os.path.dirname(repro.steering.__file__)
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.steering import SteeringPolicy, register_policy\n"
             "from repro.common.config import ProcessorConfig\n"
             "assert ProcessorConfig(steering='load_balance')\n"],
            env=env, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_get_policy_unknown_lists_valid_names(self):
        with pytest.raises(ConfigurationError) as err:
            get_policy("dependnce")
        message = str(err.value)
        assert "dependnce" in message
        for name in list_policies():
            assert name in message


class _NullPolicy(SteeringPolicy):
    """Minimal interpreted-only policy for registration tests."""

    name = "test_only_policy"

    def make_generic(self, ctx):
        return lambda i, s1, s2, fetch_cycle: 0

    def make_naive(self, ctx):
        return lambda instr, fetch_cycle: 0


class TestRegisterPolicy:
    def test_register_and_steer(self):
        policy = _NullPolicy()
        try:
            assert register_policy(policy) is policy
            assert "test_only_policy" in list_policies()
            cfg = ProcessorConfig(steering="test_only_policy")
            trace = generate_trace("int_heavy", 300, seed=1)
            result = simulate(trace, cfg)
            # Everything steered to cluster 0.
            assert result.issued_per_cluster == [300, 0, 0, 0]
        finally:
            STEERING_REGISTRY.pop("test_only_policy", None)

    def test_duplicate_registration_rejected(self):
        policy = _NullPolicy()
        try:
            register_policy(policy)
            with pytest.raises(ConfigurationError, match="already registered"):
                register_policy(_NullPolicy())
            replacement = _NullPolicy()
            register_policy(replacement, overwrite=True)
            assert STEERING_REGISTRY["test_only_policy"] is replacement
        finally:
            STEERING_REGISTRY.pop("test_only_policy", None)

    def test_existing_name_collision_rejected(self):
        bad = _NullPolicy()
        bad.name = "dependence"
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy(bad)

    def test_non_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="SteeringPolicy"):
            register_policy(lambda i: 0)

    def test_unnamed_policy_rejected(self):
        anonymous = _NullPolicy()
        anonymous.name = ""
        with pytest.raises(ConfigurationError, match="name"):
            register_policy(anonymous)

    def test_interpreted_only_policy_diagnosed_under_specialized(self):
        # A policy without codegen emitters must fail with a pointer to
        # kernel_variant="generic", not a bare NotImplementedError.
        try:
            register_policy(_NullPolicy())
            cfg = ProcessorConfig(steering="test_only_policy")
            trace = generate_trace("int_heavy", 50, seed=4)
            with pytest.raises(ConfigurationError) as err:
                simulate_specialized(trace, cfg)
            message = str(err.value)
            assert "test_only_policy" in message
            assert "generic" in message
        finally:
            STEERING_REGISTRY.pop("test_only_policy", None)


class TestConfigValidation:
    def test_all_registered_policies_are_valid(self):
        for name in list_policies():
            assert ProcessorConfig(steering=name).steering == name

    def test_invalid_steering_message_lists_registry(self):
        # The satellite bugfix: a typo'd plugin name is diagnosable because
        # the error enumerates the *live* registry, not the frozen tuple.
        with pytest.raises(ConfigurationError) as err:
            ProcessorConfig(steering="least_loaded")
        message = str(err.value)
        assert "least_loaded" in message
        for name in list_policies():
            assert name in message

    def test_registration_visible_to_config_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(steering="test_only_policy")
        try:
            register_policy(_NullPolicy())
            assert ProcessorConfig(steering="test_only_policy")
        finally:
            STEERING_REGISTRY.pop("test_only_policy", None)
        with pytest.raises(ConfigurationError):
            ProcessorConfig(steering="test_only_policy")


class TestSweepVisibility:
    def test_spec_accepts_all_registered_policies(self):
        spec = SweepSpec(steerings=list_policies(), cluster_counts=(2,),
                         topologies=("ring",), n_instructions=100)
        points = spec.expand()
        assert {p.config.steering for p in points} == set(list_policies())

    def test_spec_unknown_steering_lists_registry(self):
        with pytest.raises(ConfigurationError) as err:
            SweepSpec(steerings=("dependence", "least_loaded"))
        message = str(err.value)
        assert "least_loaded" in message
        for name in list_policies():
            assert name in message

    def test_registration_visible_to_expand(self):
        try:
            register_policy(_NullPolicy())
            spec = SweepSpec(steerings=("test_only_policy",),
                             cluster_counts=(2,), topologies=("conv",),
                             n_instructions=100)
            points = spec.expand()
            assert points
            assert all(p.config.steering == "test_only_policy" for p in points)
        finally:
            STEERING_REGISTRY.pop("test_only_policy", None)

    def test_paper_spec_sweeps_every_registered_policy(self):
        from repro.sweep.grid import paper_spec

        assert paper_spec().steerings == list_policies()


class _EscapingPolicy(SteeringPolicy):
    """Deliberately returns ``n_clusters`` (one past the end)."""

    name = "test_escaping_policy"

    def make_generic(self, ctx):
        return lambda i, s1, s2, fetch_cycle: ctx.n_clusters

    def make_naive(self, ctx):
        return lambda instr, fetch_cycle: ctx.n_clusters


class TestSteeringError:
    def test_out_of_range_cluster_raises_generic_and_naive(self):
        from naive_ref import NaivePipeline

        try:
            register_policy(_EscapingPolicy())
            cfg = ProcessorConfig(steering="test_escaping_policy")
            trace = generate_trace("int_heavy", 50, seed=2)
            with pytest.raises(SteeringError, match="returned cluster"):
                simulate(trace, cfg)
            with pytest.raises(SteeringError, match="returned cluster"):
                NaivePipeline(cfg).run(trace)
        finally:
            STEERING_REGISTRY.pop("test_escaping_policy", None)


class TestCodegenIntegration:
    def test_default_specialization_key_unchanged(self):
        # Routing the built-ins through the registry must not move the pin
        # (existing sweep stores and kernel-registry entries keep hitting).
        assert specialization_key(ProcessorConfig()) == "9ea19684a67f019d"

    def test_builtin_sources_carry_no_occupancy_state(self):
        for name in BUILTIN_POLICIES:
            source = emit_kernel_source(ProcessorConfig(steering=name))
            assert "cluster_load" not in source, name
            assert "retire_col" not in source, name

    def test_plugin_sources_inline_occupancy_tracking(self):
        for name in NEW_POLICIES:
            source = emit_kernel_source(ProcessorConfig(steering=name))
            assert "cluster_load" in source, name
            assert "retire_col" in source, name

    def test_specialization_key_folds_policy_name(self):
        keys = {specialization_key(ProcessorConfig(steering=name))
                for name in list_policies()}
        assert len(keys) == len(list_policies())

    def test_emission_deterministic(self):
        for name in NEW_POLICIES:
            cfg = ProcessorConfig(steering=name)
            assert emit_kernel_source(cfg) == emit_kernel_source(cfg)


ENERGY_ON = EnergyConfig(enabled=True)


class TestNewPolicyAgreement:
    """Deterministic three-way differential for the shipped plugins.

    The fuzz suite draws these policies randomly; this pins one readable
    point per (policy, topology, energy) so a regression names itself.
    """

    @pytest.mark.parametrize("name", NEW_POLICIES)
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.CONV])
    @pytest.mark.parametrize("energy", [None, ENERGY_ON])
    def test_three_way_agreement(self, name, topology, energy):
        from naive_ref import NaivePipeline

        cfg = ProcessorConfig(steering=name, topology=topology,
                              n_clusters=3, window_size=24)
        if energy is not None:
            cfg = cfg.with_(energy=energy)
        trace = generate_trace("memory_bound", 900, seed=11)

        generic = simulate(trace, cfg)
        specialized = simulate_specialized(trace, cfg)
        assert generic == specialized

        naive = NaivePipeline(cfg).run(trace)
        assert naive["cycles"] == generic.cycles
        assert naive["communications"] == generic.communications
        assert naive["hop_histogram"] == generic.hop_histogram
        assert naive["issued_per_cluster"] == generic.issued_per_cluster
        if energy is not None:
            assert naive["energy"] == generic.energy

    def test_load_balance_balances_issue(self):
        cfg = ProcessorConfig(steering="load_balance", n_clusters=4)
        trace = generate_trace("int_heavy", 4_000, seed=5)
        per_cluster = simulate(trace, cfg).issued_per_cluster
        # Least-occupied steering keeps the clusters within a few percent
        # of each other on a homogeneous mix.
        assert max(per_cluster) - min(per_cluster) < 0.15 * max(per_cluster)

    def test_criticality_window_share(self):
        assert CriticalityPolicy.window_share(32, 4) == 8
        assert CriticalityPolicy.window_share(3, 8) == 1

    @pytest.mark.parametrize("name", NEW_POLICIES)
    def test_needs_retire(self, name):
        assert get_policy(name).needs_retire is True
        for builtin in BUILTIN_POLICIES:
            assert get_policy(builtin).needs_retire is False
