"""Tests for the instruction/FU taxonomy in repro.common.types."""

from repro.common.types import (
    DEST_REGCLASS_FOR_CLASS,
    FP_CLASSES,
    FU_FOR_CLASS,
    INT_CLASSES,
    MEM_CLASSES,
    FuType,
    InstrClass,
    RegClass,
    Topology,
)


class TestInstrClassPredicates:
    def test_memory_predicates(self):
        assert InstrClass.LOAD.is_memory and InstrClass.LOAD.is_load
        assert InstrClass.FP_STORE.is_memory and InstrClass.FP_STORE.is_store
        assert not InstrClass.INT_ALU.is_memory
        assert not InstrClass.LOAD.is_store

    def test_branch_predicate(self):
        assert InstrClass.BRANCH.is_branch
        assert not any(k.is_branch for k in InstrClass if k is not InstrClass.BRANCH)

    def test_fp_compute_matches_fp_classes(self):
        assert {k for k in InstrClass if k.is_fp_compute} == set(FP_CLASSES)

    def test_int_pipeline_is_everything_but_fp_and_nop(self):
        expected = set(InstrClass) - set(FP_CLASSES) - {InstrClass.NOP}
        assert {k for k in InstrClass if k.uses_int_pipeline} == expected

    def test_int_fp_partition_covers_all_but_nop(self):
        assert INT_CLASSES | FP_CLASSES == set(InstrClass) - {InstrClass.NOP}
        assert not INT_CLASSES & FP_CLASSES

    def test_mem_classes_subset_of_int_pipeline(self):
        assert MEM_CLASSES <= INT_CLASSES


class TestDispatchTableTotality:
    def test_fu_for_class_total_and_typed(self):
        assert set(FU_FOR_CLASS) == set(InstrClass)
        assert all(isinstance(v, FuType) for v in FU_FOR_CLASS.values())

    def test_fp_compute_runs_on_fp_units(self):
        for k in FP_CLASSES:
            assert not FU_FOR_CLASS[k].is_integer

    def test_int_pipeline_runs_on_int_units(self):
        for k in INT_CLASSES:
            assert FU_FOR_CLASS[k].is_integer

    def test_dest_regclass_total(self):
        assert set(DEST_REGCLASS_FOR_CLASS) == set(InstrClass)
        for k, reg in DEST_REGCLASS_FOR_CLASS.items():
            assert reg is None or isinstance(reg, RegClass)

    def test_stores_branches_nop_produce_nothing(self):
        for k in (InstrClass.STORE, InstrClass.FP_STORE, InstrClass.BRANCH,
                  InstrClass.NOP):
            assert DEST_REGCLASS_FOR_CLASS[k] is None

    def test_loads_produce_matching_regclass(self):
        assert DEST_REGCLASS_FOR_CLASS[InstrClass.LOAD] is RegClass.INT
        assert DEST_REGCLASS_FOR_CLASS[InstrClass.FP_LOAD] is RegClass.FP


class TestTopology:
    def test_is_ring(self):
        assert Topology.RING.is_ring
        assert not Topology.CONV.is_ring

    def test_values_stable(self):
        assert Topology("ring") is Topology.RING
        assert Topology("conv") is Topology.CONV
