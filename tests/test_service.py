"""Sweep service end-to-end: endpoint matrix, SSE, dedup, determinism.

Every test runs a real :class:`~repro.service.server.ServiceThread` on a
loopback port and drives it through the blocking
:class:`~repro.service.client.ServiceClient` (plus raw sockets for the
malformed-request paths) — the same wire the CI smoke job uses.
"""

import json
import socket
import threading

import pytest

from repro.service import MAX_BODY_BYTES, ServiceClient, ServiceError, ServiceThread
from repro.service.jobs import ServiceUnavailable, effective_spec, job_id_for
from repro.steering import list_policies
from repro.sweep.grid import SweepSpec
from repro.sweep.report import build_tables, load_rows, render_markdown
from repro.sweep.runner import run_sweep
from repro.sweep.store import ResultStore
from repro.workloads import list_mixes


def spec_dict(name="svc-tiny", n_instructions=400, seeds=(1, 2), **kwargs):
    defaults = dict(
        name=name,
        topologies=("ring", "conv"),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=n_instructions,
        seeds=seeds,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults).to_dict()


def slow_spec_dict(name="svc-slow"):
    """A grid slow enough (~1-2 s inline) to cancel or observe mid-run."""
    return spec_dict(
        name=name,
        cluster_counts=(2, 4, 8),
        mixes=("int_heavy", "memory_bound"),
        n_instructions=20_000,
        seeds=(1, 2),
    )


@pytest.fixture
def service(tmp_path):
    svc = ServiceThread(str(tmp_path / "store.jsonl")).start()
    try:
        yield svc, ServiceClient(svc.host, svc.port)
    finally:
        svc.stop()


def raw_http(svc: ServiceThread, payload: bytes) -> bytes:
    """Send raw bytes, half-close, read the full response."""
    with socket.create_connection((svc.host, svc.port), timeout=30) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            block = sock.recv(65536)
            if not block:
                break
            chunks.append(block)
    return b"".join(chunks)


def raw_status_and_error(response: bytes):
    head, _sep, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    error = json.loads(body.decode("utf-8"))["error"]
    return status, error


class TestEndpointMatrix:
    def test_health_and_index(self, service):
        _svc, client = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["records"] == 0 and health["jobs"] == 0
        index = client.index()
        assert index["service"] == "repro.sweep"
        assert "POST /jobs" in index["endpoints"]

    def test_submit_status_results_report(self, service):
        svc, client = service
        response = client.submit(spec_dict(), workers=1)
        assert response["disposition"] == "created"
        job_id = response["job_id"]
        status = client.wait(job_id)
        assert status["state"] == "done"
        assert status["summary"]["n_computed"] == 4
        assert status["n_done"] == status["n_points"] == 4
        # results: every key is served as its exact store line
        store = svc.service.manager.store
        for key in store.keys():
            from repro.common.jsonutil import canonical_json
            assert client.result(key) == (
                canonical_json(store.get(key)) + "\n").encode()
        # report markdown carries the standard tables
        markdown = client.report(job_id)
        assert "# Sweep report" in markdown
        assert "IPC vs cluster count" in markdown
        csv_text = client.report(job_id, fmt="csv", table="ipc_vs_clusters")
        assert csv_text.splitlines()[0].startswith("mix,steering")

    def test_jobs_listing(self, service):
        _svc, client = service
        a = client.submit(spec_dict(name="a"), workers=1)
        b = client.submit(spec_dict(name="b", seeds=(3,)), workers=1)
        client.wait(a["job_id"])
        client.wait(b["job_id"])
        listed = client.jobs()
        assert [job["job_id"] for job in listed] == [a["job_id"], b["job_id"]]
        assert all(job["state"] == "done" for job in listed)

    def test_job_status_unknown_job_404(self, service):
        _svc, client = service
        with pytest.raises(ServiceError) as err:
            client.job("deadbeefdeadbeef")
        assert err.value.status == 404
        assert err.value.code == "unknown_job"

    def test_result_unknown_key_404(self, service):
        _svc, client = service
        with pytest.raises(ServiceError) as err:
            client.result("deadbeefdeadbeefdeadbeef")
        assert err.value.status == 404

    def test_cancel_endpoint_on_terminal_job_conflicts(self, service):
        _svc, client = service
        response = client.submit(spec_dict(), workers=1)
        client.wait(response["job_id"])
        outcome = client.cancel(response["job_id"])
        assert outcome["cancelled"] is False
        assert outcome["state"] == "done"

    def test_discovery_endpoints_enumerate_registries(self, service):
        _svc, client = service
        steerings = client.steering_policies()
        assert [p["name"] for p in steerings] == sorted(list_policies())
        assert all("description" in p and "needs_retire" in p
                   for p in steerings)
        mixes = client.mixes()
        assert [m["name"] for m in mixes] == sorted(list_mixes())
        assert all("class_weights" in m for m in mixes)

    def test_unknown_path_404_and_wrong_method_405(self, service):
        svc, _client = service
        status, error = raw_status_and_error(raw_http(
            svc, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"))
        assert (status, error["code"]) == (404, "not_found")
        status, error = raw_status_and_error(raw_http(
            svc, b"DELETE /jobs HTTP/1.1\r\nHost: x\r\n\r\n"))
        assert (status, error["code"]) == (405, "method_not_allowed")


class TestValidation:
    def test_malformed_json_400(self, service):
        svc, _client = service
        body = b"{not json"
        payload = (
            b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, error = raw_status_and_error(raw_http(svc, payload))
        assert (status, error["code"]) == (400, "bad_json")

    def test_oversized_body_413(self, service):
        svc, _client = service
        payload = (
            b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        status, error = raw_status_and_error(raw_http(svc, payload))
        assert (status, error["code"]) == (413, "body_too_large")

    def test_oversized_body_fully_sent_413(self, service):
        # The pathological client that pushes the whole megabyte before
        # reading: the server must drain it (no deadlock) and refuse.
        svc, _client = service
        body = b"x" * (MAX_BODY_BYTES + 1)
        payload = (
            b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, error = raw_status_and_error(raw_http(svc, payload))
        assert (status, error["code"]) == (413, "body_too_large")

    def test_malformed_request_line_400(self, service):
        svc, _client = service
        status, error = raw_status_and_error(raw_http(svc, b"GARBAGE\r\n\r\n"))
        assert status == 400

    def test_schema_violations_400(self, service):
        _svc, client = service
        with pytest.raises(ServiceError) as err:
            client.submit(spec_dict(), nonsense=True)
        assert err.value.status == 400
        assert err.value.code == "invalid_request"
        assert "nonsense" in str(err.value)
        with pytest.raises(ServiceError) as err:
            client.submit(spec_dict(), workers="four")
        assert err.value.code == "invalid_request"
        with pytest.raises(ServiceError) as err:
            client.submit(spec_dict(), kernel_variant="turbo")
        assert err.value.code == "invalid_request"

    def test_missing_spec_400(self, service):
        svc, _client = service
        body = json.dumps({"workers": 1}).encode()
        payload = (
            b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, error = raw_status_and_error(raw_http(svc, payload))
        assert (status, error["code"]) == (400, "invalid_request")
        assert "spec" in error["message"]

    def test_invalid_spec_400(self, service):
        _svc, client = service
        bad = spec_dict()
        bad["steerings"] = ["warp_drive"]
        with pytest.raises(ServiceError) as err:
            client.submit(bad)
        assert err.value.status == 400
        assert err.value.code == "invalid_spec"
        assert "warp_drive" in str(err.value)

    def test_report_format_validation(self, service):
        _svc, client = service
        response = client.submit(spec_dict(), workers=1)
        client.wait(response["job_id"])
        with pytest.raises(ServiceError) as err:
            client.report(response["job_id"], fmt="pdf")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.report(response["job_id"], fmt="csv")  # no table
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.report(response["job_id"], fmt="csv", table="no_such")
        assert err.value.status == 404


class TestDedupAndResubmission:
    def test_duplicate_spec_dedupes_onto_active_job(self, service):
        _svc, client = service
        first = client.submit(slow_spec_dict(), workers=1)
        second = client.submit(slow_spec_dict(), workers=1)
        assert second["job_id"] == first["job_id"]
        assert second["disposition"] == "deduplicated"
        status = client.wait(first["job_id"])
        assert status["state"] == "done"
        assert status["run_count"] == 1

    def test_resubmitting_finished_spec_is_pure_cache_hit(self, service):
        _svc, client = service
        first = client.submit(spec_dict(), workers=1)
        done = client.wait(first["job_id"])
        assert done["summary"]["n_computed"] == 4
        second = client.submit(spec_dict(), workers=1)
        assert second["disposition"] == "resubmitted"
        assert second["job_id"] == first["job_id"]
        rerun = client.wait(first["job_id"])
        assert rerun["state"] == "done"
        assert rerun["run_count"] == 2
        assert rerun["summary"]["n_computed"] == 0
        assert rerun["summary"]["n_cached"] == rerun["summary"]["n_points"]
        assert rerun["summary"]["cache_hit_rate"] == 1.0

    def test_energy_flag_changes_job_identity(self, service):
        _svc, client = service
        plain = client.submit(spec_dict(), workers=1)
        energy = client.submit(spec_dict(), workers=1, energy=True)
        assert energy["job_id"] != plain["job_id"]
        status = client.wait(energy["job_id"])
        assert status["state"] == "done"
        # energy job ids match the CLI's --energy spec fold
        body = {"spec": spec_dict(), "energy": True}
        assert energy["job_id"] == job_id_for(effective_spec(body))
        client.wait(plain["job_id"])


class TestDeterminism:
    def test_http_store_byte_identical_to_cli_store(self, service, tmp_path):
        svc, client = service
        response = client.submit(spec_dict(name="det"), workers=1)
        client.wait(response["job_id"])
        cli_store = ResultStore(str(tmp_path / "cli.jsonl"))
        run_sweep(SweepSpec.from_dict(spec_dict(name="det")).expand(),
                  cli_store, workers=1)
        with open(svc.service.manager.store.path, "rb") as fh:
            service_bytes = fh.read()
        with open(cli_store.path, "rb") as fh:
            cli_bytes = fh.read()
        assert service_bytes == cli_bytes

    def test_results_endpoint_reconstructs_cli_store(self, service, tmp_path):
        svc, client = service
        response = client.submit(spec_dict(name="det2"), workers=1)
        client.wait(response["job_id"])
        cli_store = ResultStore(str(tmp_path / "cli.jsonl"))
        run_sweep(SweepSpec.from_dict(spec_dict(name="det2")).expand(),
                  cli_store, workers=1)
        reconstructed = b"".join(
            client.result(key) for key in cli_store.keys()
        )
        with open(cli_store.path, "rb") as fh:
            assert reconstructed == fh.read()

    def test_report_matches_offline_rendering(self, service):
        svc, client = service
        response = client.submit(spec_dict(name="det3"), workers=1)
        job_id = response["job_id"]
        client.wait(job_id)
        job = svc.service.manager.get(job_id)
        tables = build_tables(load_rows(svc.service.manager.store))
        expected = render_markdown(tables, meta={
            "job": job_id, "state": "done",
            "records": f"{job.n_points}/{job.n_points}",
        })
        assert client.report(job_id) == expected


class TestCancelResume:
    def test_cancel_running_job_then_resume(self, service, tmp_path):
        svc, client = service
        response = client.submit(slow_spec_dict(name="cancelme"), workers=1)
        job_id = response["job_id"]
        saw_points = 0
        for _eid, name, _data in client.stream(job_id, timeout=120):
            if name == "point":
                saw_points += 1
                if saw_points == 1:
                    outcome = client.cancel(job_id)
                    assert outcome["cancelled"] is True
            if name in ("done", "failed", "cancelled"):
                terminal = name
                break
        status = client.job(job_id)
        # The sweep may complete before the cancel lands on a fast box —
        # but when it was cancelled, the store must hold a clean prefix
        # that a resubmission extends to the full byte-identical result.
        assert terminal == status["state"]
        cli_store = ResultStore(str(tmp_path / "ref.jsonl"))
        run_sweep(
            SweepSpec.from_dict(slow_spec_dict(name="cancelme")).expand(),
            cli_store, workers=1,
        )
        with open(cli_store.path, "rb") as fh:
            reference = fh.read()
        with open(svc.service.manager.store.path, "rb") as fh:
            partial = fh.read()
        assert reference.startswith(partial)
        if status["state"] == "cancelled":
            assert len(partial) < len(reference)
            assert status["summary"]["interrupted"] is True
            resumed = client.submit(slow_spec_dict(name="cancelme"),
                                    workers=1)
            assert resumed["disposition"] == "resubmitted"
            final = client.wait(job_id)
            assert final["state"] == "done"
            with open(svc.service.manager.store.path, "rb") as fh:
                assert fh.read() == reference

    def test_cancel_queued_job(self, service):
        _svc, client = service
        running = client.submit(slow_spec_dict(name="head"), workers=1)
        queued = client.submit(spec_dict(name="tail", seeds=(9,)), workers=1)
        outcome = client.cancel(queued["job_id"])
        assert outcome["cancelled"] is True
        status = client.wait(queued["job_id"], timeout=60)
        assert status["state"] == "cancelled"
        head = client.wait(running["job_id"], timeout=120)
        assert head["state"] == "done"


class TestShutdown:
    def test_graceful_shutdown_drains_in_flight_job(self, tmp_path):
        store_path = str(tmp_path / "drain.jsonl")
        svc = ServiceThread(store_path).start()
        client = ServiceClient(svc.host, svc.port)
        response = client.submit(slow_spec_dict(name="drainme"), workers=1)
        job_id = response["job_id"]
        svc.stop(drain=True)  # blocks until the job completed
        job = svc.service.manager.jobs[job_id]
        assert job.state == "done"
        assert job.summary is not None and not job.summary.failures
        reference = ResultStore(store_path)
        assert len(reference) == job.n_points

    def test_cancelling_shutdown_interrupts_but_keeps_prefix(self, tmp_path):
        store_path = str(tmp_path / "hard.jsonl")
        svc = ServiceThread(store_path).start()
        client = ServiceClient(svc.host, svc.port)
        response = client.submit(slow_spec_dict(name="hardstop"), workers=1)
        job_id = response["job_id"]
        # wait for the first point so the run is demonstrably in flight
        for _eid, name, _data in client.stream(job_id, timeout=120):
            if name in ("point", "done", "failed", "cancelled"):
                break
        svc.stop(drain=False)
        job = svc.service.manager.jobs[job_id]
        assert job.state in ("cancelled", "done")
        # whatever was flushed must be a loadable, clean store
        reference = ResultStore(store_path)
        assert len(reference) <= job.n_points

    def test_submission_while_draining_rejected(self, tmp_path):
        svc = ServiceThread(str(tmp_path / "x.jsonl")).start()
        try:
            manager = svc.service.manager
            manager.shutdown(drain=True)
            with pytest.raises(ServiceUnavailable):
                manager.submit({"spec": spec_dict()})
        finally:
            svc.stop()


class TestConcurrentStreams:
    def test_eight_concurrent_sse_clients_see_identical_streams(self, service):
        _svc, client = service
        response = client.submit(slow_spec_dict(name="fanout"), workers=1)
        job_id = response["job_id"]
        n_clients = 8
        streams = [None] * n_clients
        errors = []

        def consume(slot):
            try:
                own = ServiceClient(client.host, client.port)
                streams[slot] = [
                    (eid, name, data.get("index"), data.get("key"))
                    for eid, name, data in own.stream(job_id, timeout=120)
                ]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=consume, args=(slot,))
                   for slot in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors
        assert all(stream is not None for stream in streams)
        # identical event sequences for every client, replay included
        assert all(stream == streams[0] for stream in streams[1:])
        terminal = streams[0][-1]
        assert terminal[1] == "done"


class TestModuleCli:
    """python -m repro.service submit — the scriptable front door CI uses."""

    def _spec_file(self, tmp_path, name="cli-spec"):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_dict(name=name)))
        return str(path)

    def test_submit_follows_to_done(self, service, tmp_path, capsys):
        from repro.service.__main__ import main

        svc, _client = service
        rc = main(["submit", "--host", svc.host, "--port", str(svc.port),
                   "--spec", self._spec_file(tmp_path), "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "created (4 points)" in out
        assert "point 4/4" in out
        assert "done:" in out and "4 computed" in out

    def test_submit_no_follow(self, service, tmp_path, capsys):
        from repro.service.__main__ import main

        svc, client = service
        rc = main(["submit", "--host", svc.host, "--port", str(svc.port),
                   "--spec", self._spec_file(tmp_path, name="nf"),
                   "--no-follow"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "point 1/" not in out  # no event streaming happened
        # the job still runs to completion server-side
        job_id = out.split()[1].rstrip(":")
        assert client.wait(job_id)["state"] == "done"

    def test_submit_missing_spec_file_exits_2(self, service, capsys):
        from repro.service.__main__ import main

        svc, _client = service
        rc = main(["submit", "--host", svc.host, "--port", str(svc.port),
                   "--spec", "/no/such/spec.json"])
        assert rc == 2
        assert "error: cannot read sweep spec" in capsys.readouterr().err

    def test_submit_invalid_json_spec_exits_2(self, service, tmp_path, capsys):
        from repro.service.__main__ import main

        svc, _client = service
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        rc = main(["submit", "--host", svc.host, "--port", str(svc.port),
                   "--spec", str(bad)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_submit_requires_exactly_one_spec_source(self, capsys):
        from repro.service.__main__ import main

        rc = main(["submit", "--smoke", "--paper"])
        assert rc == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_submit_unreachable_service_exits_2(self, tmp_path, capsys):
        from repro.service.__main__ import main

        # a port nothing listens on: grab one and close it
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["submit", "--host", "127.0.0.1", "--port", str(port),
                   "--spec", self._spec_file(tmp_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
