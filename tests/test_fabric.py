"""repro.fabric units: shard planning, validation, health, coordination."""

import threading
import time

import pytest

from repro.common.errors import FabricError
from repro.common.jsonutil import canonical_json
from repro.fabric import (
    BackendHealth,
    FabricCoordinator,
    LocalBackend,
    PeerBackend,
    RunnerBackend,
    Shard,
    ShardExecutionError,
    ShardValidationError,
    dedup_points,
    plan_shards,
    validate_record_bytes,
)
from repro.fabric.health import ALIVE, DEAD, PROBATION, SUSPECT
from repro.sweep.grid import SweepSpec
from repro.sweep.runner import run_sweep
from repro.sweep.store import ResultStore


def tiny_spec(name="fab-unit", seeds=(1, 2), **kwargs):
    defaults = dict(
        name=name,
        topologies=("ring", "conv"),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=300,
        seeds=seeds,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def reference_store(spec, path):
    store = ResultStore(str(path))
    run_sweep(spec.expand(), store, workers=1)
    return store


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- shard planning ---------------------------------------------------------

class TestPlanShards:
    def test_empty_store_one_contiguous_cover(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3, 4))  # 8 points
        keyed = dedup_points(spec.expand())
        store = ResultStore(str(tmp_path / "s.jsonl"))
        shards = plan_shards(keyed, store, shard_size=3)
        assert [(s.start, s.stop) for s in shards] == \
            [(0, 3), (3, 6), (6, 8)]
        assert [s.index for s in shards] == [0, 1, 2]
        covered = [key for s in shards for key in s.keys]
        assert covered == list(keyed)

    def test_cached_prefix_is_skipped(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3))  # 6 points
        keyed = dedup_points(spec.expand())
        store = ResultStore(str(tmp_path / "s.jsonl"))
        for key in list(keyed)[:4]:
            store.append({"key": key, "result": {}})
        shards = plan_shards(keyed, store, shard_size=8)
        assert [(s.start, s.stop) for s in shards] == [(4, 6)]

    def test_interior_gap_makes_separate_shards(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3))
        keyed = dedup_points(spec.expand())
        keys = list(keyed)
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.append({"key": keys[2], "result": {}})  # hole at index 2
        shards = plan_shards(keyed, store, shard_size=8)
        assert [(s.start, s.stop) for s in shards] == [(0, 2), (3, 6)]

    def test_fully_cached_store_plans_nothing(self, tmp_path):
        spec = tiny_spec()
        keyed = dedup_points(spec.expand())
        store = ResultStore(str(tmp_path / "s.jsonl"))
        for key in keyed:
            store.append({"key": key, "result": {}})
        assert plan_shards(keyed, store, shard_size=2) == []

    def test_bad_shard_size_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        with pytest.raises(FabricError, match="shard_size"):
            plan_shards(dedup_points(tiny_spec().expand()), store, 0)


# -- record validation ------------------------------------------------------

class TestValidateRecordBytes:
    def _good(self, tmp_path):
        spec = tiny_spec()
        store = reference_store(spec, tmp_path / "ref.jsonl")
        key = store.keys()[0]
        raw = (canonical_json(store.get(key)) + "\n").encode("utf-8")
        return key, raw

    def test_accepts_pristine_store_bytes(self, tmp_path):
        key, raw = self._good(tmp_path)
        record = validate_record_bytes(raw, key)
        assert record["key"] == key

    def test_rejects_truncation(self, tmp_path):
        key, raw = self._good(tmp_path)
        with pytest.raises(ShardValidationError, match="truncated"):
            validate_record_bytes(raw[:-5], key)

    def test_rejects_injected_corruption(self, tmp_path):
        from repro.faults import corrupt_bytes
        key, raw = self._good(tmp_path)
        with pytest.raises(ShardValidationError):
            validate_record_bytes(corrupt_bytes(raw), key)

    def test_rejects_non_canonical_bytes(self, tmp_path):
        import json as json_mod
        key, raw = self._good(tmp_path)
        # Same JSON value, default (spaced) separators: still one line,
        # but not the store's canonical bytes.
        pretty = (json_mod.dumps(json_mod.loads(raw)) + "\n").encode()
        with pytest.raises(ShardValidationError, match="non-canonical"):
            validate_record_bytes(pretty, key)

    def test_rejects_relabeled_record(self, tmp_path):
        # A dishonest peer serves a *valid* record under the wrong key:
        # both the key field and the content digest must expose it.
        spec = tiny_spec()
        store = reference_store(spec, tmp_path / "ref.jsonl")
        key_a, key_b = store.keys()[:2]
        raw_b = (canonical_json(store.get(key_b)) + "\n").encode()
        with pytest.raises(ShardValidationError, match="key mismatch"):
            validate_record_bytes(raw_b, key_a)
        forged = dict(store.get(key_b))
        forged["key"] = key_a
        raw_forged = (canonical_json(forged) + "\n").encode()
        with pytest.raises(ShardValidationError, match="digest mismatch"):
            validate_record_bytes(raw_forged, key_a)

    def test_rejects_non_object_and_missing_fields(self, tmp_path):
        key, _raw = self._good(tmp_path)
        with pytest.raises(ShardValidationError):
            validate_record_bytes(b"[1,2]\n", key)
        stub = canonical_json({"key": key}) + "\n"
        with pytest.raises(ShardValidationError, match="missing"):
            validate_record_bytes(stub.encode(), key)


# -- health state machine ---------------------------------------------------

class TestBackendHealth:
    def test_failures_walk_alive_suspect_dead(self):
        clock = FakeClock()
        health = BackendHealth("p", dead_after=3, clock=clock)
        assert health.state == ALIVE
        health.record_failure()
        assert health.state == SUSPECT
        assert health.available()
        health.record_failure()
        health.record_failure()
        assert health.state == DEAD
        assert not health.available()

    def test_success_resets_from_suspect(self):
        health = BackendHealth("p", dead_after=3, clock=FakeClock())
        health.record_failure()
        health.record_success()
        assert health.state == ALIVE
        for _ in range(2):
            health.record_failure()
        assert health.state == SUSPECT  # counter restarted after success

    def test_cooldown_promotes_dead_to_probation(self):
        clock = FakeClock()
        health = BackendHealth("p", dead_after=1, cooldown_s=10.0,
                               clock=clock)
        health.record_failure()
        assert health.state == DEAD
        clock.advance(9.9)
        assert not health.available()
        clock.advance(0.2)
        assert health.state == PROBATION
        assert health.available()
        assert health.n_probations == 1

    def test_probation_success_readmits(self):
        clock = FakeClock()
        health = BackendHealth("p", dead_after=1, cooldown_s=1.0,
                               clock=clock)
        health.record_failure()
        clock.advance(2.0)
        assert health.state == PROBATION
        health.record_success()
        assert health.state == ALIVE

    def test_probation_failure_restarts_cooldown(self):
        clock = FakeClock()
        health = BackendHealth("p", dead_after=3, cooldown_s=1.0,
                               clock=clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(2.0)
        assert health.state == PROBATION
        health.record_failure()  # a single trial failure, not dead_after
        assert health.state == DEAD
        clock.advance(0.5)
        assert not health.available()
        clock.advance(0.6)
        assert health.state == PROBATION


# -- backends ---------------------------------------------------------------

class TestLocalBackend:
    def test_runs_a_shard_and_cleans_up_scratch(self, tmp_path):
        spec = tiny_spec()
        keyed = dedup_points(spec.expand())
        items = list(keyed.items())[:2]
        shard = Shard(index=0, start=0, stop=2,
                      points=tuple(p for _k, p in items),
                      keys=tuple(k for k, _p in items))
        backend = LocalBackend(str(tmp_path / "scratch"), workers=1)
        beats = []
        records = backend.run_shard(spec, shard, lambda: beats.append(1))
        assert [r["key"] for r in records] == list(shard.keys)
        assert len(beats) >= shard.n_points
        import os
        assert os.listdir(str(tmp_path / "scratch")) == []

    def test_point_failure_fails_the_shard(self, tmp_path, monkeypatch):
        from repro.faults import ENV_VAR, FaultPlan
        spec = tiny_spec()
        keyed = dedup_points(spec.expand())
        items = list(keyed.items())
        shard = Shard(index=0, start=0, stop=len(items),
                      points=tuple(p for _k, p in items),
                      keys=tuple(k for k, _p in items))
        # Exception on every attempt: the pool runner's retry budget
        # exhausts and the shard must surface a ShardExecutionError.
        monkeypatch.setenv(
            ENV_VAR,
            FaultPlan(seed=1, exception_rate=1.0,
                      max_faults_per_point=99).to_env(),
        )
        from repro.sweep.runner import RetryPolicy
        backend = LocalBackend(str(tmp_path / "scratch"), workers=1,
                               policy=RetryPolicy(max_attempts=2,
                                                  backoff_s=0.0))
        with pytest.raises(ShardExecutionError, match="failed point"):
            backend.run_shard(spec, shard, lambda: None)


# -- coordinator ------------------------------------------------------------

class _FailingBackend(RunnerBackend):
    """Fails a configurable number of shard attempts, then succeeds by
    delegating to a LocalBackend."""

    def __init__(self, scratch_dir, failures=1, name="flaky"):
        self.name = name
        self.failures = failures
        self._delegate = LocalBackend(scratch_dir, workers=1, name=name)

    def run_shard(self, spec, shard, heartbeat):
        if self.failures > 0:
            self.failures -= 1
            heartbeat()
            raise ShardExecutionError(f"{self.name}: synthetic failure")
        return self._delegate.run_shard(spec, shard, heartbeat)


class _HangingBackend(RunnerBackend):
    """Never heartbeats, never returns (until released) — the lease must
    expire and the shard must complete elsewhere."""

    def __init__(self, name="hung"):
        self.name = name
        self.release = threading.Event()
        self.started = threading.Event()

    def run_shard(self, spec, shard, heartbeat):
        self.started.set()
        self.release.wait(timeout=30.0)
        raise ShardExecutionError(f"{self.name}: released")


class _LateSuccessBackend(RunnerBackend):
    """Holds its shard (never heartbeating) until released, then returns a
    *valid* result — the classic expired-lease straggler."""

    def __init__(self, scratch_dir, name="late"):
        self.name = name
        self.release = threading.Event()
        self.started = threading.Event()
        self._delegate = LocalBackend(scratch_dir, workers=1, name=name)

    def run_shard(self, spec, shard, heartbeat):
        self.started.set()
        if not self.release.wait(timeout=30.0):
            raise ShardExecutionError(f"{self.name}: never released")
        return self._delegate.run_shard(spec, shard, lambda: None)


class _GatedBackend(RunnerBackend):
    """A healthy backend that blocks (while heartbeating) until released,
    keeping the coordinator loop alive for event-sequenced tests."""

    def __init__(self, scratch_dir, name="gated"):
        self.name = name
        self.release = threading.Event()
        self.started = threading.Event()
        self._delegate = LocalBackend(scratch_dir, workers=1, name=name)

    def run_shard(self, spec, shard, heartbeat):
        self.started.set()
        while not self.release.wait(timeout=0.02):
            heartbeat()
        return self._delegate.run_shard(spec, shard, heartbeat)


class _FailingPeer(PeerBackend):
    """Stands in for a peer that dies on its first shard.  Subclasses
    PeerBackend (sans client) so degradation accounting sees it."""

    def __init__(self, name="peer"):
        self.name = name

    def probe(self):
        return False

    def run_shard(self, spec, shard, heartbeat):
        heartbeat()
        raise ShardExecutionError(f"{self.name}: synthetic peer death")


class _InstantBackend(RunnerBackend):
    """Serves precomputed records with zero latency — several of these
    finish many shards inside one coordinator poll interval."""

    def __init__(self, records_by_key, name):
        self.name = name
        self._records = records_by_key

    def run_shard(self, spec, shard, heartbeat):
        heartbeat()
        return [self._records[key] for key in shard.keys]


class TestFabricCoordinator:
    def test_local_only_matches_single_host_bytes(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3))
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        coordinator = FabricCoordinator(
            [LocalBackend(str(tmp_path / "scratch"), workers=1)],
            shard_size=2,
        )
        summary = coordinator.run(spec, store)
        assert summary.n_computed == 6
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_rerun_is_pure_cache_hit(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        coordinator = FabricCoordinator(
            [LocalBackend(str(tmp_path / "scratch"), workers=1)],
            shard_size=2,
        )
        coordinator.run(spec, store)
        before = open(store.path, "rb").read()
        summary = coordinator.run(spec, store)
        assert summary.n_computed == 0
        assert summary.n_cached == summary.n_points == 4
        assert summary.n_shards == 0
        assert "4 cached, 0 computed" in summary.describe()
        assert open(store.path, "rb").read() == before

    def test_failed_shard_requeues_and_completes(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3))
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        flaky = _FailingBackend(str(tmp_path / "scratch"), failures=2)
        coordinator = FabricCoordinator(
            [flaky,
             LocalBackend(str(tmp_path / "scratch2"), workers=1)],
            shard_size=2, dead_after=5,
        )
        summary = coordinator.run(spec, store)
        assert summary.n_requeues >= 2
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_shard_attempt_budget_exhaustion_raises(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        always_failing = _FailingBackend(str(tmp_path / "scratch"),
                                         failures=10 ** 6)
        coordinator = FabricCoordinator(
            [always_failing], shard_size=2, max_shard_attempts=3,
            dead_after=99,
        )
        with pytest.raises(FabricError, match="giving up"):
            coordinator.run(spec, store)

    def test_lease_expiry_fails_over_to_surviving_backend(self, tmp_path):
        spec = tiny_spec()
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        hung = _HangingBackend()
        coordinator = FabricCoordinator(
            [hung, LocalBackend(str(tmp_path / "scratch"), workers=1)],
            shard_size=2, lease_timeout_s=0.3, poll_s=0.02,
        )
        try:
            summary = coordinator.run(spec, store)
        finally:
            hung.release.set()
        assert hung.started.is_set()
        assert summary.n_expired_leases >= 1
        assert summary.n_requeues >= 1
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_dead_backend_sits_out_until_probation(self, tmp_path):
        spec = tiny_spec(seeds=(1, 2, 3, 4))
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        flaky = _FailingBackend(str(tmp_path / "scratch"), failures=2,
                                name="flaky")
        coordinator = FabricCoordinator(
            [flaky, LocalBackend(str(tmp_path / "scratch2"), workers=1)],
            shard_size=2, dead_after=2, cooldown_s=3600.0,
        )
        summary = coordinator.run(spec, store)
        assert summary.backends["flaky"]["state"] == "dead"
        assert summary.backends["flaky"]["shards_completed"] == 0
        assert summary.backends["local"]["shards_completed"] == 4

    def test_no_backends_rejected(self):
        with pytest.raises(FabricError, match="at least one backend"):
            FabricCoordinator([])

    def test_duplicate_backend_names_rejected(self, tmp_path):
        scratch = str(tmp_path / "s")
        with pytest.raises(FabricError, match="unique"):
            FabricCoordinator([
                LocalBackend(scratch, name="x"),
                LocalBackend(scratch, name="x"),
            ])

    def test_probe_reports_every_backend(self, tmp_path):
        coordinator = FabricCoordinator(
            [LocalBackend(str(tmp_path / "s"), workers=1)]
        )
        assert coordinator.probe() == {"local": True}

    def test_cli_run_local_and_cache_hit(self, tmp_path, capsys):
        import json
        from repro.fabric.cli import main
        spec = tiny_spec()
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh)
        store = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec_path, "--store", store,
                     "--local-workers", "1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "4 points: 0 cached, 4 computed" in out
        reference = tmp_path / "ref.jsonl"
        reference_store(spec, reference)
        assert reference.read_bytes() == \
            (tmp_path / "store.jsonl").read_bytes()
        assert main(["run", "--spec", spec_path, "--store", store,
                     "--local-workers", "1"]) == 0
        assert "4 cached, 0 computed" in capsys.readouterr().out

    def test_cli_run_with_peer_and_probe(self, tmp_path, capsys):
        from repro.fabric.cli import main
        from repro.service.server import ServiceThread
        spec = tiny_spec()
        peer = ServiceThread(str(tmp_path / "peer" / "store.jsonl"),
                             sweep_workers=1).start()
        address = f"{peer.host}:{peer.port}"
        try:
            assert main(["probe", "--local", "--peer", address]) == 0
            out = capsys.readouterr().out
            assert f"{address}: up" in out
            store = str(tmp_path / "store.jsonl")
            import json
            spec_path = str(tmp_path / "spec.json")
            with open(spec_path, "w", encoding="utf-8") as fh:
                json.dump(spec.to_dict(), fh)
            assert main(["run", "--spec", spec_path, "--store", store,
                         "--peer", address, "--no-local",
                         "--shard-size", "2"]) == 0
            assert "4 computed over 2 shard(s)" in capsys.readouterr().out
        finally:
            peer.stop(drain=False)
        reference = tmp_path / "ref.jsonl"
        reference_store(spec, reference)
        assert reference.read_bytes() == \
            (tmp_path / "store.jsonl").read_bytes()

    def test_cli_probe_reports_down_peer(self, tmp_path, capsys):
        from repro.fabric.cli import main
        from repro.service.server import ServiceThread
        probe = ServiceThread(str(tmp_path / "gone.jsonl"))
        probe.start()
        address = f"{probe.host}:{probe.port}"
        probe.stop(drain=False)
        assert main(["probe", "--peer", address,
                     "--rpc-timeout", "2"]) == 1
        assert f"{address}: DOWN" in capsys.readouterr().out

    def test_cli_error_paths(self, tmp_path, capsys):
        from repro.fabric.cli import main
        store = str(tmp_path / "s.jsonl")
        # exactly one spec source
        assert main(["run", "--store", store]) == 2
        assert "choose exactly one" in capsys.readouterr().err
        assert main(["run", "--smoke", "--paper", "--store", store]) == 2
        # --no-local with no peers leaves nothing to run on
        assert main(["run", "--smoke", "--no-local",
                     "--store", store]) == 2
        assert "at least one --peer" in capsys.readouterr().err
        # malformed peer addresses
        assert main(["run", "--smoke", "--store", store,
                     "--peer", "host:notaport"]) == 2
        assert main(["run", "--smoke", "--store", store,
                     "--peer", "host:99999"]) == 2
        # unreadable spec file
        assert main(["run", "--spec", str(tmp_path / "missing.json"),
                     "--store", store]) == 2
        assert "cannot read sweep spec" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["run", "--spec", str(bad), "--store", store]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        # a FabricError (bad shard size) exits 1 with the resume hint
        assert main(["run", "--smoke", "--store", store,
                     "--shard-size", "0", "--local-workers", "1"]) == 1
        assert "re-run the same command" in capsys.readouterr().err

    def test_cli_energy_flag_folds_into_spec(self, tmp_path, capsys):
        from repro.fabric.cli import main
        from repro.sweep.runner import run_sweep as _run
        import dataclasses
        import json
        spec = tiny_spec()
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh)
        store = str(tmp_path / "store.jsonl")
        assert main(["run", "--spec", spec_path, "--store", store,
                     "--energy", "--local-workers", "1"]) == 0
        folded = dataclasses.replace(
            spec, base=tuple(spec.base) + (("energy.enabled", True),)
        )
        reference = ResultStore(str(tmp_path / "ref.jsonl"))
        _run(folded.expand(), reference, workers=1)
        assert (tmp_path / "ref.jsonl").read_bytes() == \
            (tmp_path / "store.jsonl").read_bytes()

    def test_late_success_does_not_resurrect_dead_backend(self, tmp_path):
        # Flapping peer: its lease expires (failure -> DEAD), the shard
        # fails over, and THEN its original attempt completes fine.  The
        # late success is accepted as data (at-least-once) but must not
        # touch health — a DEAD backend stays dead until probation, it is
        # not resurrected straight to ALIVE by a stale thread.
        clock = FakeClock()
        spec = tiny_spec()  # 4 points
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        late = _LateSuccessBackend(str(tmp_path / "scratch-late"))
        gated = _GatedBackend(str(tmp_path / "scratch-gated"))
        coordinator = FabricCoordinator(
            [late, gated], shard_size=2,
            lease_timeout_s=60.0, poll_s=0.02,
            dead_after=1, cooldown_s=100000.0, clock=clock,
        )
        result = {}

        def drive():
            result["summary"] = coordinator.run(spec, store)

        runner = threading.Thread(target=drive, daemon=True)
        runner.start()
        assert late.started.wait(timeout=10.0)
        assert gated.started.wait(timeout=10.0)
        # Walk the fake clock past the lease timeout in sub-timeout steps:
        # the non-beating late backend expires, while the gated one keeps
        # renewing its lease between steps (it beats on wall time).
        for _ in range(3):
            clock.advance(31.0)
            time.sleep(0.15)
        deadline = time.monotonic() + 10.0
        while coordinator.health[late.name]._state != DEAD and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert coordinator.health[late.name]._state == DEAD
        # The straggler now finishes its (still-open, since the only other
        # backend is busy) shard successfully...
        late.release.set()
        deadline = time.monotonic() + 10.0
        while coordinator._completed_by[late.name] == 0 and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert coordinator._completed_by[late.name] == 1
        # ...and its health must NOT have been reset by that success.
        assert coordinator.health[late.name]._state == DEAD
        gated.release.set()
        runner.join(timeout=30.0)
        assert not runner.is_alive()
        summary = result["summary"]
        assert summary.n_expired_leases == 1
        assert summary.backends[late.name]["state"] == "dead"
        assert summary.backends[late.name]["shards_completed"] == 1
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_degraded_snapshot_is_immune_to_cooldown_expiry(self, tmp_path):
        # The peer dies during the run; by the time the summary is built
        # the (fake) clock has moved past its cooldown, so status() will
        # report post-cooldown "probation".  degraded must still be True:
        # it is snapshotted before the stats pass, not re-derived after
        # the promoting state read.
        clock = FakeClock()
        spec = tiny_spec()  # 4 points -> 2 shards of 2
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        peer = _FailingPeer()

        class _JumpingLocal(LocalBackend):
            """Advances the fake clock past the peer's cooldown while
            computing its final shard."""

            def run_shard(self, spec_, shard, heartbeat):
                records = super().run_shard(spec_, shard, heartbeat)
                if shard.index == 0:  # requeued peer shard runs last
                    clock.advance(10.0)
                return records

        local = _JumpingLocal(str(tmp_path / "scratch"), workers=1)
        coordinator = FabricCoordinator(
            [peer, local], shard_size=2,
            dead_after=1, cooldown_s=5.0, lease_timeout_s=3600.0,
            clock=clock,
        )
        summary = coordinator.run(spec, store)
        assert summary.degraded is True
        assert summary.backends[peer.name]["state"] == "probation"
        assert "degraded to local-only" in summary.describe()
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_fast_backends_drain_multiple_completions_per_tick(self, tmp_path):
        # Four instant backends finish whole waves of shards inside one
        # (deliberately long) poll interval; the loop must drain every
        # queued completion per tick instead of consuming one per poll,
        # and the merge must stay byte-identical.
        spec = tiny_spec(seeds=tuple(range(1, 7)))  # 12 points
        ref = reference_store(spec, tmp_path / "ref.jsonl")
        records = {key: ref.get(key) for key in ref.keys()}
        backends = [
            _InstantBackend(records, name=f"fast{i}") for i in range(4)
        ]
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        coordinator = FabricCoordinator(
            backends, shard_size=1, poll_s=0.2,
        )
        t0 = time.monotonic()
        summary = coordinator.run(spec, store)
        elapsed = time.monotonic() - t0
        assert summary.n_computed == 12
        assert summary.n_shards == 12
        # 12 shards at one completion per 0.2s tick would take >= 2.4s;
        # draining finishes in a handful of ticks.
        assert elapsed < 2.0
        assert sum(
            stats["shards_completed"] for stats in summary.backends.values()
        ) == 12
        assert open(ref.path, "rb").read() == open(store.path, "rb").read()

    def test_no_leaked_threads_or_processes(self, tmp_path):
        import multiprocessing
        spec = tiny_spec(seeds=(1, 2, 3))
        store = ResultStore(str(tmp_path / "fab.jsonl"))
        flaky = _FailingBackend(str(tmp_path / "scratch"), failures=1)
        coordinator = FabricCoordinator(
            [flaky, LocalBackend(str(tmp_path / "scratch2"), workers=1)],
            shard_size=2, dead_after=5,
        )
        before = threading.active_count()
        coordinator.run(spec, store)
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert threading.active_count() <= before
        assert multiprocessing.active_children() == []
