"""Tests for the synthetic workload generator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import FP_CLASSES, InstrClass
from repro.workloads import MIXES, WorkloadMix, available_mixes, generate_trace


class TestMixRegistry:
    def test_all_four_paper_mixes_present(self):
        assert set(available_mixes()) == {
            "int_heavy", "fp_heavy", "memory_bound", "branchy"
        }

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload mix"):
            generate_trace("spec2000", 10)

    def test_mix_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix(name="bad", class_weights={})
        with pytest.raises(ConfigurationError):
            WorkloadMix(name="bad", class_weights={InstrClass.INT_ALU: -1.0})
        with pytest.raises(ConfigurationError):
            WorkloadMix(name="bad", class_weights={InstrClass.INT_ALU: 1.0},
                        mispredict_rate=1.5)


class TestGeneration:
    def test_traces_are_structurally_valid(self):
        for mix in available_mixes():
            trace = generate_trace(mix, 2000, seed=1)
            trace.validate()  # raises TraceError on any violation

    def test_deterministic_for_same_arguments(self):
        a = generate_trace("int_heavy", 1500, seed=42)
        b = generate_trace("int_heavy", 1500, seed=42)
        assert a.opclass == b.opclass
        assert a.src1 == b.src1
        assert a.src2 == b.src2
        assert a.dst == b.dst
        assert a.flags == b.flags

    def test_different_seeds_differ(self):
        a = generate_trace("int_heavy", 1500, seed=1)
        b = generate_trace("int_heavy", 1500, seed=2)
        assert a.opclass != b.opclass or a.src1 != b.src1

    def test_length_and_empty(self):
        assert len(generate_trace("branchy", 0, seed=0)) == 0
        assert len(generate_trace("branchy", 333, seed=0)) == 333

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_trace("branchy", -1)


class TestMixCharacter:
    """Each mix must actually stress what its name promises."""

    def test_int_heavy_has_no_fp(self):
        counts = generate_trace("int_heavy", 4000, seed=7).class_counts()
        assert all(counts[k] == 0 for k in FP_CLASSES)

    def test_fp_heavy_is_mostly_fp_datapath(self):
        counts = generate_trace("fp_heavy", 4000, seed=7).class_counts()
        fp = sum(counts[k] for k in FP_CLASSES)
        assert fp / 4000 > 0.35

    def test_memory_bound_memory_share(self):
        counts = generate_trace("memory_bound", 4000, seed=7).class_counts()
        mem = sum(counts[k] for k in InstrClass if k.is_memory)
        assert mem / 4000 > 0.45

    def test_branchy_branch_share_and_mispredicts(self):
        trace = generate_trace("branchy", 4000, seed=7)
        counts = trace.class_counts()
        branches = counts[InstrClass.BRANCH]
        assert branches / 4000 > 0.2
        from repro.engine.trace import FLAG_MISPREDICT
        mispredicted = sum(1 for f in trace.flags if f & FLAG_MISPREDICT)
        # ~12% of branches; loose band to stay seed-robust.
        assert 0.04 < mispredicted / branches < 0.25
