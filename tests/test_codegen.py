"""Tests for the config-specialized kernel codegen and the variant selector.

The contract under test: for every ``(trace, config)`` the compiled
specialized kernel returns a :class:`KernelResult` equal to the generic
loop's, the registry caches one compiled function per *structural*
specialization key, and the emitted source is genuinely branch-free with
respect to config-invariant conditions.
"""

import pytest

from repro.common.config import (
    BusConfig,
    ClusterConfig,
    ProcessorConfig,
)
from repro.common.errors import ConfigurationError
from repro.common.types import Topology
from repro.engine import (
    DEFAULT_KERNEL_VARIANT,
    ENGINE_VERSION,
    KERNEL_VARIANT_ENV,
    Pipeline,
    clear_registry,
    compile_kernel,
    emit_kernel_source,
    get_kernel,
    registry_size,
    simulate,
    simulate_specialized,
    specialization_key,
)
from repro.engine.kernel import STAGES
from repro.workloads import generate_trace


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_registry()
    yield
    clear_registry()


class TestSpecializationKey:
    def test_stable_and_deterministic(self):
        cfg = ProcessorConfig()
        assert specialization_key(cfg) == specialization_key(ProcessorConfig())

    def test_timing_irrelevant_fields_share_a_key(self):
        """Register-file sizes and cache geometry never reach the kernel, so
        configs differing only there must share one compiled variant."""
        base = ProcessorConfig()
        fat_regs = base.with_(cluster=ClusterConfig(int_regs=128, fp_regs=128))
        assert specialization_key(base) == specialization_key(fat_regs)

    def test_timing_fields_change_the_key(self):
        base = ProcessorConfig()
        assert specialization_key(base) != specialization_key(
            base.with_(n_clusters=8)
        )
        assert specialization_key(base) != specialization_key(
            base.with_(topology=Topology.CONV)
        )
        assert specialization_key(base) != specialization_key(
            base.with_(bus=BusConfig(hop_latency=2))
        )
        assert specialization_key(base) != specialization_key(
            base.with_(steering="modulo")
        )


class TestRegistry:
    def test_same_config_compiles_once(self):
        cfg = ProcessorConfig()
        assert registry_size() == 0
        fn1 = get_kernel(cfg)
        fn2 = get_kernel(ProcessorConfig())
        assert fn1 is fn2
        assert registry_size() == 1

    def test_structurally_equal_configs_share_a_kernel(self):
        fn1 = get_kernel(ProcessorConfig())
        fn2 = get_kernel(
            ProcessorConfig(cluster=ClusterConfig(int_regs=128))
        )
        assert fn1 is fn2
        assert registry_size() == 1

    def test_distinct_configs_compile_separately(self):
        get_kernel(ProcessorConfig(n_clusters=2))
        get_kernel(ProcessorConfig(n_clusters=4))
        assert registry_size() == 2

    def test_compiled_function_carries_provenance(self):
        cfg = ProcessorConfig()
        fn = get_kernel(cfg)
        assert fn.__specialization_key__ == specialization_key(cfg)
        assert "def specialized_kernel" in fn.__source__


class TestEmittedSource:
    def test_source_is_deterministic(self):
        cfg = ProcessorConfig()
        assert emit_kernel_source(cfg) == emit_kernel_source(cfg)

    def test_no_config_invariant_branches_remain(self):
        """The point of the residual program: names the generic loop branches
        on per instruction must not appear in the emitted source."""
        for cfg in (
            ProcessorConfig(),
            ProcessorConfig(n_clusters=3, topology=Topology.CONV,
                            steering="modulo"),
        ):
            src = emit_kernel_source(cfg)
            for dead_name in ("is_ring", "steer_dep", "steer_mod", "pow2",
                              "bw1", "hl1"):
                assert dead_name not in src, (cfg.describe(), dead_name)

    def test_power_of_two_uses_masks_odd_uses_modulo(self):
        pow2_src = emit_kernel_source(ProcessorConfig(n_clusters=4))
        assert "& 3" in pow2_src
        odd_src = emit_kernel_source(ProcessorConfig(n_clusters=3))
        assert "% 3" in odd_src

    def test_literal_folding(self):
        cfg = ProcessorConfig(n_clusters=4)
        src = emit_kernel_source(cfg)
        # Penalties and widths appear as literals, not attribute loads.
        assert str(cfg.branch.mispredict_penalty) in src
        assert "cfg." not in src
        assert "config" not in src

    def test_every_stage_emitted_in_order(self):
        src = emit_kernel_source(ProcessorConfig())
        positions = []
        cursor = 0
        for stage in STAGES:
            marker = f"# ---- {stage} "
            idx = src.find(marker, cursor)
            assert idx >= 0, f"stage {stage!r} missing from emitted source"
            positions.append(idx)
            cursor = idx
        assert positions == sorted(positions)

    def test_multi_unit_clusters_emit_the_scan_loop(self):
        cfg = ProcessorConfig(
            cluster=ClusterConfig(issue_width=4, fu_counts=(2, 1, 1, 2))
        )
        src = emit_kernel_source(cfg)
        assert "unit_idx" in src
        # And the single-unit fast path indexes flat ints instead.
        flat = emit_kernel_source(ProcessorConfig())
        assert "unit_idx" not in flat


class TestAgreementWithGeneric:
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.CONV])
    @pytest.mark.parametrize("n_clusters", [1, 2, 3, 4, 5, 8])
    def test_matrix_agreement(self, topology, n_clusters):
        t = generate_trace("int_heavy", 3000, seed=77)
        cfg = ProcessorConfig(n_clusters=n_clusters, topology=topology)
        assert simulate_specialized(t, cfg) == simulate(t, cfg)

    @pytest.mark.parametrize("steering", ["dependence", "modulo",
                                          "round_robin"])
    def test_steering_agreement(self, steering):
        t = generate_trace("branchy", 3000, seed=5)
        for topology in (Topology.RING, Topology.CONV):
            cfg = ProcessorConfig(n_clusters=4, topology=topology,
                                  steering=steering)
            assert simulate_specialized(t, cfg) == simulate(t, cfg)

    def test_unusual_machine_shapes_agree(self):
        t = generate_trace("memory_bound", 2500, seed=13)
        for cfg in (
            ProcessorConfig(window_size=1, fetch_width=1),
            ProcessorConfig(fetch_width=3, window_size=96),
            ProcessorConfig(frontend_depth=0),
            ProcessorConfig(bus=BusConfig(hop_latency=3, bandwidth=2,
                                          writeback_latency=0)),
            ProcessorConfig(cluster=ClusterConfig(issue_width=1)),
            ProcessorConfig(cluster=ClusterConfig(issue_width=4,
                                                  fu_counts=(2, 1, 1, 2))),
        ):
            assert simulate_specialized(t, cfg) == simulate(t, cfg), (
                cfg.describe()
            )

    def test_long_trace_exercises_scoreboard_rebase(self):
        """PRUNE_INTERVAL boundaries (sliding-scoreboard rebase) must be
        invisible in the results."""
        t = generate_trace("int_heavy", 20_000, seed=3)
        for topology in (Topology.RING, Topology.CONV):
            cfg = ProcessorConfig(n_clusters=4, topology=topology)
            assert simulate_specialized(t, cfg) == simulate(t, cfg)

    def test_empty_trace(self):
        from repro.engine.trace import Trace

        t = Trace("empty", [], [], [], [], [])
        cfg = ProcessorConfig()
        assert simulate_specialized(t, cfg) == simulate(t, cfg)

    def test_missing_fu_type_still_rejected(self):
        t = generate_trace("fp_heavy", 500, seed=1)
        cfg = ProcessorConfig(cluster=ClusterConfig(fu_counts=(1, 1, 0, 0)))
        with pytest.raises(ConfigurationError, match="zero units"):
            simulate_specialized(t, cfg)


class TestPipelineVariantSelector:
    def test_default_is_specialized(self):
        assert Pipeline().kernel_variant == DEFAULT_KERNEL_VARIANT == (
            "specialized"
        )

    def test_explicit_generic(self):
        assert Pipeline(kernel_variant="generic").kernel_variant == "generic"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="kernel variant"):
            Pipeline(kernel_variant="vectorized")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(KERNEL_VARIANT_ENV, "generic")
        assert Pipeline().kernel_variant == "generic"
        # An explicit argument still wins over the environment.
        assert Pipeline(kernel_variant="specialized").kernel_variant == (
            "specialized"
        )

    def test_both_variants_identical_stats(self):
        t = generate_trace("int_heavy", 2000, seed=44)
        cfg = ProcessorConfig(n_clusters=4, topology=Topology.RING)
        generic = Pipeline(cfg, kernel_variant="generic").run(t)
        special = Pipeline(cfg, kernel_variant="specialized").run(t)
        assert generic.as_dict() == special.as_dict()

    def test_run_record_identical_across_variants(self):
        """The sweep store must be byte-identical whichever variant computed
        it — this is what keeps ENGINE_VERSION shared.  The one permitted
        difference is the ``kernel_variant`` provenance field, which names
        the producing variant and never reaches the store (the sweep runner
        strips it before appending)."""
        t = generate_trace("fp_heavy", 1500, seed=21)
        cfg = ProcessorConfig(n_clusters=3, topology=Topology.CONV)
        rec_g = Pipeline(cfg, kernel_variant="generic").run_record(t)
        rec_s = Pipeline(cfg, kernel_variant="specialized").run_record(t)
        assert rec_g.pop("kernel_variant") == "generic"
        assert rec_s.pop("kernel_variant") == "specialized"
        assert rec_g == rec_s
        assert rec_s["engine_version"] == ENGINE_VERSION == "1"

    def test_compile_kernel_uncached(self):
        cfg = ProcessorConfig()
        fn1 = compile_kernel(cfg)
        fn2 = compile_kernel(cfg)
        assert fn1 is not fn2
        t = generate_trace("int_heavy", 500, seed=2)
        assert fn1(t) == fn2(t) == simulate(t, cfg)
