"""Differential fuzzing across all four kernel implementations.

~75 randomized ``(config, mix, seed)`` points, deliberately biased toward
the corners the specializer folds differently — non-power-of-two cluster
counts, ``bus.bandwidth > 1``, ``hop_latency > 1``, ``window_size == 1``,
zero-FP mixes on FP-less clusters — asserting that the naive
object-per-instruction oracle, the generic table-driven loop, the
per-config compiled specialized kernel, and the lane-vectorized batch
kernel agree on **every** :class:`KernelResult` field, not just cycles.
The batch kernel is additionally fuzzed at real batch sizes: ragged lane
groups (mixed lengths, so batches span finished and still-running lanes,
single-instruction and B=1 degenerate shapes included) where every lane
must reproduce the generic kernel exactly, energy components with exact
integer equality.

The steering axis is drawn uniformly from ``repro.steering.list_policies()``
— the live registry — so every registered policy (the three built-ins, the
``load_balance``/``criticality`` plugins, and anything registered before
collection) is automatically under the differential, energy components
included.

Most points run with the per-event energy model enabled under randomized
integer costs, so the agreement extends to every ``energy`` breakdown
component with exact integer equality: the generic loop and the
specializer fold their breakdowns from loop-maintained counters, while the
naive oracle charges every cost at its event site — three independent
accountings of one model.  The remaining points keep the model off, which
keeps the pre-energy codegen path fuzzed too.
"""

import dataclasses
import os
import random
import sys

import pytest

from repro.common.config import BusConfig, ClusterConfig, ProcessorConfig
from repro.common.types import Topology
from repro.energy import ENERGY_COMPONENTS, EnergyConfig, FuEnergy
from repro.engine import (
    KernelResult,
    simulate,
    simulate_batch,
    simulate_specialized,
)
from repro.steering import list_policies
from repro.workloads import generate_trace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "bench"))

N_POINTS = 75
TRACE_LEN = 700

#: Every KernelResult field, derived from the dataclass so a newly added
#: field is fuzzed automatically (naive reports the same keys, plus ``ipc``).
FIELDS = tuple(f.name for f in dataclasses.fields(KernelResult))

#: ``int_heavy`` has no FP classes at all, so it must also run on clusters
#: with zero FP units; the remaining mixes keep the default cluster.
ZERO_FP_CLUSTER = ClusterConfig(fu_counts=(1, 1, 0, 0))


def random_energy(rng: random.Random) -> EnergyConfig:
    """Randomized integer cost vector (zero costs included on purpose)."""
    return EnergyConfig(
        enabled=True,
        fetch=rng.randrange(4),
        steer=rng.randrange(3),
        issue=rng.randrange(5),
        operand_read=rng.randrange(3),
        result_write=rng.randrange(3),
        bus_hop=rng.randrange(5),
        l1_hit=rng.randrange(3),
        l1_miss=rng.randrange(9),
        l2_miss=rng.randrange(40),
        wakeup=rng.randrange(3),
        fu=FuEnergy(
            int_alu=rng.randrange(3),
            int_mul=rng.randrange(6),
            int_div=rng.randrange(12),
            fp_add=rng.randrange(4),
            fp_mul=rng.randrange(8),
            fp_div=rng.randrange(16),
            load=rng.randrange(4),
            store=rng.randrange(4),
            branch=rng.randrange(3),
        ),
    )


def random_point(rng: random.Random):
    """One randomized (config, mix, seed) point."""
    mix = rng.choice(["int_heavy", "fp_heavy", "memory_bound", "branchy"])
    fetch_width = rng.choice([1, 2, 3, 4, 8])
    window_size = rng.choice([1, 2, 7, 32, 128, 200])
    if window_size < fetch_width:
        window_size = fetch_width
    if mix == "int_heavy" and rng.random() < 0.4:
        cluster = ZERO_FP_CLUSTER
    else:
        cluster = ClusterConfig(
            issue_width=rng.choice([1, 2, 4]),
            fu_counts=rng.choice([(1, 1, 1, 1), (2, 1, 1, 1), (2, 2, 2, 2)]),
        )
    # ~80% of points fuzz the energy model; the rest keep the pre-energy
    # (model off) codegen path covered.
    energy = random_energy(rng) if rng.random() < 0.8 else EnergyConfig()
    cfg = ProcessorConfig(
        n_clusters=rng.choice([1, 2, 3, 4, 5, 6, 7, 8]),
        topology=rng.choice([Topology.RING, Topology.CONV]),
        fetch_width=fetch_width,
        window_size=window_size,
        frontend_depth=rng.choice([0, 2, 4]),
        # Uniform over the *registry*, so policies added via
        # repro.steering.register_policy (load_balance, criticality, future
        # plugins) are automatically under the differential without this
        # file changing.
        steering=rng.choice(list(list_policies())),
        cluster=cluster,
        bus=BusConfig(
            hop_latency=rng.choice([1, 1, 2, 3]),
            bandwidth=rng.choice([1, 1, 2, 4]),
            writeback_latency=rng.choice([0, 1, 2]),
        ),
        energy=energy,
    )
    return cfg, mix, rng.randrange(10_000)


def kernel_result_fields(result):
    return dataclasses.asdict(result)


@pytest.mark.parametrize("index", range(N_POINTS))
def test_four_way_agreement(index):
    from naive_ref import NaivePipeline

    rng = random.Random(0xA6E11A + index)
    cfg, mix, seed = random_point(rng)
    trace = generate_trace(mix, TRACE_LEN, seed=seed)

    naive = NaivePipeline(cfg).run(trace)
    generic = kernel_result_fields(simulate(trace, cfg))
    specialized = kernel_result_fields(simulate_specialized(trace, cfg))
    batch = kernel_result_fields(simulate_batch([trace], cfg)[0])

    label = f"point {index}: {cfg.describe()} mix={mix} seed={seed}"
    assert generic == specialized, f"generic vs specialized diverge: {label}"
    assert generic == batch, f"generic vs batch diverge: {label}"
    for field in FIELDS:
        assert naive[field] == generic[field], (
            f"naive vs kernel diverge on {field!r}: {label}: "
            f"{naive[field]!r} != {generic[field]!r}"
        )
    if cfg.energy.enabled:
        # Spell the per-component checks out (the dict equality above
        # already covers them) so a divergence names the component.
        for component in ENERGY_COMPONENTS + ("total",):
            assert (
                naive["energy"][component]
                == generic["energy"][component]
                == specialized["energy"][component]
            ), f"energy component {component!r} diverges: {label}"
        assert generic["energy"]["total"] == sum(
            generic["energy"][c] for c in ENERGY_COMPONENTS
        ), f"energy total is not the component sum: {label}"
    else:
        assert naive["energy"] is None
        assert generic["energy"] is None


@pytest.mark.parametrize("index", range(20))
def test_batched_ragged_lanes_agree_with_generic(index):
    """Real batch shapes: each randomized point becomes the first lane of
    a ragged batch (companion lanes drawn from the point's own mix, with
    degenerate and mismatched lengths so the batch spans finished and
    still-running lanes), and every lane must equal the generic kernel's
    result for that lane alone — energy components included, exactly."""
    rng = random.Random(0xBA7C4E + index)
    cfg, mix, seed = random_point(rng)
    n0 = rng.randrange(1, 400)
    lanes = [generate_trace(mix, n0, seed=seed)]
    # Companion lanes must share the point's mix: a zero-FP cluster only
    # accepts FP-free traces, and the config is shared batch-wide.
    for k in range(rng.randrange(1, 6)):
        length = rng.choice([1, 2, n0, rng.randrange(1, 500)])
        lanes.append(generate_trace(mix, length, seed=seed + 1000 + k))
    batch = simulate_batch(lanes, cfg)
    assert len(batch) == len(lanes)
    label = f"point {index}: {cfg.describe()} mix={mix} seed={seed}"
    for lane_index, (trace, lane_result) in enumerate(zip(lanes, batch)):
        reference = simulate(trace, cfg)
        assert lane_result == reference, (
            f"lane {lane_index} (n={len(trace)}) diverges: {label}"
        )
        if cfg.energy.enabled:
            for component in ENERGY_COMPONENTS + ("total",):
                assert lane_result.energy[component] == \
                    reference.energy[component], (
                        f"lane {lane_index} energy {component!r}: {label}"
                    )
