"""Differential fuzzing across all three kernel implementations.

~50 randomized ``(config, mix, seed)`` points, deliberately biased toward
the corners the specializer folds differently — non-power-of-two cluster
counts, ``bus.bandwidth > 1``, ``hop_latency > 1``, ``window_size == 1``,
zero-FP mixes on FP-less clusters — asserting that the naive
object-per-instruction oracle, the generic table-driven loop, and the
per-config compiled specialized kernel agree on **every**
:class:`KernelResult` field, not just cycles.
"""

import dataclasses
import os
import random
import sys

import pytest

from repro.common.config import BusConfig, ClusterConfig, ProcessorConfig
from repro.common.types import Topology
from repro.engine import KernelResult, simulate, simulate_specialized
from repro.workloads import generate_trace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "bench"))

N_POINTS = 50
TRACE_LEN = 700

#: Every KernelResult field, derived from the dataclass so a newly added
#: field is fuzzed automatically (naive reports the same keys, plus ``ipc``).
FIELDS = tuple(f.name for f in dataclasses.fields(KernelResult))

#: ``int_heavy`` has no FP classes at all, so it must also run on clusters
#: with zero FP units; the remaining mixes keep the default cluster.
ZERO_FP_CLUSTER = ClusterConfig(fu_counts=(1, 1, 0, 0))


def random_point(rng: random.Random):
    """One randomized (config, mix, seed) point."""
    mix = rng.choice(["int_heavy", "fp_heavy", "memory_bound", "branchy"])
    fetch_width = rng.choice([1, 2, 3, 4, 8])
    window_size = rng.choice([1, 2, 7, 32, 128, 200])
    if window_size < fetch_width:
        window_size = fetch_width
    if mix == "int_heavy" and rng.random() < 0.4:
        cluster = ZERO_FP_CLUSTER
    else:
        cluster = ClusterConfig(
            issue_width=rng.choice([1, 2, 4]),
            fu_counts=rng.choice([(1, 1, 1, 1), (2, 1, 1, 1), (2, 2, 2, 2)]),
        )
    cfg = ProcessorConfig(
        n_clusters=rng.choice([1, 2, 3, 4, 5, 6, 7, 8]),
        topology=rng.choice([Topology.RING, Topology.CONV]),
        fetch_width=fetch_width,
        window_size=window_size,
        frontend_depth=rng.choice([0, 2, 4]),
        steering=rng.choice(["dependence", "modulo", "round_robin"]),
        cluster=cluster,
        bus=BusConfig(
            hop_latency=rng.choice([1, 1, 2, 3]),
            bandwidth=rng.choice([1, 1, 2, 4]),
            writeback_latency=rng.choice([0, 1, 2]),
        ),
    )
    return cfg, mix, rng.randrange(10_000)


def kernel_result_fields(result):
    return dataclasses.asdict(result)


@pytest.mark.parametrize("index", range(N_POINTS))
def test_three_way_agreement(index):
    from naive_ref import NaivePipeline

    rng = random.Random(0xA6E11A + index)
    cfg, mix, seed = random_point(rng)
    trace = generate_trace(mix, TRACE_LEN, seed=seed)

    naive = NaivePipeline(cfg).run(trace)
    generic = kernel_result_fields(simulate(trace, cfg))
    specialized = kernel_result_fields(simulate_specialized(trace, cfg))

    label = f"point {index}: {cfg.describe()} mix={mix} seed={seed}"
    assert generic == specialized, f"generic vs specialized diverge: {label}"
    for field in FIELDS:
        assert naive[field] == generic[field], (
            f"naive vs kernel diverge on {field!r}: {label}: "
            f"{naive[field]!r} != {generic[field]!r}"
        )
