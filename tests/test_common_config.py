"""Tests for the configuration dataclasses in repro.common.config."""

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    BusConfig,
    CacheConfig,
    ClusterConfig,
    FuLatencies,
    MemoryHierarchyConfig,
    ProcessorConfig,
)
from repro.common.errors import ConfigurationError
from repro.common.types import FuType, InstrClass, Topology


class TestFuLatencies:
    def test_table_is_indexed_by_instr_class(self):
        table = FuLatencies().table()
        assert len(table) == len(InstrClass)
        assert table[InstrClass.INT_ALU] == 1
        assert table[InstrClass.INT_DIV] == 20
        assert table[InstrClass.LOAD] == table[InstrClass.FP_LOAD]

    def test_divides_not_pipelined(self):
        pipelined = FuLatencies().pipelined_table()
        assert not pipelined[InstrClass.INT_DIV]
        assert not pipelined[InstrClass.FP_DIV]
        assert pipelined[InstrClass.INT_ALU]

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            FuLatencies(int_alu=0)


class TestClusterConfig:
    def test_fu_counts_length_checked(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(fu_counts=(1, 1, 1))

    def test_needs_an_integer_unit(self):
        with pytest.raises(ConfigurationError, match="integer unit"):
            ClusterConfig(fu_counts=(0, 0, 1, 1))

    def test_default_has_one_unit_per_type(self):
        cfg = ClusterConfig()
        assert all(cfg.fu_counts[fu] == 1 for fu in FuType)


class TestCacheConfig:
    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            CacheConfig(line_bytes=48)

    def test_associativity_must_divide_lines(self):
        with pytest.raises(ConfigurationError, match="divisible"):
            CacheConfig(size_kb=1, line_bytes=64, associativity=3)


class TestProcessorConfig:
    def test_defaults_valid(self):
        cfg = ProcessorConfig()
        assert cfg.n_clusters == 4
        assert cfg.topology is Topology.RING

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_clusters": 0},
            {"fetch_width": 0},
            {"window_size": 2, "fetch_width": 4},
            {"steering": "magic"},
            {"topology": "ring"},  # must be the enum, not a string
        ],
    )
    def test_invalid_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(**overrides)

    def test_with_returns_validated_copy(self):
        cfg = ProcessorConfig()
        ring8 = cfg.with_(n_clusters=8)
        assert ring8.n_clusters == 8
        assert cfg.n_clusters == 4
        with pytest.raises(ConfigurationError):
            cfg.with_(n_clusters=-1)

    def test_describe_is_json_friendly(self):
        desc = ProcessorConfig().describe()
        assert desc["topology"] == "ring"
        assert desc["n_clusters"] == 4
        assert all(isinstance(v, (int, float, str)) for v in desc.values())

    def test_nested_validation_propagates(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(bus=BusConfig(hop_latency=0))
        with pytest.raises(ConfigurationError):
            ProcessorConfig(branch=BranchPredictorConfig(mispredict_penalty=0))
        with pytest.raises(ConfigurationError):
            ProcessorConfig(
                memory=MemoryHierarchyConfig(l2_miss_penalty=-1)
            )
