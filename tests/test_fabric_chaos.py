"""Chaos matrix for the distributed sweep fabric.

Every test here asserts the tentpole property end to end: whatever the
cluster shape (1/2/3 peers plus the local pool), whatever the seeded
network fault storm, and whoever dies mid-run, the merged store is
**byte-identical** to the fault-free single-host store — and nothing
(worker processes, threads) leaks.

Peers are real :class:`~repro.service.server.ServiceThread` instances on
ephemeral ports with ``sweep_workers=1`` (tiny shards run inline, so a
hard kill cannot orphan pool workers).  Network faults come from a seeded
:class:`~repro.faults.NetworkFaultPlan` installed process-wide, which the
``ServiceClient`` inside each :class:`~repro.fabric.backends.PeerBackend`
consults on every RPC.
"""

import multiprocessing
import threading
import time

import pytest

from repro.fabric import FabricCoordinator, LocalBackend, PeerBackend
from repro.faults import (
    NET_ENV_VAR,
    NetworkFaultPlan,
    clear_net_plan,
    install_net_plan,
)
from repro.service.server import ServiceThread
from repro.sweep.grid import SweepSpec
from repro.sweep.runner import run_sweep
from repro.sweep.store import ResultStore


@pytest.fixture(autouse=True)
def _clean_net_plan(monkeypatch):
    monkeypatch.delenv(NET_ENV_VAR, raising=False)
    clear_net_plan()
    yield
    clear_net_plan()


def chaos_spec(name="fab-chaos"):
    # 6 points, ~milliseconds each: big enough for several shards, small
    # enough that the whole matrix stays CI-friendly.
    return SweepSpec(
        name=name,
        topologies=("ring", "conv"),
        cluster_counts=(2,),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=300,
        seeds=(1, 2, 3),
    )


def reference_bytes(spec, tmp_path):
    """The fault-free single-host store — the byte-identity oracle."""
    path = tmp_path / "reference.jsonl"
    run_sweep(spec.expand(), ResultStore(str(path)), workers=1)
    return path.read_bytes()


def start_peers(tmp_path, count):
    peers = []
    for ordinal in range(count):
        store = tmp_path / f"peer-{ordinal}" / "store.jsonl"
        store.parent.mkdir(parents=True)
        peers.append(ServiceThread(str(store), sweep_workers=1).start())
    return peers


def stop_peers(peers):
    for peer in peers:
        try:
            peer.stop(drain=False)
        except RuntimeError:
            pass


def peer_backend(peer, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("timeout", 30.0)
    return PeerBackend(peer.host, peer.port, **kwargs)


def assert_no_leaks(threads_before):
    assert multiprocessing.active_children() == []
    deadline = time.monotonic() + 5.0
    while threading.active_count() > threads_before and \
            time.monotonic() < deadline:
        time.sleep(0.02)
    assert threading.active_count() <= threads_before


# -- the seeded chaos matrix -------------------------------------------------

STORMS = [
    pytest.param(
        1,
        dict(seed=7, refuse_rate=0.2, disconnect_rate=0.1),
        id="1peer-refuse-disconnect",
    ),
    pytest.param(
        2,
        dict(seed=11, refuse_rate=0.15, disconnect_rate=0.1,
             corrupt_rate=0.1),
        id="2peers-refuse-disconnect-corrupt",
    ),
    pytest.param(
        3,
        dict(seed=23, refuse_rate=0.1, disconnect_rate=0.1,
             corrupt_rate=0.15, flap_rate=0.2),
        id="3peers-full-storm",
    ),
]


class TestChaosMatrix:
    @pytest.mark.parametrize("n_peers,storm", STORMS)
    def test_merged_store_is_byte_identical(self, tmp_path, n_peers, storm):
        spec = chaos_spec(f"fab-chaos-{n_peers}")
        reference = reference_bytes(spec, tmp_path)
        threads_before = threading.active_count()
        peers = start_peers(tmp_path, n_peers)
        install_net_plan(NetworkFaultPlan(**storm))
        store = ResultStore(str(tmp_path / "merged.jsonl"))
        try:
            coordinator = FabricCoordinator(
                [LocalBackend(str(tmp_path / "scratch"), workers=1)]
                + [peer_backend(p) for p in peers],
                shard_size=2,
                lease_timeout_s=30.0,
            )
            summary = coordinator.run(spec, store)
        finally:
            clear_net_plan()
            stop_peers(peers)
        assert summary.n_cached == 0
        assert summary.n_computed == 6
        assert (tmp_path / "merged.jsonl").read_bytes() == reference
        assert_no_leaks(threads_before)

    @pytest.mark.parametrize("n_peers,storm", STORMS)
    def test_rerun_after_storm_is_pure_cache_hit(self, tmp_path, n_peers,
                                                 storm):
        spec = chaos_spec(f"fab-rerun-{n_peers}")
        reference = reference_bytes(spec, tmp_path)
        peers = start_peers(tmp_path, n_peers)
        install_net_plan(NetworkFaultPlan(**storm))
        store_path = tmp_path / "merged.jsonl"
        try:
            backends = (
                [LocalBackend(str(tmp_path / "scratch"), workers=1)]
                + [peer_backend(p) for p in peers]
            )
            FabricCoordinator(backends, shard_size=2).run(
                spec, ResultStore(str(store_path)))
            # Resubmission: a fresh coordinator over the merged store must
            # find nothing to do and change nothing.
            summary = FabricCoordinator(backends, shard_size=2).run(
                spec, ResultStore(str(store_path)))
        finally:
            clear_net_plan()
            stop_peers(peers)
        assert summary.n_computed == 0
        assert summary.n_shards == 0
        assert summary.cache_hit_rate == 1.0
        assert "6 cached, 0 computed" in summary.describe()
        assert store_path.read_bytes() == reference


# -- failure-domain isolation ------------------------------------------------

class TestPeerDeathMidRun:
    def test_hard_killed_peer_does_not_change_bytes(self, tmp_path):
        spec = chaos_spec("fab-kill")
        reference = reference_bytes(spec, tmp_path)
        threads_before = threading.active_count()
        peers = start_peers(tmp_path, 2)
        victim, survivor = peers
        victim_name = f"{victim.host}:{victim.port}"
        trigger = threading.Event()
        killer = threading.Thread(
            target=lambda: (trigger.wait(timeout=30.0),
                            victim.stop(drain=False)),
            daemon=True,
        )
        killer.start()

        def pull_the_plug(message):
            # First dispatch to the victim arms the kill: the service dies
            # (cancelling shutdown, no drain) while its shard is in flight.
            if f"-> {victim_name}" in message:
                trigger.set()

        store = ResultStore(str(tmp_path / "merged.jsonl"))
        try:
            coordinator = FabricCoordinator(
                [LocalBackend(str(tmp_path / "scratch"), workers=1),
                 peer_backend(victim, retries=1),
                 peer_backend(survivor)],
                shard_size=1,
                lease_timeout_s=30.0,
                log=pull_the_plug,
            )
            summary = coordinator.run(spec, store)
        finally:
            trigger.set()
            stop_peers(peers)
            killer.join(timeout=10.0)
        assert summary.n_computed == 6
        assert (tmp_path / "merged.jsonl").read_bytes() == reference
        assert_no_leaks(threads_before)

    def test_all_peers_down_degrades_to_local(self, tmp_path):
        spec = chaos_spec("fab-degraded")
        reference = reference_bytes(spec, tmp_path)
        # A port that was bound and released: nothing listens there now.
        probe = ServiceThread(str(tmp_path / "gone" / "store.jsonl"))
        (tmp_path / "gone").mkdir()
        probe.start()
        dead_host, dead_port = probe.host, probe.port
        probe.stop(drain=False)

        store = ResultStore(str(tmp_path / "merged.jsonl"))
        coordinator = FabricCoordinator(
            [LocalBackend(str(tmp_path / "scratch"), workers=1),
             PeerBackend(dead_host, dead_port, timeout=2.0,
                         retries=0, backoff_s=0.01)],
            shard_size=2,
            dead_after=2,
        )
        summary = coordinator.run(spec, store)
        assert summary.degraded
        assert "degraded to local-only" in summary.describe()
        assert (tmp_path / "merged.jsonl").read_bytes() == reference


# -- probation re-admission --------------------------------------------------

class TestProbationReadmission:
    def test_restarted_peer_is_readmitted_and_finishes_the_run(
            self, tmp_path):
        spec = chaos_spec("fab-readmit")
        reference = reference_bytes(spec, tmp_path)
        store_dir = tmp_path / "peer"
        store_dir.mkdir()
        first = ServiceThread(str(store_dir / "store.jsonl"),
                              sweep_workers=1).start()
        host, port = first.host, first.port
        first.stop(drain=False)  # the peer is down when the run begins

        second_holder = {}

        def restart_peer():
            time.sleep(0.3)
            second_holder["peer"] = ServiceThread(
                str(store_dir / "store.jsonl"), port=port,
                sweep_workers=1,
            ).start()

        restarter = threading.Thread(target=restart_peer, daemon=True)
        restarter.start()

        # The peer is the ONLY backend: the run can finish only if the
        # health machine walks dead -> probation -> alive once the service
        # is back, with no race against a faster local backend.
        backend = PeerBackend(host, port, timeout=5.0, retries=0,
                              backoff_s=0.01)
        coordinator = FabricCoordinator(
            [backend],
            shard_size=2,
            dead_after=1,
            cooldown_s=0.6,
            max_shard_attempts=20,
            lease_timeout_s=30.0,
        )
        store = ResultStore(str(tmp_path / "merged.jsonl"))
        try:
            summary = coordinator.run(spec, store)
        finally:
            restarter.join(timeout=10.0)
            stop_peers([second_holder.get("peer")]
                       if second_holder.get("peer") else [])
        stats = summary.backends[backend.name]
        assert stats["n_probations"] >= 1
        assert stats["shards_completed"] == 3
        assert stats["state"] == "alive"
        assert summary.n_requeues >= 1
        assert (tmp_path / "merged.jsonl").read_bytes() == reference
