"""repro.faults: deterministic injection decisions, env wiring, demotion."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.faults import (
    ENV_VAR,
    FAULT_DEATH,
    FAULT_EXCEPTION,
    FAULT_HANG,
    FAULT_OK,
    FaultPlan,
    InjectedFault,
    active_plan,
    clear_plan,
    install_plan,
    maybe_inject,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_plan()
    yield
    clear_plan()


class TestDecide:
    def test_no_rates_means_no_faults(self):
        plan = FaultPlan(seed=1)
        assert all(
            plan.decide(f"key{i}", attempt) is None
            for i in range(50) for attempt in (1, 2)
        )

    def test_deterministic_across_instances(self):
        a = FaultPlan(seed=7, exception_rate=0.3, hang_rate=0.2,
                      death_rate=0.1)
        b = FaultPlan(seed=7, exception_rate=0.3, hang_rate=0.2,
                      death_rate=0.1)
        decisions = [a.decide(f"k{i}", t) for i in range(200) for t in (1, 2)]
        assert decisions == [
            b.decide(f"k{i}", t) for i in range(200) for t in (1, 2)
        ]
        # With these rates a 400-draw sample must exercise every action.
        assert FAULT_EXCEPTION in decisions
        assert FAULT_HANG in decisions
        assert FAULT_DEATH in decisions
        assert None in decisions

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, exception_rate=0.5)
        b = FaultPlan(seed=2, exception_rate=0.5)
        decisions_a = [a.decide(f"k{i}", 1) for i in range(100)]
        decisions_b = [b.decide(f"k{i}", 1) for i in range(100)]
        assert decisions_a != decisions_b

    def test_max_faults_per_point_guarantees_eventual_success(self):
        plan = FaultPlan(seed=3, exception_rate=1.0, max_faults_per_point=2)
        assert plan.decide("k", 1) == FAULT_EXCEPTION
        assert plan.decide("k", 2) == FAULT_EXCEPTION
        assert plan.decide("k", 3) is None
        assert plan.decide("k", 99) is None

    def test_scripted_overrides_rates(self):
        plan = FaultPlan(
            seed=0,
            exception_rate=1.0,
            scripted={"target": [FAULT_DEATH, FAULT_OK, FAULT_HANG]},
        )
        assert plan.decide("target", 1) == FAULT_DEATH
        assert plan.decide("target", 2) is None
        assert plan.decide("target", 3) == FAULT_HANG
        assert plan.decide("target", 4) is None  # past the script: clean
        assert plan.decide("other", 1) == FAULT_EXCEPTION

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            FaultPlan().decide("k", 0)


class TestValidation:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="exception_rate"):
            FaultPlan(exception_rate=1.5)
        with pytest.raises(ConfigurationError, match="death_rate"):
            FaultPlan(death_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigurationError, match="sum"):
            FaultPlan(exception_rate=0.5, hang_rate=0.4, death_rate=0.2)

    def test_bad_scripted_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown action"):
            FaultPlan(scripted={"k": ["explode"]})

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="max_faults_per_point"):
            FaultPlan(max_faults_per_point=-1)
        with pytest.raises(ConfigurationError, match="hang_s"):
            FaultPlan(hang_s=-1.0)


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=11, exception_rate=0.25, hang_rate=0.1, death_rate=0.05,
            max_faults_per_point=3, hang_s=4.5,
            scripted={"k1": [FAULT_DEATH, FAULT_OK]},
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_dict(json.loads(plan.to_env())) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            FaultPlan.from_dict({"seed": 1, "lightning_rate": 0.5})


class TestActivation:
    def test_inactive_by_default(self):
        assert active_plan() is None
        assert maybe_inject("any-key", 1) is None

    def test_install_and_clear(self):
        plan = FaultPlan(seed=5, exception_rate=1.0)
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None

    def test_install_rejects_non_plan(self):
        with pytest.raises(ConfigurationError, match="FaultPlan"):
            install_plan({"seed": 1})

    def test_env_var_activates(self, monkeypatch):
        plan = FaultPlan(seed=9, exception_rate=1.0)
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        assert active_plan() == plan
        # The parse is memoized per raw value but tracks changes.
        other = FaultPlan(seed=10, exception_rate=1.0)
        monkeypatch.setenv(ENV_VAR, other.to_env())
        assert active_plan() == other

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, FaultPlan(seed=1).to_env())
        installed = FaultPlan(seed=2)
        install_plan(installed)
        assert active_plan() is installed

    def test_malformed_env_raises_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            active_plan()
        monkeypatch.setenv(ENV_VAR, "[1, 2]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            active_plan()


class TestMaybeInject:
    def test_exception_action_raises(self):
        install_plan(FaultPlan(scripted={"k": [FAULT_EXCEPTION]}))
        with pytest.raises(InjectedFault, match="injected exception"):
            maybe_inject("k", 1)
        assert maybe_inject("k", 2) is None

    def test_fatal_actions_demoted_in_process(self):
        # This test process is an orchestrator, not a pool worker: death
        # and hang must arrive as exceptions, not kill or stall pytest.
        install_plan(
            FaultPlan(hang_s=60.0, scripted={"k": [FAULT_DEATH, FAULT_HANG]})
        )
        with pytest.raises(InjectedFault, match="injected worker death"):
            maybe_inject("k", 1, fatal_ok=False)
        with pytest.raises(InjectedFault, match="injected hang"):
            maybe_inject("k", 2, fatal_ok=False)

    def test_default_fatal_gate_is_parent_process(self):
        # In the main process multiprocessing.parent_process() is None, so
        # the default gate demotes fatal faults exactly like fatal_ok=False.
        install_plan(FaultPlan(scripted={"k": [FAULT_DEATH]}))
        with pytest.raises(InjectedFault, match="demoted"):
            maybe_inject("k", 1)

    def test_hang_sleeps_then_continues_when_fatal_ok(self, monkeypatch):
        import repro.faults as faults_mod

        naps = []
        monkeypatch.setattr(faults_mod.time, "sleep", naps.append)
        install_plan(FaultPlan(hang_s=7.5, scripted={"k": [FAULT_HANG]}))
        assert maybe_inject("k", 1, fatal_ok=True) == FAULT_HANG
        assert naps == [7.5]

    def test_death_exits_hard_when_fatal_ok(self, monkeypatch):
        import repro.faults as faults_mod

        exits = []
        monkeypatch.setattr(faults_mod.os, "_exit", exits.append)
        install_plan(FaultPlan(scripted={"k": [FAULT_DEATH]}))
        maybe_inject("k", 1, fatal_ok=True)
        assert exits == [faults_mod.DEATH_EXIT_CODE]


# -- network fault plan -----------------------------------------------------

from repro.faults import (  # noqa: E402  (grouped with the tests they serve)
    NET_CORRUPT,
    NET_ENV_VAR,
    NET_FLAP,
    NET_OK,
    NET_REFUSE,
    NET_STALL,
    InjectedNetworkFault,
    InjectedNetworkTimeout,
    NetworkFaultPlan,
    active_net_plan,
    clear_net_plan,
    corrupt_bytes,
    inject_net_fault,
    install_net_plan,
    net_fault_action,
)


@pytest.fixture(autouse=True)
def _no_leftover_net_plan(monkeypatch):
    monkeypatch.delenv(NET_ENV_VAR, raising=False)
    clear_net_plan()
    yield
    clear_net_plan()


class TestNetworkDecide:
    def test_no_rates_means_no_faults(self):
        plan = NetworkFaultPlan(seed=1)
        assert all(
            plan.decide("p", f"GET /x{i}", attempt) is None
            for i in range(30) for attempt in (1, 2)
        )

    def test_deterministic_across_instances(self):
        a = NetworkFaultPlan(seed=9, refuse_rate=0.3, disconnect_rate=0.2,
                             corrupt_rate=0.2)
        b = NetworkFaultPlan(seed=9, refuse_rate=0.3, disconnect_rate=0.2,
                             corrupt_rate=0.2)
        ops = [("peer%d" % (i % 3), "GET /r%d" % i, 1 + i % 3)
               for i in range(60)]
        assert [a.decide(*op) for op in ops] == [b.decide(*op) for op in ops]

    def test_seed_changes_decisions(self):
        kw = dict(refuse_rate=0.4, disconnect_rate=0.3, corrupt_rate=0.3)
        a = NetworkFaultPlan(seed=1, **kw)
        b = NetworkFaultPlan(seed=2, **kw)
        ops = [("p", f"GET /r{i}", 1) for i in range(80)]
        assert [a.decide(*op) for op in ops] != [b.decide(*op) for op in ops]

    def test_attempts_beyond_cap_run_clean(self):
        plan = NetworkFaultPlan(seed=3, refuse_rate=1.0, max_faults_per_op=2)
        assert plan.decide("p", "GET /r", 1) == NET_REFUSE
        assert plan.decide("p", "GET /r", 2) == NET_REFUSE
        assert plan.decide("p", "GET /r", 3) is None

    def test_flap_is_sticky_per_operation(self):
        plan = NetworkFaultPlan(seed=5, flap_rate=1.0, max_faults_per_op=3)
        # Every capped attempt of the op sees the peer down.
        assert [plan.decide("p", "GET /r", a) for a in (1, 2, 3)] == \
            [NET_FLAP] * 3
        assert plan.decide("p", "GET /r", 4) is None

    def test_scripted_actions_take_precedence(self):
        plan = NetworkFaultPlan(
            seed=1, refuse_rate=1.0,
            scripted={"p GET /r": (NET_OK, NET_STALL)},
        )
        assert plan.decide("p", "GET /r", 1) is None        # scripted ok
        assert plan.decide("p", "GET /r", 2) == NET_STALL
        assert plan.decide("p", "GET /r", 3) is None        # past the script
        assert plan.decide("p", "GET /other", 1) == NET_REFUSE  # unscripted

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigurationError, match="sum to at most 1"):
            NetworkFaultPlan(refuse_rate=0.6, disconnect_rate=0.6)

    def test_bad_scripted_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown action"):
            NetworkFaultPlan(scripted={"p GET /r": ("explode",)})

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            NetworkFaultPlan().decide("p", "GET /r", 0)


class TestNetworkPlanWiring:
    def test_roundtrip_through_dict_and_env(self, monkeypatch):
        plan = NetworkFaultPlan(seed=4, refuse_rate=0.2, stall_rate=0.1,
                                scripted={"p GET /r": (NET_REFUSE,)})
        assert NetworkFaultPlan.from_dict(plan.to_dict()) == plan
        monkeypatch.setenv(NET_ENV_VAR, plan.to_env())
        assert active_net_plan() == plan

    def test_installed_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv(
            NET_ENV_VAR, NetworkFaultPlan(seed=1).to_env()
        )
        installed = NetworkFaultPlan(seed=2, refuse_rate=1.0,
                                     max_faults_per_op=1)
        install_net_plan(installed)
        assert net_fault_action("p", "GET /r", 1) == NET_REFUSE

    def test_no_plan_means_no_action(self):
        assert net_fault_action("p", "GET /r", 1) is None

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv(NET_ENV_VAR, "{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            active_net_plan()

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            NetworkFaultPlan.from_dict({"nope": 1})


class TestNetworkInjection:
    def test_refuse_and_flap_raise_connection_error(self):
        for action in (NET_REFUSE, NET_FLAP):
            with pytest.raises(InjectedNetworkFault):
                inject_net_fault(action, "p", "GET /r", 1)
        # ...and they are OSErrors, so the client's generic transient
        # retry handles them with no knowledge of the faults module.
        assert issubclass(InjectedNetworkFault, OSError)
        assert issubclass(InjectedNetworkTimeout, OSError)

    def test_stall_sleeps_then_times_out(self):
        install_net_plan(NetworkFaultPlan(stall_rate=1.0, stall_s=0.0))
        with pytest.raises(InjectedNetworkTimeout):
            inject_net_fault(NET_STALL, "p", "GET /r", 1)

    def test_corrupt_is_not_raised(self):
        with pytest.raises(ConfigurationError):
            inject_net_fault(NET_CORRUPT, "p", "GET /r", 1)


class TestCorruptBytes:
    def test_damage_is_deterministic_and_detectable(self):
        payload = b'{"key":"abcdef","result":{"cycles":12}}\n'
        damaged = corrupt_bytes(payload)
        assert damaged == corrupt_bytes(payload)
        assert damaged != payload
        # Truncation strips the framing newline: the validator's first
        # check catches it.
        assert not damaged.endswith(b"\n")

    def test_empty_payload_passthrough(self):
        assert corrupt_bytes(b"") == b""
