"""Tests for deterministic RNG helpers in repro.common.rng."""

import numpy as np
import pytest

from repro.common.rng import (
    DEFAULT_SEED,
    choice_index,
    deterministic_hash,
    make_rng,
    spawn_rng,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(123).integers(0, 1 << 30, size=16)
        b = make_rng(123).integers(0, 1 << 30, size=16)
        assert (a == b).all()

    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=8)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_generator_passed_through(self):
        gen = make_rng(7)
        assert make_rng(gen) is gen


class TestSpawnRng:
    def test_deterministic_per_key_tuple(self):
        a = spawn_rng(5, "workload", 1).integers(0, 1 << 30, size=16)
        b = spawn_rng(5, "workload", 1).integers(0, 1 << 30, size=16)
        assert (a == b).all()

    def test_different_keys_different_streams(self):
        a = spawn_rng(5, "workload", 1).integers(0, 1 << 30, size=16)
        b = spawn_rng(5, "workload", 2).integers(0, 1 << 30, size=16)
        assert not (a == b).all()

    def test_string_keys_stable(self):
        # Regression pin: must not depend on PYTHONHASHSEED.
        a = spawn_rng(0, "alpha").integers(0, 1 << 30, size=4)
        b = spawn_rng(0, "alpha").integers(0, 1 << 30, size=4)
        assert (a == b).all()


class TestChoiceIndex:
    def test_respects_weights(self):
        rng = make_rng(3)
        picks = [choice_index(rng, [0.0, 1.0, 0.0]) for _ in range(20)]
        assert set(picks) == {1}

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            choice_index(make_rng(0), [0.0, 0.0])


class TestDeterministicHash:
    def test_stable_across_calls(self):
        assert deterministic_hash("a", 1) == deterministic_hash("a", 1)

    def test_bits_bound(self):
        assert 0 <= deterministic_hash("x", bits=8) < 256

    def test_distinguishes_key_order(self):
        assert deterministic_hash("a", "b") != deterministic_hash("b", "a")
