"""Tests for repro.common.counters."""

import pytest

from repro.common.counters import (
    Counter,
    Histogram,
    RunningMean,
    StatGroup,
    format_stats,
)


class TestCounter:
    def test_add_and_int(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert int(c) == 5

    def test_negative_add_rejected(self):
        c = Counter("x", value=3)
        with pytest.raises(ValueError, match="monotonic"):
            c.add(-1)
        assert c.value == 3

    def test_reset(self):
        c = Counter("x", value=7)
        c.reset()
        assert c.value == 0


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean("m").mean == 0.0

    def test_weighted_mean(self):
        m = RunningMean("m")
        m.add(10.0)
        m.add(20.0, weight=3)
        assert m.mean == pytest.approx(30.0 / 4)

    def test_reset(self):
        m = RunningMean("m")
        m.add(5.0)
        m.reset()
        assert m.count == 0 and m.mean == 0.0


class TestHistogram:
    def test_mean_matches_recomputation(self):
        h = Histogram("h")
        for key, amount in ((1, 3), (4, 2), (9, 5)):
            h.add(key, amount)
        expected = sum(k * v for k, v in h.items()) / h.total()
        assert h.mean() == pytest.approx(expected)

    def test_cached_totals_survive_reset(self):
        h = Histogram("h")
        h.add(3, 2)
        h.reset()
        assert h.total() == 0
        assert h.mean() == 0.0
        h.add(5)
        assert h.total() == 1
        assert h.mean() == pytest.approx(5.0)

    def test_items_sorted_and_getitem(self):
        h = Histogram("h")
        h.add(9)
        h.add(2)
        h.add(9)
        assert list(h.items()) == [(2, 1), (9, 2)]
        assert h[9] == 2
        assert h[100] == 0


class TestStatGroup:
    def test_members_created_on_first_access(self):
        g = StatGroup("g")
        g.counter("commits").add(2)
        assert g.counter("commits").value == 2

    def test_as_dict_flattening(self):
        g = StatGroup("g")
        g.counter("c").add(3)
        g.mean("m").add(4.0)
        g.histogram("h").add(2, 2)
        g.set_scalar("ipc", 1.5)
        d = g.as_dict()
        assert d["c"] == 3
        assert d["m.mean"] == pytest.approx(4.0)
        assert d["m.count"] == 1
        assert d["h.mean"] == pytest.approx(2.0)
        assert d["h.total"] == 2
        assert d["ipc"] == pytest.approx(1.5)

    def test_scalar_collision_raises(self):
        g = StatGroup("g")
        g.mean("foo").add(1.0)
        g.set_scalar("foo.mean", 99.0)
        with pytest.raises(ValueError, match="collides"):
            g.as_dict()

    def test_member_name_collision_raises(self):
        g = StatGroup("g")
        g.counter("foo.mean").add(1)
        g.mean("foo").add(2.0)
        with pytest.raises(ValueError, match="collide"):
            g.as_dict()

    def test_merge_accumulates_raw_totals(self):
        a, b = StatGroup("a"), StatGroup("b")
        for g, n in ((a, 1), (b, 2)):
            g.counter("c").add(n)
            g.mean("m").add(float(n))
            g.histogram("h").add(n)
            g.set_scalar("ipc", float(n))
        a.merge(b)
        d = a.as_dict()
        assert d["c"] == 3
        assert d["m.mean"] == pytest.approx(1.5)
        assert d["h.total"] == 2
        # Scalars are derived quantities and must not be merged.
        assert d["ipc"] == pytest.approx(1.0)

    def test_reset_clears_everything(self):
        g = StatGroup("g")
        g.counter("c").add(1)
        g.mean("m").add(1.0)
        g.histogram("h").add(1)
        g.set_scalar("s", 2.0)
        g.reset()
        assert g.as_dict() == {"c": 0, "m.mean": 0.0, "m.count": 0,
                               "h.mean": 0.0, "h.total": 0}


class TestFormatStats:
    def test_empty(self):
        assert format_stats({}) == "  (empty)"

    def test_sorted_and_aligned(self):
        text = format_stats({"bbb": 2.0, "a": 1.25})
        lines = text.splitlines()
        assert lines[0].strip().startswith("a")
        assert "1.2500" in lines[0]
        assert lines[1].strip().startswith("bbb")
        assert "2" in lines[1]
