"""Property tests for the unified flush frontier (repro.exec.frontier).

The invariant every layer inherits: whatever order completions arrive in,
whatever fails or is interrupted, the emitted sequence is always a strict
index prefix of the fault-free order.  These tests drive the frontier
through seeded randomized completion orders, permanent failures, and
interrupts, and check the prefix property holds every time.
"""

import random

import pytest

from repro.exec.frontier import FlushFrontier, dedup_ordered


def collecting_frontier(n):
    emitted = []
    frontier = FlushFrontier(n, emit=lambda i, p: emitted.append((i, p)))
    return frontier, emitted


def payload(i):
    return f"payload-{i}"


# -- property: randomized completion orders ---------------------------------

class TestRandomizedOrders:
    @pytest.mark.parametrize("seed", range(25))
    def test_any_completion_order_emits_fault_free_order(self, seed):
        rng = random.Random(seed)
        n = rng.randint(0, 40)
        order = list(range(n))
        rng.shuffle(order)
        frontier, emitted = collecting_frontier(n)
        for index in order:
            frontier.complete(index, payload(index))
            # Prefix property holds after EVERY completion, not just at
            # the end.
            assert emitted == [(i, payload(i)) for i in range(len(emitted))]
        assert frontier.done
        assert emitted == [(i, payload(i)) for i in range(n)]
        assert frontier.n_flushed == n

    @pytest.mark.parametrize("seed", range(25))
    def test_interrupted_run_emits_a_strict_prefix(self, seed):
        rng = random.Random(seed + 1000)
        n = rng.randint(1, 40)
        order = list(range(n))
        rng.shuffle(order)
        cut = rng.randint(0, n)          # completions delivered before the
        frontier, emitted = collecting_frontier(n)   # "interrupt"
        for index in order[:cut]:
            frontier.complete(index, payload(index))
        # Whatever was emitted is exactly the contiguous completed prefix.
        done = set(order[:cut])
        expected = 0
        while expected in done:
            expected += 1
        assert [i for i, _p in emitted] == list(range(expected))
        assert frontier.position == expected
        # Buffered leftovers are the completions past the first hole.
        assert set(frontier.buffered()) == {i for i in done if i > expected}
        dropped = frontier.discard()
        assert dropped == len(done) - expected
        assert frontier.n_discarded == dropped

    @pytest.mark.parametrize("seed", range(25))
    def test_permanent_failures_block_the_frontier(self, seed):
        rng = random.Random(seed + 2000)
        n = rng.randint(1, 40)
        failed = {i for i in range(n) if rng.random() < 0.2}
        order = list(range(n))
        rng.shuffle(order)
        frontier, emitted = collecting_frontier(n)
        for index in order:
            if index in failed:
                frontier.block(index)
            else:
                frontier.complete(index, payload(index))
        barrier = min(failed) if failed else n
        assert [i for i, _p in emitted] == list(range(barrier))
        assert frontier.blocked == frozenset(failed)
        assert frontier.done == (not failed)
        # Everything completed past the first failure was computed but can
        # never be emitted in order: discarded, for the caller to report.
        buffered_past = {i for i in range(barrier + 1, n)
                         if i not in failed}
        assert frontier.discard() == len(buffered_past)

    @pytest.mark.parametrize("seed", range(10))
    def test_duplicate_completions_keep_first_payload(self, seed):
        rng = random.Random(seed + 3000)
        n = rng.randint(1, 20)
        frontier, emitted = collecting_frontier(n)
        order = list(range(n)) * 2
        rng.shuffle(order)
        for index in order:
            frontier.complete(index, payload(index))
            frontier.complete(index, "imposter-" + str(index))
        assert emitted == [(i, payload(i)) for i in range(n)]


# -- directed edge cases ----------------------------------------------------

class TestFrontierEdges:
    def test_empty_frontier_is_born_done(self):
        frontier, emitted = collecting_frontier(0)
        assert frontier.done
        assert emitted == []

    def test_out_of_range_indexes_rejected(self):
        frontier, _ = collecting_frontier(3)
        with pytest.raises(IndexError):
            frontier.complete(3, "x")
        with pytest.raises(IndexError):
            frontier.complete(-1, "x")
        with pytest.raises(IndexError):
            frontier.block(3)
        with pytest.raises(IndexError):
            frontier.advance_to(4)
        with pytest.raises(ValueError):
            FlushFrontier(-1, emit=lambda i, p: None)

    def test_blocking_an_emitted_index_is_an_error(self):
        frontier, _ = collecting_frontier(2)
        frontier.complete(0, "a")
        with pytest.raises(ValueError, match="already emitted"):
            frontier.block(0)

    def test_completing_a_blocked_index_is_a_noop(self):
        frontier, emitted = collecting_frontier(2)
        frontier.block(0)
        assert frontier.complete(0, "a") == 0
        assert emitted == []
        assert not frontier.is_buffered(0)

    def test_advance_to_skips_without_emitting(self):
        frontier, emitted = collecting_frontier(5)
        frontier.complete(3, "d")
        frontier.advance_to(3)
        # 0..2 skipped silently (durable elsewhere); 3 flushes immediately.
        assert emitted == [(3, "d")]
        assert frontier.position == 4
        with pytest.raises(ValueError, match="backwards"):
            frontier.advance_to(2)

    def test_is_complete_covers_emitted_and_buffered(self):
        frontier, _ = collecting_frontier(4)
        frontier.complete(0, "a")   # emitted
        frontier.complete(2, "c")   # buffered behind the hole at 1
        assert frontier.is_complete(0)
        assert frontier.is_complete(2)
        assert not frontier.is_complete(1)
        assert not frontier.is_complete(3)

    def test_drop_reopens_a_buffered_slot(self):
        frontier, emitted = collecting_frontier(2)
        frontier.complete(1, "bad")
        assert frontier.drop(1)
        assert not frontier.drop(1)          # already gone
        frontier.complete(1, "good")
        frontier.complete(0, "a")
        assert emitted == [(0, "a"), (1, "good")]

    def test_emit_exception_leaves_consistent_state(self):
        calls = []

        def emit(index, p):
            if index == 1 and not any(c == "retried" for c in calls):
                calls.append("boom")
                raise RuntimeError("emit failed")
            calls.append((index, p))

        frontier = FlushFrontier(3, emit=emit)
        frontier.complete(0, "a")
        with pytest.raises(RuntimeError):
            frontier.complete(1, "b")
        # Index 1 is still buffered, position did not advance.
        assert frontier.position == 1
        assert frontier.is_buffered(1)
        calls.append("retried")
        # A later completion retries the flush and the run finishes.
        frontier.complete(2, "c")
        assert [c for c in calls if isinstance(c, tuple)] == \
            [(0, "a"), (1, "b"), (2, "c")]
        assert frontier.done


# -- dedup_ordered ----------------------------------------------------------

class TestDedupOrdered:
    def test_first_wins_in_encounter_order(self):
        keyed = dedup_ordered([("a", 1), ("b", 2), ("a", 99), ("c", 3)])
        assert list(keyed.items()) == [("a", 1), ("b", 2), ("c", 3)]

    @pytest.mark.parametrize("seed", range(10))
    def test_every_layer_agrees_on_the_indexing(self, seed):
        rng = random.Random(seed + 4000)
        pairs = [(f"k{rng.randint(0, 10)}", i) for i in range(30)]
        keyed = dedup_ordered(pairs)
        seen = set()
        expected = []
        for key, value in pairs:
            if key not in seen:
                seen.add(key)
                expected.append((key, value))
        assert list(keyed.items()) == expected
