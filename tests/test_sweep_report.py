"""Report aggregation: tables, files, and the CLI round trip."""

import csv
import json
import os

import pytest

from repro.common.errors import StoreError
from repro.sweep.cli import main as cli_main
from repro.sweep.grid import SweepSpec
from repro.energy import ENERGY_COMPONENTS
from repro.sweep.report import (
    build_tables,
    communication_table,
    energy_breakdown_table,
    epi_vs_clusters_table,
    ipc_vs_clusters_table,
    load_rows,
    relative_ipc_table,
    render_markdown,
    rows_from_records,
    write_report,
)
from repro.sweep.runner import run_sweep
from repro.sweep.store import ResultStore


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    spec = SweepSpec(
        name="report-test",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4),
        steerings=("dependence", "round_robin"),
        mixes=("int_heavy",),
        n_instructions=400,
        seeds=(1, 2),
    )
    path = str(tmp_path_factory.mktemp("report") / "store.jsonl")
    store = ResultStore(path)
    run_sweep(spec.expand(), store, workers=1)
    return store


@pytest.fixture(scope="module")
def energy_store(tmp_path_factory):
    spec = SweepSpec(
        name="energy-report-test",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4),
        steerings=("dependence",),
        mixes=("int_heavy",),
        n_instructions=400,
        seeds=(1,),
        base={"energy.enabled": True},
    )
    path = str(tmp_path_factory.mktemp("energy-report") / "store.jsonl")
    store = ResultStore(path)
    run_sweep(spec.expand(), store, workers=1)
    return store


class TestTables:
    def test_load_rows(self, populated_store):
        rows = load_rows(populated_store)
        assert len(rows) == 16
        for row in rows:
            assert row.ipc > 0
            assert row.cycles > 0
            assert 0 <= row.comm_per_instr
            assert row.topology in ("ring", "conv")

    def test_ipc_vs_clusters(self, populated_store):
        table = ipc_vs_clusters_table(load_rows(populated_store))
        # 1 mix x 2 steerings x 2 cluster counts, seeds averaged away
        assert len(table.rows) == 4
        for row in table.rows:
            ring, conv, ratio = row[3], row[4], row[5]
            assert ring > 0 and conv > 0
            assert ratio == pytest.approx(ring / conv)

    def test_conv_beats_ring_under_dependence_steering(self, populated_store):
        # The paper's central trade-off: the ring pays communication latency
        # on every result, so with dependence steering CONV IPC is higher.
        table = ipc_vs_clusters_table(load_rows(populated_store))
        for row in table.rows:
            if row[1] == "dependence":
                assert row[5] < 1.0

    def test_relative_ipc_pivot(self, populated_store):
        table = relative_ipc_table(load_rows(populated_store))
        assert table.columns == ["mix", "steering", "x2", "x4"]
        assert len(table.rows) == 2

    def test_communication_table(self, populated_store):
        table = communication_table(load_rows(populated_store))
        assert len(table.rows) == 4  # 2 steerings x 2 topologies
        for row in table.rows:
            shares = row[4:]
            assert sum(shares) == pytest.approx(1.0)
            # distance 0 never appears: local bypass is not a communication
            assert shares[0] == 0.0

    def test_seed_averaging(self, populated_store):
        rows = load_rows(populated_store)
        per_seed = {
            row.seed: row.ipc
            for row in rows
            if (row.topology, row.n_clusters, row.steering)
            == ("ring", 2, "dependence")
        }
        assert len(per_seed) == 2
        table = ipc_vs_clusters_table(rows)
        ring2 = next(r for r in table.rows
                     if r[1] == "dependence" and r[2] == 2)
        assert ring2[3] == pytest.approx(
            sum(per_seed.values()) / len(per_seed))


class TestEnergyTables:
    def test_rows_expose_energy(self, energy_store):
        rows = load_rows(energy_store)
        assert len(rows) == 4
        for row in rows:
            assert row.energy is not None
            assert row.energy_total > 0
            assert row.epi > 0
            assert row.energy_component("wakeup") > 0
            assert row.energy_component("nonexistent") == 0

    def test_rows_without_energy_are_none(self, populated_store):
        for row in load_rows(populated_store):
            assert row.energy is None
            assert row.energy_total == 0
            assert row.epi == 0.0

    def test_epi_vs_clusters(self, energy_store):
        table = epi_vs_clusters_table(load_rows(energy_store))
        assert len(table.rows) == 2  # 1 mix x 1 steering x 2 cluster counts
        for row in table.rows:
            ring, conv, ratio = row[3], row[4], row[5]
            assert ring > 0 and conv > 0
            assert ratio == pytest.approx(ring / conv)

    def test_energy_breakdown_shares_sum_to_one(self, energy_store):
        table = energy_breakdown_table(load_rows(energy_store))
        assert len(table.rows) == 2  # (dependence x ring, dependence x conv)
        n_fixed = 3  # steering, topology, epi
        for row in table.rows:
            shares = row[n_fixed:]
            assert len(shares) == len(ENERGY_COMPONENTS)
            assert sum(shares) == pytest.approx(1.0)
            assert row[2] > 0  # epi

    def test_build_tables_appends_energy_tables_only_when_present(
        self, populated_store, energy_store
    ):
        plain_slugs = [t.slug for t in build_tables(load_rows(populated_store))]
        assert "epi_vs_clusters" not in plain_slugs
        energy_slugs = [t.slug for t in build_tables(load_rows(energy_store))]
        assert energy_slugs[-2:] == ["epi_vs_clusters", "energy_breakdown"]

    def test_mixed_store_energy_tables_use_energy_rows_only(
        self, energy_store, populated_store
    ):
        rows = load_rows(populated_store) + load_rows(energy_store)
        table = epi_vs_clusters_table(rows)
        # Only the energy rows contribute; the plain rows must not drag the
        # group means toward zero.
        full = epi_vs_clusters_table(load_rows(energy_store))
        assert table.rows == full.rows

    @pytest.mark.parametrize("missing", ["total", "wakeup"])
    def test_energy_breakdown_missing_key_raises_store_error(
        self, energy_store, tmp_path, missing
    ):
        # A breakdown missing any component must fail at load (the
        # corrupt-record contract), not load silently and skew the share
        # tables (or crash table building with a raw KeyError).
        path = str(tmp_path / "broken.jsonl")
        store = ResultStore(path)
        record = json.loads(json.dumps(next(energy_store.records())))
        del record["result"]["energy"][missing]
        store.append(record)
        with pytest.raises(StoreError, match="not a sweep result"):
            load_rows(store)


class TestRendering:
    def test_markdown_contains_all_tables(self, populated_store):
        text = render_markdown(build_tables(load_rows(populated_store)),
                               store=populated_store)
        assert "IPC vs cluster count" in text
        assert "RING/CONV relative IPC" in text
        assert "Communication by steering policy" in text

    def test_write_report_files(self, populated_store, tmp_path):
        out = str(tmp_path / "out")
        paths = write_report(populated_store, out)
        assert set(paths) == {
            "report.md", "ipc_vs_clusters.csv",
            "ring_vs_conv.csv", "comm_by_steering.csv",
        }
        for path in paths.values():
            assert os.path.getsize(path) > 0
        with open(paths["ipc_vs_clusters.csv"], newline="") as fh:
            parsed = list(csv.reader(fh))
        assert parsed[0][:3] == ["mix", "steering", "n_clusters"]
        assert len(parsed) == 5  # header + 4 aggregated rows

    def test_malformed_record_raises_store_error(self, tmp_path):
        store = ResultStore(str(tmp_path / "bad.jsonl"))
        store.append({"key": "k1", "not_a_sweep_record": True})
        with pytest.raises(StoreError, match="not a sweep result"):
            load_rows(store)


class TestCli:
    def test_run_then_report(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        store_path = str(tmp_path / "store.jsonl")
        out_dir = str(tmp_path / "report")
        spec = {
            "name": "cli-test",
            "topologies": ["ring", "conv"],
            "cluster_counts": [2],
            "steerings": ["dependence"],
            "mixes": ["int_heavy"],
            "n_instructions": 200,
            "seeds": [1],
        }
        with open(spec_path, "w") as fh:
            json.dump(spec, fh)

        assert cli_main(["run", "--spec", spec_path,
                         "--store", store_path, "--workers", "1"]) == 0
        first = capsys.readouterr().out
        assert "2 computed" in first

        assert cli_main(["run", "--spec", spec_path,
                         "--store", store_path, "--workers", "1"]) == 0
        second = capsys.readouterr().out
        assert "2 cached, 0 computed" in second

        assert cli_main(["report", "--store", store_path,
                         "--out", out_dir]) == 0
        report_out = capsys.readouterr().out
        assert "RING/CONV relative IPC" in report_out
        assert os.path.exists(os.path.join(out_dir, "report.md"))

        assert cli_main(["list", "--store", store_path]) == 0
        listing = capsys.readouterr().out
        assert "2 record(s)" in listing
        assert "int_heavy" in listing

    def test_unknown_spec_key_fails_cleanly(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as fh:
            json.dump({"name": "x", "n_points": 5}, fh)
        assert cli_main(["run", "--spec", spec_path,
                         "--store", str(tmp_path / "s.jsonl")]) == 2
        assert "unknown key" in capsys.readouterr().err

    def test_report_empty_store_fails(self, tmp_path, capsys):
        assert cli_main(["report", "--store",
                         str(tmp_path / "missing.jsonl")]) == 1
        assert "empty" in capsys.readouterr().err

    def test_list_mixes(self, capsys):
        assert cli_main(["list", "--mixes"]) == 0
        out = capsys.readouterr().out
        assert "int_heavy" in out and "branchy" in out

    def test_run_requires_exactly_one_spec_source(self, capsys):
        assert cli_main(["run"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestInMemoryRendering:
    """rows_from_records / to_csv_text: the service's in-memory paths must
    be pinned to the CLI's file-based ones."""

    def test_rows_from_records_matches_load_rows(self, populated_store):
        via_store = load_rows(populated_store)
        via_records = rows_from_records(populated_store.records())
        assert via_records == via_store

    def test_rows_from_records_subset(self, populated_store):
        keys = populated_store.keys()[:3]
        rows = rows_from_records(populated_store.get(k) for k in keys)
        assert len(rows) == 3
        assert rows == load_rows(populated_store)[:3]

    def test_rows_from_records_error_names_where(self):
        with pytest.raises(StoreError) as err:
            rows_from_records([{"key": "bad"}], where="<job deadbeef>")
        assert "<job deadbeef>" in str(err.value)
        assert "'bad'" in str(err.value)

    def test_to_csv_text_identical_to_write_csv_file(
        self, populated_store, tmp_path
    ):
        for table in build_tables(load_rows(populated_store)):
            path = str(tmp_path / f"{table.slug}.csv")
            table.write_csv(path)
            with open(path, "r", newline="", encoding="utf-8") as fh:
                assert fh.read() == table.to_csv_text()

    def test_render_markdown_meta_lines(self, populated_store):
        tables = build_tables(load_rows(populated_store))
        text = render_markdown(tables, meta={"job": "abc", "state": "done"})
        lines = text.splitlines()
        assert lines[0] == "# Sweep report"
        assert "- job: abc" in lines
        assert "- state: done" in lines
