"""Asyncio HTTP/1.1 front end for the sweep subsystem.

Stdlib only: :func:`asyncio.start_server` streams, a hand-rolled (and
deliberately small) HTTP/1.1 request parser, and a regex routing table.
Every connection carries one request and is closed after the response
(``Connection: close``), except ``GET /jobs/<id>/events`` which stays open
streaming Server-Sent Events until the job's run ends or the client
disconnects.

Endpoints::

    GET  /                      service + endpoint discovery
    GET  /healthz               liveness probe
    POST /jobs                  submit a SweepSpec (schema-validated)
    GET  /jobs                  list jobs
    GET  /jobs/<id>             job status
    POST /jobs/<id>/cancel      cancel a queued/running job
    GET  /jobs/<id>/events      SSE: queued/running/point/table/terminal
    GET  /jobs/<id>/report      incremental tables (?format=md|csv&table=)
    GET  /results/<key>         one store record, canonical JSON bytes
    GET  /registry/steering     the steering-policy plugin registry
    GET  /registry/mixes        the workload-mix registry

Errors are structured JSON — ``{"error": {"code", "message"}}`` — with
conventional status codes (400 malformed/invalid, 404 unknown, 405 wrong
method, 413 oversized body, 422 never: spec problems are 400s, 503 while
draining).  Graceful shutdown stops accepting connections, lets queued and
in-flight jobs drain through the job manager, and only then returns.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from functools import partial
from typing import Any, Awaitable, Callable, Dict, List, Optional, Pattern, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import ConfigurationError, ReproError
from repro.common.jsonutil import canonical_json
from repro.engine.pipeline import resolve_kernel_variant
from repro.service import schemas
from repro.service.events import format_sse, is_terminal
from repro.service.jobs import (
    Job,
    JobManager,
    ServiceUnavailable,
    UnknownJob,
)
from repro.steering import STEERING_REGISTRY
from repro.sweep.report import build_tables, render_markdown, rows_from_records
from repro.workloads import MIX_REGISTRY

#: Request bodies above this are rejected with 413 — a sweep spec is a few
#: KB; anything megabyte-sized is a mistake or an attack.
MAX_BODY_BYTES = 1 << 20

#: Request line + headers must fit in this many bytes (431 otherwise).
MAX_HEAD_BYTES = 32 * 1024

#: Seconds a connection may take to deliver its request head + body.
REQUEST_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    409: "Conflict", 413: "Payload Too Large",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}


class HttpError(ReproError):
    """A request problem with a definite status code and error code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: Dict[str, List[str]],
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> Any:
        """The body as JSON; empty body reads as ``{}``."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, "bad_json",
                            f"request body is not valid JSON: {exc}") from exc


Handler = Callable[..., Awaitable[None]]


class SweepService:
    """The HTTP application: routing table + job manager + store reads."""

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        sweep_workers: Optional[int] = None,
        kernel_variant: Optional[str] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(
            store_path, sweep_workers=sweep_workers,
            kernel_variant=kernel_variant,
        )
        self.say = log if log is not None else (lambda _msg: None)
        self._server: Optional[asyncio.AbstractServer] = None
        # Created in start(): asyncio primitives must be born on the loop
        # they are awaited on for 3.9 compatibility.
        self._stopped: Optional[asyncio.Event] = None
        self._shutting_down = False
        self._routes: List[Tuple[str, Pattern[str], Handler]] = [
            ("GET", re.compile(r"^/$"), self._r_index),
            ("GET", re.compile(r"^/healthz$"), self._r_health),
            ("POST", re.compile(r"^/jobs$"), self._r_submit),
            ("GET", re.compile(r"^/jobs$"), self._r_jobs),
            ("GET", re.compile(r"^/jobs/(?P<job_id>[0-9a-f]+)$"), self._r_job),
            ("POST", re.compile(r"^/jobs/(?P<job_id>[0-9a-f]+)/cancel$"),
             self._r_cancel),
            ("GET", re.compile(r"^/jobs/(?P<job_id>[0-9a-f]+)/events$"),
             self._r_events),
            ("GET", re.compile(r"^/jobs/(?P<job_id>[0-9a-f]+)/report$"),
             self._r_report),
            ("GET", re.compile(r"^/results/(?P<key>[0-9a-f]+)$"),
             self._r_result),
            ("GET", re.compile(r"^/registry/steering$"), self._r_steering),
            ("GET", re.compile(r"^/registry/mixes$"), self._r_mixes),
        ]

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self.manager.start(loop)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.say(f"service: listening on http://{self.host}:{self.port} "
                 f"(store {self.manager.store.path})")

    async def serve_forever(self) -> None:
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain (or cancel) jobs, release serve_forever."""
        if self._shutting_down:
            return
        self._shutting_down = True
        self.say("service: shutting down "
                 + ("(draining jobs)" if drain else "(cancelling jobs)"))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, partial(self.manager.shutdown, drain))
        if self._stopped is not None:
            self._stopped.set()
        self.say("service: stopped")

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), REQUEST_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                await self._send_error(writer, HttpError(
                    408, "timeout", "request not received in time"))
                return
            except HttpError as exc:
                await self._send_error(writer, exc)
                return
            if request is None:  # connection closed before a request
                return
            await self._dispatch(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # pragma: no cover - last-ditch guard
            try:
                await self._send_error(writer, HttpError(
                    500, "internal", f"{type(exc).__name__}: {exc}"))
            except Exception:
                pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Request]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean early disconnect
            raise HttpError(400, "bad_request",
                            "incomplete HTTP request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise HttpError(431, "headers_too_large",
                            f"request head exceeds {MAX_HEAD_BYTES} bytes"
                            ) from exc
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except ValueError as exc:
            raise HttpError(400, "bad_request",
                            "malformed HTTP request line") from exc
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise HttpError(501, "not_implemented",
                            "chunked request bodies are not supported")
        body = b""
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise HttpError(400, "bad_request",
                                f"invalid Content-Length {raw_length!r}"
                                ) from None
            if length > MAX_BODY_BYTES:
                # Drain what the client already pushed so its blocking
                # send() cannot deadlock against our unread buffer, then
                # refuse.  The drain is capped: a Content-Length lie
                # cannot hold the connection hostage.
                await self._discard(reader, length)
                raise HttpError(
                    413, "body_too_large",
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                )
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    raise HttpError(400, "bad_request",
                                    "request body shorter than "
                                    "Content-Length") from exc
        parts = urlsplit(target)
        return Request(method.upper(), parts.path,
                       parse_qs(parts.query), headers, body)

    @staticmethod
    async def _discard(reader: asyncio.StreamReader, length: int,
                       cap: int = 8 * MAX_BODY_BYTES) -> None:
        remaining = min(length, cap)
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                return
            remaining -= len(chunk)

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        matched_path = False
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            matched_path = True
            if method != request.method:
                continue
            try:
                await handler(request, writer, **match.groupdict())
            except HttpError as exc:
                await self._send_error(writer, exc)
            except ServiceUnavailable as exc:
                await self._send_error(writer, HttpError(
                    503, "draining", str(exc)))
            except UnknownJob as exc:
                await self._send_error(writer, HttpError(
                    404, "unknown_job", str(exc)))
            except schemas.SchemaError as exc:
                await self._send_error(writer, HttpError(
                    400, "invalid_request", str(exc)))
            except ConfigurationError as exc:
                await self._send_error(writer, HttpError(
                    400, "invalid_spec", str(exc)))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except ReproError as exc:
                await self._send_error(writer, HttpError(
                    500, "internal", str(exc)))
            return
        if matched_path:
            await self._send_error(writer, HttpError(
                405, "method_not_allowed",
                f"{request.method} is not supported on {request.path}"))
        else:
            await self._send_error(writer, HttpError(
                404, "not_found", f"no such endpoint: {request.path}"))

    # -- response helpers --------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    payload: bytes, content_type: str) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _send_json(self, writer: asyncio.StreamWriter,
                         status: int, obj: Any) -> None:
        payload = (json.dumps(obj, sort_keys=True, indent=2) + "\n").encode()
        await self._send(writer, status, payload, "application/json")

    async def _send_error(self, writer: asyncio.StreamWriter,
                          exc: HttpError) -> None:
        await self._send_json(writer, exc.status, {
            "error": {"code": exc.code, "message": str(exc)},
        })

    # -- handlers ----------------------------------------------------------
    async def _r_index(self, request: Request,
                       writer: asyncio.StreamWriter) -> None:
        await self._send_json(writer, 200, {
            "service": "repro.sweep",
            "description": "sweep-as-a-service job API over the "
                           "content-addressed result store",
            "kernel_variant": resolve_kernel_variant(
                self.manager.kernel_variant),
            "store": self.manager.store.path,
            "endpoints": {
                "GET /healthz": "liveness probe",
                "POST /jobs": "submit a SweepSpec job "
                              "(body: {spec, workers?, kernel_variant?, "
                              "energy?, retries?, timeout_s?, backoff_s?})",
                "GET /jobs": "list jobs",
                "GET /jobs/<id>": "job status",
                "POST /jobs/<id>/cancel": "cancel a queued/running job",
                "GET /jobs/<id>/events": "Server-Sent-Events progress "
                                         "stream",
                "GET /jobs/<id>/report": "incremental report "
                                         "(?format=md|csv&table=<slug>)",
                "GET /results/<key>": "one result record, canonical JSON",
                "GET /registry/steering": "registered steering policies",
                "GET /registry/mixes": "registered workload mixes",
            },
        })

    async def _r_health(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        await self._send_json(writer, 200, {
            "status": "ok",
            "jobs": len(self.manager.jobs),
            "records": len(self.manager.store),
            "draining": self._shutting_down,
        })

    async def _r_submit(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        body = request.json()
        schemas.validate(body, schemas.SUBMIT_SCHEMA)
        job, disposition = self.manager.submit(body)
        status = 201 if disposition == "created" else 200
        self.say(f"service: job {job.job_id} {disposition} "
                 f"({job.spec.name!r}, {job.n_points} points)")
        await self._send_json(writer, status, {
            "job_id": job.job_id,
            "disposition": disposition,
            "job": job.status(),
        })

    async def _r_jobs(self, request: Request,
                      writer: asyncio.StreamWriter) -> None:
        await self._send_json(writer, 200, {
            "jobs": [job.status() for job in self.manager.list_jobs()],
        })

    async def _r_job(self, request: Request, writer: asyncio.StreamWriter,
                     job_id: str) -> None:
        job = self.manager.get(job_id)
        await self._send_json(writer, 200, job.status())

    async def _r_cancel(self, request: Request,
                        writer: asyncio.StreamWriter, job_id: str) -> None:
        body = request.json()
        schemas.validate(body, schemas.CANCEL_SCHEMA)
        outcome = self.manager.cancel(job_id)
        status = 200 if outcome["cancelled"] else 409
        await self._send_json(writer, status, outcome)

    async def _r_events(self, request: Request,
                        writer: asyncio.StreamWriter, job_id: str) -> None:
        job = self.manager.get(job_id)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        stream = job.broadcaster.subscribe()
        try:
            async for event in stream:
                writer.write(format_sse(event))
                await writer.drain()
                if is_terminal(event[1]):
                    break
        finally:
            # Deterministic unsubscription: run the generator's cleanup now
            # instead of whenever the GC finds it.
            await stream.aclose()

    async def _r_report(self, request: Request,
                        writer: asyncio.StreamWriter, job_id: str) -> None:
        job = self.manager.get(job_id)
        fmt = request.param("format", "md")
        if fmt not in ("md", "csv"):
            raise HttpError(400, "invalid_request",
                            f"format must be 'md' or 'csv', got {fmt!r}")
        records = self.manager.job_records(job)
        rows = rows_from_records(records, where=f"<job {job_id}>")
        tables = build_tables(rows)
        if fmt == "csv":
            slug = request.param("table")
            if slug is None:
                slugs = sorted(table.slug for table in tables)
                raise HttpError(400, "invalid_request",
                                f"format=csv needs &table=<slug>; "
                                f"available: {slugs}")
            for table in tables:
                if table.slug == slug:
                    await self._send(writer, 200,
                                     table.to_csv_text().encode("utf-8"),
                                     "text/csv; charset=utf-8")
                    return
            raise HttpError(404, "unknown_table",
                            f"no table {slug!r}; available: "
                            f"{sorted(t.slug for t in tables)}")
        markdown = render_markdown(tables, meta={
            "job": job_id,
            "state": job.state,
            "records": f"{len(records)}/{job.n_points or len(records)}",
        })
        await self._send(writer, 200, markdown.encode("utf-8"),
                         "text/markdown; charset=utf-8")

    async def _r_result(self, request: Request,
                        writer: asyncio.StreamWriter, key: str) -> None:
        record = self.manager.store.read_record(key)
        if record is None:
            raise HttpError(404, "unknown_result",
                            f"no result with key {key!r}")
        # Byte-for-byte the store line: canonical JSON plus the trailing
        # newline, so clients can reconstruct (and cmp) store files from
        # the API alone.
        payload = (canonical_json(record) + "\n").encode("utf-8")
        await self._send(writer, 200, payload, "application/json")

    async def _r_steering(self, request: Request,
                          writer: asyncio.StreamWriter) -> None:
        policies = []
        for name in sorted(STEERING_REGISTRY):
            policy = STEERING_REGISTRY[name]
            doc = (policy.__class__.__doc__ or "").strip().splitlines()
            policies.append({
                "name": name,
                "class": type(policy).__name__,
                "needs_retire": bool(policy.needs_retire),
                "description": doc[0] if doc else "",
            })
        await self._send_json(writer, 200, {"steering_policies": policies})

    async def _r_mixes(self, request: Request,
                       writer: asyncio.StreamWriter) -> None:
        mixes = []
        for name in sorted(MIX_REGISTRY):
            mix = MIX_REGISTRY[name]
            mixes.append({
                "name": name,
                "class_weights": {
                    klass.name: weight
                    for klass, weight in sorted(
                        mix.class_weights.items(), key=lambda kv: int(kv[0])
                    )
                },
                "dep_prob": mix.dep_prob,
                "second_src_prob": mix.second_src_prob,
                "dep_distance_mean": mix.dep_distance_mean,
                "mispredict_rate": mix.mispredict_rate,
                "l1_miss_rate": mix.l1_miss_rate,
                "l2_miss_rate": mix.l2_miss_rate,
                "n_arch_regs": mix.n_arch_regs,
            })
        await self._send_json(writer, 200, {"mixes": mixes})


class ServiceThread:
    """Run a :class:`SweepService` on a background thread (tests, CI,
    embedders).  ``start()`` blocks until the port is bound; ``stop()``
    performs the graceful (or cancelling) shutdown and joins."""

    def __init__(self, store_path: str, host: str = "127.0.0.1",
                 port: int = 0, **kwargs: Any) -> None:
        self._kwargs = dict(kwargs, store_path=store_path,
                            host=host, port=port)
        self.service: Optional[SweepService] = None
        self.host = host
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="sweep-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced by start
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.service = SweepService(**self._kwargs)
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.service.port
        self._ready.set()
        await self.service.serve_forever()

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if self._thread is None or self._loop is None or self.service is None:
            return
        if self._thread.is_alive():
            service = self.service

            def _begin_shutdown() -> None:
                asyncio.ensure_future(service.shutdown(drain))

            try:
                self._loop.call_soon_threadsafe(_begin_shutdown)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - drain wedged
            raise RuntimeError("service thread did not stop in time")
        self._thread = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"


__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "Request",
    "ServiceThread",
    "SweepService",
]
