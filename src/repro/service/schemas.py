"""Minimal declarative JSON request-schema validation.

The service validates every request body against a schema *before* any
handler logic runs, so malformed input is rejected with a structured 400
naming the exact path that failed — never a traceback from deep inside the
sweep subsystem.  The dialect is a small, stdlib-only subset of JSON
Schema (``type``, ``required``, ``properties``, ``additionalProperties``,
``enum``, ``minimum`` / ``maximum``, ``items``) — enough for an HTTP API
surface without pulling in a dependency the container may not have.

Deep domain validation stays where it belongs: a body that passes
:data:`SUBMIT_SCHEMA` still has its ``spec`` object vetted by
:meth:`repro.sweep.grid.SweepSpec.from_dict`, which knows about unknown
steerings, empty axes, and override-path rules.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.common.errors import ReproError

#: JSON-name -> python type(s) for the ``type`` keyword.  ``bool`` is an
#: ``int`` subclass in python, so integer/number checks must exclude it
#: explicitly — ``true`` is not a valid worker count.
_TYPES: Dict[str, Any] = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ReproError):
    """A request body does not match its schema.

    ``path`` is a JSON-pointer-ish location (``body.spec.seeds[2]``) so
    the client's error message names exactly what to fix.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = path


def _type_name(value: Any) -> str:
    for name, types in _TYPES.items():
        if name == "integer" and isinstance(value, bool):
            continue
        if name == "number" and isinstance(value, bool):
            continue
        if isinstance(value, types):
            return name
    return type(value).__name__  # pragma: no cover - exotic payloads


def validate(value: Any, schema: Mapping[str, Any], path: str = "body") -> None:
    """Check ``value`` against ``schema``; raise :class:`SchemaError`.

    Returns ``None`` on success — validation never mutates the value.
    """
    expected = schema.get("type")
    if expected is not None:
        py_types = _TYPES[expected]
        ok = isinstance(value, py_types)
        if expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            raise SchemaError(
                path, f"expected {expected}, got {_type_name(value)}"
            )
    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(
            path, f"must be one of {sorted(map(str, schema['enum']))}, "
                  f"got {value!r}"
        )
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            raise SchemaError(path, f"must be >= {schema['minimum']}, got {value}")
        if "maximum" in schema and value > schema["maximum"]:
            raise SchemaError(path, f"must be <= {schema['maximum']}, got {value}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                raise SchemaError(path, f"missing required key {name!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for name, item in value.items():
            child = f"{path}.{name}"
            if name in properties:
                validate(item, properties[name], child)
            elif extra is False:
                raise SchemaError(
                    child,
                    f"unknown key (valid: {sorted(properties)})",
                )
            elif isinstance(extra, Mapping):
                validate(item, extra, child)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{index}]")


#: ``POST /jobs`` body.  ``spec`` is a :class:`SweepSpec` dict (deep
#: validation by ``SweepSpec.from_dict``); the remaining knobs mirror the
#: CLI's execution flags — none of them can change result bytes, only
#: wall-clock, which is what keeps job dedup sound on the spec alone.
SUBMIT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["spec"],
    "additionalProperties": False,
    "properties": {
        "spec": {"type": "object"},
        "workers": {"type": "integer", "minimum": 1, "maximum": 64},
        "kernel_variant": {
            "type": "string",
            "enum": ["generic", "specialized"],
        },
        "energy": {"type": "boolean"},
        "retries": {"type": "integer", "minimum": 0, "maximum": 16},
        "timeout_s": {"type": "number", "minimum": 0.001},
        "backoff_s": {"type": "number", "minimum": 0},
        # Shard execution (the distributed fabric's unit of dispatch):
        # run only the half-open slice [start, stop) of the spec's deduped
        # expansion-order point list.  Unlike the knobs above, a shard
        # *does* change what the job computes, so it participates in the
        # job digest — shard jobs never dedupe against whole-spec jobs.
        "shard": {
            "type": "object",
            "required": ["start", "stop"],
            "additionalProperties": False,
            "properties": {
                "start": {"type": "integer", "minimum": 0},
                "stop": {"type": "integer", "minimum": 1},
            },
        },
    },
}

#: ``POST /jobs/<id>/cancel`` takes an empty (or absent) object body.
CANCEL_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "additionalProperties": False,
    "properties": {},
}

__all__ = ["CANCEL_SCHEMA", "SUBMIT_SCHEMA", "SchemaError", "validate"]
