"""Per-job event fan-out for Server-Sent-Events streaming.

Each job owns one :class:`EventBroadcaster`.  The job-runner *thread*
publishes events through :meth:`EventBroadcaster.publish` (which hops onto
the event loop via ``call_soon_threadsafe``); any number of SSE handler
coroutines subscribe concurrently, each getting its own unbounded
:class:`asyncio.Queue` so one slow client can never stall another — or the
publisher.

Every event is kept in an in-order history and assigned a monotonically
increasing id, so a late subscriber (a client that connects after the job
finished, or reconnects mid-run) replays the full story before going
live.  The history is bounded by :data:`MAX_EVENT_HISTORY`; when a run
overflows it, the oldest events are dropped and replay starts with a
``truncated`` marker event naming how many were lost — bounded memory,
never a silent gap.

A *run* of events ends with exactly one terminal event (``done``,
``failed`` or ``cancelled``), after which :meth:`close` releases all
subscribers.  Re-submitting a finished job starts a fresh run:
:meth:`reset` clears the history (ids keep increasing across runs, so an
SSE client's ``Last-Event-ID`` bookkeeping stays monotonic).
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any, AsyncIterator, Deque, Dict, List, Optional, Tuple

#: Events retained per run for late-subscriber replay.  A sweep emits a
#: handful of events per point, so this covers grids of thousands of
#: points; beyond it, replay is truncated (and says so), never wrong.
MAX_EVENT_HISTORY = 65536

#: Terminal event names: one of these ends every run's stream.
TERMINAL_EVENTS = ("done", "failed", "cancelled")

#: An event as it travels through queues: ``(id, name, data)``.
Event = Tuple[int, str, Dict[str, Any]]


def format_sse(event: Event) -> bytes:
    """One event in SSE wire format (``id:`` / ``event:`` / ``data:``).

    Data is a single JSON line, so the multi-line ``data:`` continuation
    rules never come into play and any spec-compliant client parses it.
    """
    event_id, name, data = event
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"id: {event_id}\nevent: {name}\ndata: {payload}\n\n".encode("utf-8")


class EventBroadcaster:
    """One job's ordered, replayable event stream.

    Thread contract: :meth:`publish`, :meth:`close` and :meth:`reset` may
    be called from any thread; subscription and delivery happen on the
    event loop passed to the constructor.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._history: Deque[Event] = deque()
        self._dropped = 0          # events evicted from history this run
        self._next_id = 1
        self._subscribers: List[asyncio.Queue] = []
        self._closed = False

    # -- publishing (any thread) ------------------------------------------
    def publish(self, name: str, data: Dict[str, Any]) -> None:
        """Append an event and wake every subscriber (thread-safe)."""
        self._loop.call_soon_threadsafe(self._publish_on_loop, name, data)

    def close(self) -> None:
        """End the current run's stream; subscribers finish after replay."""
        self._loop.call_soon_threadsafe(self._close_on_loop)

    def reset(self) -> None:
        """Start a fresh run: clear history, reopen the stream."""
        self._loop.call_soon_threadsafe(self._reset_on_loop)

    # -- loop-side internals ----------------------------------------------
    def _publish_on_loop(self, name: str, data: Dict[str, Any]) -> None:
        if self._closed:
            # A straggler publish after the terminal event (e.g. a log
            # line racing the close) would violate the one-terminal-event
            # contract; drop it.
            return
        event: Event = (self._next_id, name, dict(data))
        self._next_id += 1
        self._history.append(event)
        if len(self._history) > MAX_EVENT_HISTORY:
            self._history.popleft()
            self._dropped += 1
        for queue in self._subscribers:
            queue.put_nowait(event)

    def _close_on_loop(self) -> None:
        if self._closed:
            return
        self._closed = True
        for queue in self._subscribers:
            queue.put_nowait(None)  # end-of-stream sentinel

    def _reset_on_loop(self) -> None:
        # Live subscribers of the previous run were released by close();
        # any still attached (close never called) get the sentinel now.
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers = []
        self._history.clear()
        self._dropped = 0
        self._closed = False

    # -- subscription (event loop only) -----------------------------------
    async def subscribe(self) -> AsyncIterator[Event]:
        """Yield the run's events: full history replay, then live.

        The iterator ends when the run closes (terminal event published)
        or the subscriber is released by a :meth:`reset`.  Cancellation
        (client disconnect) detaches the queue cleanly.
        """
        queue: asyncio.Queue = asyncio.Queue()
        replay = list(self._history)
        dropped = self._dropped
        closed = self._closed
        if not closed:
            self._subscribers.append(queue)
        try:
            if dropped:
                yield (0, "truncated", {"dropped_events": dropped})
            for event in replay:
                yield event
            if closed:
                return
            while True:
                event: Optional[Event] = await queue.get()
                if event is None:
                    return
                yield event
        finally:
            if queue in self._subscribers:
                self._subscribers.remove(queue)

    # -- introspection -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def history(self) -> List[Event]:
        """Snapshot of the retained events (tests and debugging)."""
        return list(self._history)


def is_terminal(name: str) -> bool:
    return name in TERMINAL_EVENTS


__all__ = [
    "Event",
    "EventBroadcaster",
    "MAX_EVENT_HISTORY",
    "TERMINAL_EVENTS",
    "format_sse",
    "is_terminal",
]
