"""Sweep-as-a-service: an asyncio HTTP job API over :mod:`repro.sweep`.

The batch CLI's subsystems were built content-addressed and append-only so
that a long-running, multi-tenant front end could sit on top without
changing a byte of what gets computed — this package is that front end:

* :mod:`repro.service.server` — stdlib asyncio HTTP/1.1 server:
  routing, request-schema validation, structured errors, SSE streaming,
  graceful drain on shutdown (:class:`SweepService`, :class:`ServiceThread`);
* :mod:`repro.service.jobs` — :class:`JobManager`: spec-digest-deduped
  job submissions executed serially through the fault-tolerant
  :func:`~repro.sweep.runner.run_sweep`, with cancel (interrupt-path) and
  resume (cache-hit resubmission) semantics;
* :mod:`repro.service.events` — per-job replayable event broadcast
  feeding any number of concurrent Server-Sent-Events clients;
* :mod:`repro.service.schemas` — minimal JSON request-schema validation;
* :mod:`repro.service.client` — blocking :class:`ServiceClient` for
  tests, CI, and scripts;
* ``python -m repro.service`` — ``serve`` and ``submit`` commands.

The correctness bar is inherited, not new: a sweep submitted over HTTP
produces a result store byte-identical to the same spec run via
``python -m repro.sweep run``, and resubmitting a completed spec computes
nothing (100% cache hits) — CI cmp-checks both.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.events import EventBroadcaster, format_sse
from repro.service.jobs import Job, JobManager, ServiceUnavailable, UnknownJob
from repro.service.schemas import SUBMIT_SCHEMA, SchemaError, validate
from repro.service.server import (
    HttpError,
    MAX_BODY_BYTES,
    ServiceThread,
    SweepService,
)

__all__ = [
    "EventBroadcaster",
    "HttpError",
    "Job",
    "JobManager",
    "MAX_BODY_BYTES",
    "SUBMIT_SCHEMA",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "ServiceUnavailable",
    "SweepService",
    "UnknownJob",
    "format_sse",
    "validate",
]
