"""``python -m repro.service`` — serve the sweep job API, or talk to one.

Subcommands::

    serve    run the HTTP service until SIGINT/SIGTERM; shutdown drains
             queued and in-flight jobs before exiting
    submit   submit a spec (JSON file, --smoke, or --paper) to a running
             service and follow its SSE stream to completion

``submit`` exits 0 when the job completes, 1 when it fails, 3 when it was
cancelled server-side — scriptable enough for the CI smoke job, which
drives the whole service lifecycle through this command and the blocking
:class:`~repro.service.client.ServiceClient` underneath it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.service.client import ServiceClient
from repro.service.server import SweepService
from repro.sweep.cli import DEFAULT_STORE
from repro.sweep.grid import paper_spec, smoke_spec

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


async def _serve_async(args: argparse.Namespace) -> int:
    service = SweepService(
        store_path=args.store,
        host=args.host,
        port=args.port,
        sweep_workers=args.workers,
        kernel_variant=args.kernel_variant,
        log=print,
    )
    await service.start()
    loop = asyncio.get_running_loop()

    def _on_signal() -> None:
        # Second signal cancels instead of draining: the interrupt path
        # still flushes each job's frontier, so nothing finished is lost.
        drain = not service._shutting_down
        asyncio.ensure_future(service.shutdown(drain=drain))

    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, _on_signal)
    await service.serve_forever()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    return asyncio.run(_serve_async(args))


def _load_spec_dict(args: argparse.Namespace) -> dict:
    chosen = [bool(args.spec), args.smoke, args.paper]
    if sum(chosen) != 1:
        raise ReproError("choose exactly one of --spec FILE, --smoke, --paper")
    if args.smoke:
        return smoke_spec().to_dict()
    if args.paper:
        return paper_spec().to_dict()
    try:
        with open(args.spec, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read sweep spec {args.spec!r}: {exc}") from exc
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"sweep spec {args.spec!r} is not valid JSON: {exc}"
        ) from exc


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _load_spec_dict(args)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    options = {}
    if args.workers is not None:
        options["workers"] = args.workers
    if args.energy:
        options["energy"] = True
    response = client.submit(spec, **options)
    job_id = response["job_id"]
    print(f"job {job_id}: {response['disposition']} "
          f"({response['job']['n_points']} points)")
    if not args.follow:
        return 0
    for event_id, name, data in client.stream(job_id, timeout=args.timeout):
        if name == "point":
            print(f"  [{event_id}] point {data['n_done']}/{data['n_points']} "
                  f"{data.get('mix')}/{data.get('topology')}"
                  f"x{data.get('n_clusters')}/{data.get('steering')} "
                  f"ipc={data.get('ipc', 0.0):.4f}")
        elif name in ("done", "failed", "cancelled"):
            summary = data.get("summary") or {}
            print(f"  [{event_id}] {name}: "
                  f"{summary.get('describe', data.get('error', ''))}")
        else:
            print(f"  [{event_id}] {name}")
    status = client.job(job_id)
    state = status["state"]
    print(f"job {job_id}: {state}")
    if state == "done":
        return 0
    if state == "cancelled":
        return 3
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run the sweep job API server")
    serve_p.add_argument("--host", default=DEFAULT_HOST)
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"listen port (default {DEFAULT_PORT}; "
                              "0 picks a free port)")
    serve_p.add_argument("--store", default=DEFAULT_STORE,
                         help="result store the service owns "
                              f"(default {DEFAULT_STORE})")
    serve_p.add_argument("--workers", type=int, default=None,
                         help="default sweep worker processes per job")
    serve_p.add_argument("--kernel-variant", default=None,
                         choices=("generic", "specialized"),
                         help="default simulation kernel for jobs")
    serve_p.set_defaults(func=_cmd_serve)

    submit_p = sub.add_parser("submit",
                              help="submit a spec to a running service")
    submit_p.add_argument("--host", default=DEFAULT_HOST)
    submit_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit_p.add_argument("--spec", help="JSON sweep spec file")
    submit_p.add_argument("--smoke", action="store_true",
                          help="built-in 24-point CI grid")
    submit_p.add_argument("--paper", action="store_true",
                          help="built-in full paper-style grid")
    submit_p.add_argument("--workers", type=int, default=None)
    submit_p.add_argument("--energy", action="store_true",
                          help="enable the per-event energy model")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          help="client-side wait timeout in seconds")
    submit_p.add_argument("--no-follow", dest="follow", action="store_false",
                          help="submit and exit without streaming events")
    submit_p.set_defaults(func=_cmd_submit, follow=True)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
