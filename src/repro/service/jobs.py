"""Sweep jobs: content-addressed submissions over the fault-tolerant runner.

A *job* is one :class:`~repro.sweep.grid.SweepSpec` submitted over HTTP.
Jobs are deduplicated by the digest of their effective spec — submitting a
spec that is already queued or running attaches the caller to the existing
job instead of computing anything twice, the service-level mirror of the
store's content-addressed point keys.  Re-submitting a *finished* spec
starts a fresh run under the same job id; because every completed point is
already in the store, that run is a pure cache-hit pass (0 points
recomputed) — which is also exactly how a cancelled job resumes.

Execution is strictly serial: one daemon thread owns the
:class:`~repro.sweep.store.ResultStore` and drains the job queue FIFO,
calling :func:`repro.sweep.runner.run_sweep` — which parallelizes across
*processes* per job — off the event loop.  Serializing jobs keeps the
single-writer append discipline that the store's byte-identity guarantee
rests on (the abelian correctness bar: the store's bytes must not depend
on which job, worker, or submission order computed which point), while the
asyncio side stays free to serve reads and streams to any number of
clients.

Progress flows out through the runner's ``on_point_done`` hook into each
job's :class:`~repro.service.events.EventBroadcaster`; cancellation flows
in through ``should_stop``, riding PR 6's interrupt path (frontier
flushed, partial prefix durable, resume-by-resubmission).

Two extensions serve the distributed fabric:

* **Shard jobs** carry a ``shard: {start, stop}`` half-open range and run
  only that slice of the spec's deduped expansion-order point list — the
  unit a :class:`~repro.fabric.scheduler.FabricCoordinator` dispatches to
  a peer.  The shard participates in the job digest, so two shards of one
  spec are distinct jobs and never dedupe against each other or against a
  whole-spec run.
* **Restart recovery**: every job's identity (spec, options, shard,
  state) is persisted as one small JSON file next to the store.  On boot
  the manager re-reads them; a job that was queued or running when the
  process died is listed again with ``state: "interrupted"`` instead of
  being forgotten, and resubmitting its spec resumes it through the
  normal cache-hit path.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.jsonutil import canonical_json, content_digest
from repro.exec.attempts import RetryPolicy
from repro.exec.frontier import dedup_ordered
from repro.service.events import EventBroadcaster
from repro.service.schemas import SchemaError
from repro.sweep.grid import ExperimentPoint, SweepSpec
from repro.sweep.report import relative_ipc_table, rows_from_records
from repro.sweep.runner import (
    SweepInterrupted,
    SweepSummary,
    run_sweep,
)
from repro.sweep.store import ResultStore

#: Emit an incremental ``table`` event every this many completed points
#: (and always at the end of a run).
TABLE_EVERY = 8

#: Job lifecycle states.  ``queued`` and ``running`` are *active* (new
#: submissions of the same spec dedupe onto them); the rest are terminal
#: (a resubmission starts a fresh run of the same job).
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: State assigned on boot to a persisted job that was active when the
#: previous process died.  Not in :data:`ACTIVE_STATES` — resubmitting the
#: spec re-runs the job, and the store's cached prefix makes that a resume.
INTERRUPTED_STATE = "interrupted"


class ServiceUnavailable(ReproError):
    """The service is draining for shutdown and accepts no new work."""


class UnknownJob(ReproError):
    """No job with the requested id exists."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


def summary_to_dict(summary: SweepSummary) -> Dict[str, Any]:
    """A :class:`SweepSummary` as a JSON-ready API object."""
    return {
        "n_points": summary.n_points,
        "n_cached": summary.n_cached,
        "n_computed": summary.n_computed,
        "n_workers": summary.n_workers,
        "elapsed_s": summary.elapsed_s,
        "kernel_variant": summary.kernel_variant,
        "cache_hit_rate": summary.cache_hit_rate,
        "n_discarded": summary.n_discarded,
        "interrupted": summary.interrupted,
        "failures": [f.to_dict() for f in summary.failures.values()],
        "describe": summary.describe(),
    }


class Job:
    """One submitted spec and the state of its latest run."""

    def __init__(self, job_id: str, spec: SweepSpec,
                 options: Dict[str, Any],
                 broadcaster: Optional[EventBroadcaster],
                 shard: Optional[Dict[str, int]] = None) -> None:
        self.job_id = job_id
        self.spec = spec
        self.options = options
        # ``None`` only for jobs recovered before start(); the manager
        # attaches a broadcaster when it binds to the event loop.
        self.broadcaster = broadcaster
        self.shard = dict(shard) if shard else None
        self.state = "queued"
        self.created_s = time.time()
        self.run_count = 0
        # Provisional until _execute expands the spec (a shard indexes the
        # *deduped* point list, whose length n_points() only bounds).
        self.n_points = (
            max(0, min(shard["stop"], spec.n_points()) - shard["start"])
            if shard else spec.n_points()
        )
        self.n_cached_start = 0     # cache hits found when the run began
        self.n_done = 0             # cached_start + points flushed so far
        self.summary: Optional[SweepSummary] = None
        self.error: Optional[str] = None
        self.cancel_event = threading.Event()
        #: Expansion-ordered unique point keys, filled in when the run
        #: starts (expansion is deferred to the job thread — a paper-sized
        #: grid should not be expanded on the event loop).
        self.point_keys: List[str] = []

    def status(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "state": self.state,
            "shard": dict(self.shard) if self.shard else None,
            "run_count": self.run_count,
            "n_points": self.n_points,
            "n_cached_start": self.n_cached_start,
            "n_done": self.n_done,
            "progress": (self.n_done / self.n_points) if self.n_points else 1.0,
            "options": dict(self.options),
            "summary": summary_to_dict(self.summary) if self.summary else None,
            "error": self.error,
        }


def effective_spec(body: Dict[str, Any]) -> SweepSpec:
    """The spec a submission actually runs: body ``spec`` + option folds.

    ``energy: true`` appends ``energy.enabled`` to the spec's base exactly
    like the CLI's ``--energy`` flag, *before* the job digest is taken —
    an energy run and a plain run of the same grid are different jobs with
    different point keys, never dedupe collisions.
    """
    spec = SweepSpec.from_dict(body["spec"])
    if body.get("energy"):
        spec = dataclasses.replace(
            spec, base=tuple(spec.base) + (("energy.enabled", True),)
        )
    return spec


def job_id_for(spec: SweepSpec,
               shard: Optional[Dict[str, int]] = None) -> str:
    """Content digest identifying a spec's job (dedup key).

    A shard job digests its range too — shard and whole-spec runs of one
    spec are different units of work.  ``shard=None`` reproduces the
    pre-shard digest exactly, so existing job ids are stable.
    """
    payload: Dict[str, Any] = {"sweep_spec": spec.to_dict()}
    if shard is not None:
        payload["shard"] = {"start": shard["start"], "stop": shard["stop"]}
    return content_digest(payload, 16)


class JobManager:
    """Owns the store, the job table, and the single job-runner thread."""

    def __init__(
        self,
        store_path: str,
        sweep_workers: Optional[int] = None,
        kernel_variant: Optional[str] = None,
        table_every: int = TABLE_EVERY,
        persist_jobs: bool = True,
    ) -> None:
        self.store = ResultStore(store_path)
        self.sweep_workers = sweep_workers
        self.kernel_variant = kernel_variant
        self.table_every = max(1, table_every)
        self.persist_jobs = persist_jobs
        self._jobs_dir = os.path.join(
            os.path.dirname(os.path.abspath(store_path)), "jobs"
        )
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.RLock()
        self._loop: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None
        self._draining = False
        if persist_jobs:
            self._recover_jobs()

    # -- persistence -------------------------------------------------------
    def _job_path(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir, f"{job_id}.json")

    def _persist(self, job: Job) -> None:
        """Write the job's identity + state atomically (tmp + replace).

        Summaries and event history are deliberately *not* persisted —
        they are per-process artifacts; what must survive a crash is
        enough to list the job and re-run it (spec, options, shard).
        """
        if not self.persist_jobs:
            return
        record = {
            "job_id": job.job_id,
            "spec": job.spec.to_dict(),
            "options": dict(job.options),
            "shard": dict(job.shard) if job.shard else None,
            "state": job.state,
            "created_s": job.created_s,
            "run_count": job.run_count,
        }
        # Serialized under the manager lock: the event-loop thread (submit)
        # and the job-runner thread (run-start/settle) both persist the
        # same job, and they must not share one tmp file unsynchronized.
        with self._lock:
            os.makedirs(self._jobs_dir, exist_ok=True)
            path = self._job_path(job.job_id)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(record) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)

    def _recover_jobs(self) -> None:
        """Re-list persisted jobs; active-at-crash ones become interrupted.

        Malformed or torn job files are skipped (the store, not the job
        table, is the durable truth — losing a listing is an inconvenience,
        refusing to boot would be an outage).
        """
        if not os.path.isdir(self._jobs_dir):
            return
        recovered: List[Job] = []
        for name in os.listdir(self._jobs_dir):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._jobs_dir, name),
                          encoding="utf-8") as fh:
                    record = json.load(fh)
                spec = SweepSpec.from_dict(record["spec"])
                job = Job(record["job_id"], spec,
                          dict(record.get("options") or {}),
                          broadcaster=None,
                          shard=record.get("shard"))
            except (OSError, ValueError, KeyError, ReproError):
                continue
            job.created_s = float(record.get("created_s", 0.0))
            job.run_count = int(record.get("run_count", 0))
            state = record.get("state")
            if state in ACTIVE_STATES:
                job.state = INTERRUPTED_STATE
                job.error = ("service restarted while this job was "
                             f"{state}; completed points are cached in the "
                             "store — resubmit the same spec to resume")
            elif state in TERMINAL_STATES + (INTERRUPTED_STATE,):
                job.state = state
            else:
                continue
            recovered.append(job)
        for job in sorted(recovered, key=lambda j: (j.created_s, j.job_id)):
            self.jobs[job.job_id] = job
            self._order.append(job.job_id)

    # -- lifecycle ---------------------------------------------------------
    def start(self, loop: Any) -> None:
        """Bind to the event loop and start the runner thread."""
        self._loop = loop
        with self._lock:
            for job_id in self._order:
                job = self.jobs[job_id]
                if job.broadcaster is None:
                    # Recovered job: give late subscribers a history that
                    # explains where the run went, then end the stream.
                    job.broadcaster = EventBroadcaster(loop)
                    job.broadcaster.publish(job.state, {
                        "job_id": job.job_id,
                        "state": job.state,
                        "recovered": True,
                        "error": job.error,
                    })
                    job.broadcaster.close()
                    self._persist(job)
        self._thread = threading.Thread(
            target=self._run_jobs, name="sweep-job-runner", daemon=True
        )
        self._thread.start()

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work; drain (or cancel) what is queued, then join.

        ``drain=True`` lets every queued and in-flight job run to
        completion — the graceful path.  ``drain=False`` cancels them
        through the interrupt path first; their flushed prefixes stay
        durable and resume on resubmission.  Blocking — call off the event
        loop.
        """
        with self._lock:
            self._draining = True
            if not drain:
                for job in self.jobs.values():
                    if job.state in ACTIVE_STATES:
                        self._request_cancel(job)
        self._queue.put(None)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- submission (event-loop thread) ------------------------------------
    def submit(self, body: Dict[str, Any]) -> Tuple[Job, str]:
        """Create, dedupe onto, or re-run the job for ``body``.

        Returns ``(job, disposition)`` with disposition one of
        ``"created"`` (new job), ``"deduplicated"`` (attached to an active
        run) or ``"resubmitted"`` (terminal job re-enqueued — a pure
        cache-hit pass when the previous run completed).
        """
        spec = effective_spec(body)
        shard = body.get("shard")
        if shard is not None and shard["start"] >= shard["stop"]:
            raise SchemaError(
                "body.shard",
                f"start ({shard['start']}) must be < stop ({shard['stop']})"
            )
        job_id = job_id_for(spec, shard)
        options = {
            key: body[key]
            for key in ("workers", "kernel_variant", "energy",
                        "retries", "timeout_s", "backoff_s")
            if key in body
        }
        with self._lock:
            if self._draining:
                raise ServiceUnavailable(
                    "service is shutting down; job submissions are closed"
                )
            job = self.jobs.get(job_id)
            if job is not None and job.state in ACTIVE_STATES:
                return job, "deduplicated"
            if job is not None:
                job.options = options
                job.state = "queued"
                job.n_cached_start = 0
                job.n_done = 0
                job.summary = None
                job.error = None
                job.cancel_event = threading.Event()
                if job.broadcaster is None:  # recovered before start()
                    assert self._loop is not None, \
                        "JobManager.start() not called"
                    job.broadcaster = EventBroadcaster(self._loop)
                else:
                    job.broadcaster.reset()
                disposition = "resubmitted"
            else:
                assert self._loop is not None, "JobManager.start() not called"
                job = Job(job_id, spec, options,
                          EventBroadcaster(self._loop), shard=shard)
                self.jobs[job_id] = job
                self._order.append(job_id)
                disposition = "created"
            self._persist(job)
            job.broadcaster.publish("queued", {
                "job_id": job_id,
                "name": spec.name,
                "n_points": job.n_points,
                "shard": dict(job.shard) if job.shard else None,
                "run": job.run_count + 1,
            })
            self._queue.put(job)
            return job, disposition

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def list_jobs(self) -> List[Job]:
        return [self.jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued or running job; idempotent error on terminal."""
        with self._lock:
            job = self.get(job_id)
            if job.state not in ACTIVE_STATES:
                return {"job_id": job_id, "state": job.state,
                        "cancelled": False}
            self._request_cancel(job)
            return {"job_id": job_id, "state": job.state, "cancelled": True}

    def _request_cancel(self, job: Job) -> None:
        # Caller holds the lock.  A *queued* job is settled immediately —
        # the runner thread will see the terminal state and skip it; a
        # *running* job is asked to stop via should_stop and settles
        # through the SweepInterrupted path in _execute.
        job.cancel_event.set()
        if job.state == "queued":
            self._settle(job, "cancelled", publish_data={
                "job_id": job.job_id, "reason": "cancelled while queued",
            })

    # -- execution (runner thread) -----------------------------------------
    def _run_jobs(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                break
            with self._lock:
                if job.state != "queued":
                    continue  # cancelled while waiting in the queue
                job.state = "running"
                job.run_count += 1
                self._persist(job)
            try:
                self._execute(job)
            except Exception as exc:  # defensive: the thread must survive
                self._settle(job, "failed", error=f"{type(exc).__name__}: {exc}")

    def _settle(self, job: Job, state: str,
                error: Optional[str] = None,
                summary: Optional[SweepSummary] = None,
                publish_data: Optional[Dict[str, Any]] = None) -> None:
        """Move a job to a terminal state and close its event stream."""
        job.state = state
        job.error = error
        if summary is not None:
            job.summary = summary
        data = {"job_id": job.job_id, "state": state}
        if error is not None:
            data["error"] = error
        if summary is not None:
            data["summary"] = summary_to_dict(summary)
        if publish_data:
            data.update(publish_data)
        job.broadcaster.publish(state if state in TERMINAL_STATES else "done",
                                data)
        job.broadcaster.close()
        self._persist(job)

    def _point_event(self, job: Job, key: str,
                     record: Dict[str, Any], index: int) -> Dict[str, Any]:
        result = record.get("result", {})
        cycles = result.get("cycles", 0)
        n_instr = result.get("n_instructions", 0)
        point = record.get("point", {})
        config = point.get("config", {})
        return {
            "job_id": job.job_id,
            "index": index,
            "key": key,
            "n_done": job.n_done,
            "n_points": job.n_points,
            "mix": point.get("mix"),
            "topology": config.get("topology"),
            "n_clusters": config.get("n_clusters"),
            "steering": config.get("steering"),
            "seed": point.get("seed"),
            "ipc": (n_instr / cycles) if cycles else 0.0,
        }

    def incremental_table_markdown(self, job: Job) -> str:
        """The headline RING/CONV table over the job's completed points.

        Rendered from the in-memory subset of the job's records present in
        the store *right now* — this is what makes reports live while a
        job runs (and what ``table`` SSE events carry).
        """
        records = []
        for key in job.point_keys:
            record = self.store.get(key)
            if record is not None:
                records.append(record)
        rows = rows_from_records(records, where=f"<job {job.job_id}>")
        return relative_ipc_table(rows).to_markdown()

    def job_records(self, job: Job) -> List[Dict[str, Any]]:
        """The job's completed records, expansion-ordered."""
        out = []
        for key in job.point_keys:
            record = self.store.get(key)
            if record is not None:
                out.append(record)
        return out

    def _execute(self, job: Job) -> None:
        try:
            points = job.spec.expand()
        except ReproError as exc:
            self._settle(job, "failed", error=str(exc))
            return
        # Unique keys in expansion order — the same dedup run_sweep does,
        # so progress counts line up with its summary.
        keyed: Dict[str, ExperimentPoint] = dedup_ordered(
            (point.key(), point) for point in points
        )
        if job.shard is not None:
            # A shard indexes the deduped expansion-order list — the exact
            # list a coordinator computed from the same spec (expansion is
            # deterministic, so both sides agree on every index).
            start, stop = job.shard["start"], job.shard["stop"]
            if stop > len(keyed):
                self._settle(job, "failed", error=(
                    f"shard [{start}, {stop}) is out of range: spec "
                    f"{job.spec.name!r} expands to {len(keyed)} unique "
                    "point(s)"
                ))
                return
            ordered = list(keyed.items())[start:stop]
            keyed = dict(ordered)
            points = [point for _key, point in ordered]
        job.point_keys = list(keyed)
        job.n_points = len(keyed)
        job.n_cached_start = sum(
            1 for key in job.point_keys if key in self.store
        )
        job.n_done = job.n_cached_start
        job.broadcaster.publish("running", {
            "job_id": job.job_id,
            "n_points": job.n_points,
            "n_cached": job.n_cached_start,
            "n_pending": job.n_points - job.n_cached_start,
            "shard": dict(job.shard) if job.shard else None,
        })

        flushed_since_table = 0

        def on_point_done(key: str, record: Dict[str, Any], index: int) -> None:
            nonlocal flushed_since_table
            job.n_done += 1
            job.broadcaster.publish(
                "point", self._point_event(job, key, record, index)
            )
            flushed_since_table += 1
            if flushed_since_table >= self.table_every:
                flushed_since_table = 0
                job.broadcaster.publish("table", {
                    "job_id": job.job_id,
                    "n_done": job.n_done,
                    "n_points": job.n_points,
                    "markdown": self.incremental_table_markdown(job),
                })

        options = job.options
        policy = RetryPolicy(
            max_attempts=int(options.get("retries", 2)) + 1,
            backoff_s=float(options.get("backoff_s", 0.1)),
            timeout_s=options.get("timeout_s"),
        )
        try:
            summary = run_sweep(
                points,
                self.store,
                workers=options.get("workers", self.sweep_workers),
                kernel_variant=options.get("kernel_variant",
                                           self.kernel_variant),
                policy=policy,
                on_point_done=on_point_done,
                should_stop=job.cancel_event.is_set,
            )
        except SweepInterrupted as exc:
            self._settle(job, "cancelled", summary=exc.summary, publish_data={
                "reason": "cancelled; completed prefix is durable — "
                          "resubmit the same spec to resume",
            })
            return
        except ReproError as exc:
            self._settle(job, "failed", error=str(exc))
            return
        # A final table event so late dashboards see the complete picture
        # even when n_points is not a multiple of table_every.
        job.broadcaster.publish("table", {
            "job_id": job.job_id,
            "n_done": job.n_done,
            "n_points": job.n_points,
            "markdown": self.incremental_table_markdown(job),
        })
        if summary.failures:
            self._settle(
                job, "failed", summary=summary,
                error=f"{len(summary.failures)} point(s) permanently failed",
            )
        else:
            self._settle(job, "done", summary=summary)


__all__ = [
    "ACTIVE_STATES",
    "INTERRUPTED_STATE",
    "Job",
    "JobManager",
    "ServiceUnavailable",
    "TABLE_EVERY",
    "TERMINAL_STATES",
    "UnknownJob",
    "effective_spec",
    "job_id_for",
    "summary_to_dict",
]
