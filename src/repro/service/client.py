"""Small blocking client for the sweep service (tests, CI, scripts).

Wraps :mod:`http.client` — one connection per request, matching the
server's ``Connection: close`` discipline — and parses SSE streams into
``(id, event, data)`` tuples.  Deliberately boring: no retries, no
sessions, no dependencies; CI drives the whole service lifecycle through
it and the byte-identity checks need nothing smarter.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.service.events import TERMINAL_EVENTS

#: Parsed SSE event: ``(id, name, data)``.
SSEEvent = Tuple[int, str, Dict[str, Any]]


class ServiceError(ReproError):
    """The service answered with a structured error (or junk)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """Blocking HTTP client for one service instance."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, bytes]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        except OSError as exc:
            raise ServiceError(
                0, "unreachable",
                f"cannot reach service at {self.host}:{self.port} ({exc})",
            ) from exc
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              ok: Tuple[int, ...] = (200, 201)) -> Dict[str, Any]:
        status, raw = self._request(method, path, body)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(status, "bad_response",
                               f"non-JSON response: {raw[:200]!r}") from exc
        if status not in ok:
            error = data.get("error", {}) if isinstance(data, dict) else {}
            raise ServiceError(status, error.get("code", "error"),
                               error.get("message", raw.decode("utf-8",
                                                               "replace")))
        return data

    # -- endpoints ---------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def index(self) -> Dict[str, Any]:
        return self._json("GET", "/")

    def submit(self, spec: Dict[str, Any], **options: Any) -> Dict[str, Any]:
        """``POST /jobs``; returns the submission response.

        ``options`` pass through to the request body (``workers``,
        ``kernel_variant``, ``energy``, ``retries``, ``timeout_s``,
        ``backoff_s``).
        """
        body = dict(options)
        body["spec"] = spec
        return self._json("POST", "/jobs", body)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel", {},
                          ok=(200, 409))

    def result(self, key: str) -> bytes:
        """One record's canonical store bytes (including the newline)."""
        status, raw = self._request("GET", f"/results/{key}")
        if status != 200:
            raise ServiceError(status, "unknown_result",
                               raw.decode("utf-8", "replace"))
        return raw

    def report(self, job_id: str, fmt: str = "md",
               table: Optional[str] = None) -> str:
        path = f"/jobs/{job_id}/report?format={fmt}"
        if table is not None:
            path += f"&table={table}"
        status, raw = self._request("GET", path)
        if status != 200:
            raise ServiceError(status, "report_error",
                               raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def steering_policies(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/registry/steering")["steering_policies"]

    def mixes(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/registry/mixes")["mixes"]

    # -- streaming ---------------------------------------------------------
    def stream(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[SSEEvent]:
        """Yield the job's SSE events until its run ends.

        Replays the job's event history first (subscribing late is fine),
        then follows live events through the terminal event.
        """
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout if timeout is None
                              else timeout)
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/events")
                response = conn.getresponse()
            except OSError as exc:
                raise ServiceError(
                    0, "unreachable",
                    f"cannot reach service at {self.host}:{self.port} "
                    f"({exc})",
                ) from exc
            if response.status != 200:
                raw = response.read()
                raise ServiceError(response.status, "stream_error",
                                   raw.decode("utf-8", "replace"))
            event_id = 0
            name = ""
            data_line = ""
            while True:
                line = response.readline()
                if not line:
                    return  # stream closed by server
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("id:"):
                    event_id = int(text[3:].strip())
                elif text.startswith("event:"):
                    name = text[6:].strip()
                elif text.startswith("data:"):
                    data_line = text[5:].strip()
                elif text == "":
                    if name:
                        yield (event_id, name,
                               json.loads(data_line) if data_line else {})
                        if name in TERMINAL_EVENTS:
                            return
                    name = ""
                    data_line = ""
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0) -> Dict[str, Any]:
        """Block until the job's current run ends; return its final status.

        Follows the SSE stream (so waiting costs no polling); falls back
        to one status poll per second if the stream ends without a
        terminal event (e.g. a server-side reset between runs).
        """
        deadline = time.monotonic() + timeout
        for _event_id, name, _data in self.stream(job_id, timeout=timeout):
            if name in TERMINAL_EVENTS:
                break
            if time.monotonic() > deadline:
                raise ServiceError(408, "timeout",
                                   f"job {job_id} still running after "
                                   f"{timeout}s")
        while True:
            status = self.job(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() > deadline:
                raise ServiceError(408, "timeout",
                                   f"job {job_id} still running after "
                                   f"{timeout}s")
            time.sleep(0.05)


__all__ = ["SSEEvent", "ServiceClient", "ServiceError"]
