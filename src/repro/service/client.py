"""Blocking client for the sweep service (tests, CI, fabric, scripts).

Wraps :mod:`http.client` — one connection per request, matching the
server's ``Connection: close`` discipline — and parses SSE streams into
``(id, event, data)`` tuples.

Transient-error handling, which the distributed fabric leans on:

* every request retries connection-level failures (refused, reset, timed
  out) with capped exponential backoff — safe for ``POST /jobs`` because
  submissions are spec-digest idempotent (a duplicate submit dedupes onto
  the existing job instead of starting a second run);
* :meth:`ServiceClient.stream` survives an incomplete SSE stream by
  reconnecting and replaying: the server resends the job's full event
  history and the client skips every event id it has already yielded, so
  the caller sees each event exactly once, in order, across any number of
  mid-stream disconnects.

The network chaos harness hooks in here: before each request the client
asks :func:`repro.faults.net_fault_action` for this attempt's injected
fault, so one seeded :class:`~repro.faults.NetworkFaultPlan` exercises
refusals, mid-body disconnects, stalls, and corrupted payloads through
exactly the code paths real failures would take.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.exec.attempts import backoff_delay
from repro.faults import (
    NET_CORRUPT,
    NET_DISCONNECT,
    corrupt_bytes,
    inject_net_fault,
    net_fault_action,
)
from repro.service.events import TERMINAL_EVENTS

#: Parsed SSE event: ``(id, name, data)``.
SSEEvent = Tuple[int, str, Dict[str, Any]]

#: Exceptions treated as transient transport failures and retried.
#: ``OSError`` covers refused/reset/timeout (and the injected network
#: faults, which subclass it on purpose); ``HTTPException`` covers a
#: server that died mid-response (``RemoteDisconnected``, bad status
#: lines from a torn byte stream).
TRANSIENT_ERRORS = (OSError, HTTPException)


class ServiceError(ReproError):
    """The service answered with a structured error (or junk)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """Blocking HTTP client for one service instance.

    ``retries`` bounds extra delivery attempts per request (0 disables
    retrying); ``backoff_s`` is the pause before the first retry, doubling
    per attempt and capped at ``backoff_cap_s`` — deterministic, no
    jitter, like the sweep runner's :class:`~repro.sweep.runner.RetryPolicy`.
    ``peer_name`` identifies this endpoint to the network fault plan (and
    in error messages); it defaults to ``host:port``.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 retries: int = 2, backoff_s: float = 0.1,
                 backoff_cap_s: float = 2.0,
                 peer_name: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.peer_name = peer_name or f"{host}:{port}"

    # -- plumbing ----------------------------------------------------------
    def _backoff(self, failed_attempts: int) -> None:
        delay = backoff_delay(self.backoff_s, failed_attempts,
                              cap_s=self.backoff_cap_s)
        if delay > 0:
            time.sleep(delay)

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]],
                      attempt: int) -> Tuple[int, bytes]:
        op = f"{method} {path}"
        action = net_fault_action(self.peer_name, op, attempt)
        if action is not None and action not in (NET_DISCONNECT, NET_CORRUPT):
            inject_net_fault(action, self.peer_name, op, attempt)
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        if action == NET_DISCONNECT:
            # The request reached the wire before the injected reset: the
            # server may well have acted on it.  Retrying must be safe —
            # which it is, because every mutating endpoint is idempotent.
            inject_net_fault(action, self.peer_name, op, attempt)
        if action == NET_CORRUPT:
            raw = corrupt_bytes(raw)
        return response.status, raw

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        attempt_offset: int = 0,
    ) -> Tuple[int, bytes]:
        """One request with transient-error retry.

        ``attempt_offset`` shifts the attempt numbers the fault plan sees;
        callers that re-issue a request after *application-level*
        validation failed (the fabric refetching a corrupt record) pass
        their own attempt count so the injected fault schedule advances
        instead of replaying attempt 1 forever.
        """
        last_exc: Optional[BaseException] = None
        for attempt in range(1, self.retries + 2):
            try:
                return self._request_once(method, path, body,
                                          attempt + attempt_offset)
            except TRANSIENT_ERRORS as exc:
                last_exc = exc
                if attempt <= self.retries:
                    self._backoff(attempt)
        raise ServiceError(
            0, "unreachable",
            f"cannot reach service at {self.peer_name} after "
            f"{self.retries + 1} attempt(s) ({last_exc})",
        ) from last_exc

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              ok: Tuple[int, ...] = (200, 201)) -> Dict[str, Any]:
        status, raw = self._request(method, path, body)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(status, "bad_response",
                               f"non-JSON response: {raw[:200]!r}") from exc
        if status not in ok:
            error = data.get("error", {}) if isinstance(data, dict) else {}
            raise ServiceError(status, error.get("code", "error"),
                               error.get("message", raw.decode("utf-8",
                                                               "replace")))
        return data

    # -- endpoints ---------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def index(self) -> Dict[str, Any]:
        return self._json("GET", "/")

    def submit(self, spec: Dict[str, Any], **options: Any) -> Dict[str, Any]:
        """``POST /jobs``; returns the submission response.

        ``options`` pass through to the request body (``workers``,
        ``kernel_variant``, ``energy``, ``retries``, ``timeout_s``,
        ``backoff_s``, ``shard``).
        """
        body = {key: value for key, value in options.items()
                if value is not None}
        body["spec"] = spec
        return self._json("POST", "/jobs", body)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel", {},
                          ok=(200, 409))

    def result(self, key: str, attempt: int = 1) -> bytes:
        """One record's canonical store bytes (including the newline).

        ``attempt`` is the caller's own 1-based fetch attempt for this
        key; it advances the fault plan's schedule across refetches (see
        :meth:`_request`).
        """
        status, raw = self._request("GET", f"/results/{key}",
                                    attempt_offset=attempt - 1)
        if status != 200:
            raise ServiceError(status, "unknown_result",
                               raw.decode("utf-8", "replace"))
        return raw

    def report(self, job_id: str, fmt: str = "md",
               table: Optional[str] = None) -> str:
        path = f"/jobs/{job_id}/report?format={fmt}"
        if table is not None:
            path += f"&table={table}"
        status, raw = self._request("GET", path)
        if status != 200:
            raise ServiceError(status, "report_error",
                               raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def steering_policies(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/registry/steering")["steering_policies"]

    def mixes(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/registry/mixes")["mixes"]

    # -- streaming ---------------------------------------------------------
    def _stream_once(self, job_id: str, timeout: Optional[float],
                     attempt: int) -> Iterator[SSEEvent]:
        """One SSE connection's events; raises on transport failure."""
        op = f"SSE /jobs/{job_id}/events"
        action = net_fault_action(self.peer_name, op, attempt)
        if action is not None and action not in (NET_DISCONNECT, NET_CORRUPT):
            inject_net_fault(action, self.peer_name, op, attempt)
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout if timeout is None
                              else timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ServiceError(response.status, "stream_error",
                                   raw.decode("utf-8", "replace"))
            event_id = 0
            name = ""
            data_line = ""
            yielded = 0
            while True:
                line = response.readline()
                if not line:
                    return  # stream closed by server
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("id:"):
                    event_id = int(text[3:].strip())
                elif text.startswith("event:"):
                    name = text[6:].strip()
                elif text.startswith("data:"):
                    data_line = text[5:].strip()
                elif text == "":
                    if name:
                        yield (event_id, name,
                               json.loads(data_line) if data_line else {})
                        yielded += 1
                        if name in TERMINAL_EVENTS:
                            return
                        if action in (NET_DISCONNECT, NET_CORRUPT) \
                                and yielded >= 1:
                            # Mid-body disconnect (a corrupted frame is the
                            # same thing to an SSE reader: the stream is
                            # unusable from here on).
                            inject_net_fault(NET_DISCONNECT, self.peer_name,
                                             op, attempt)
                    name = ""
                    data_line = ""
        finally:
            conn.close()

    def stream(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[SSEEvent]:
        """Yield the job's SSE events until its run ends, exactly once each.

        Replays the job's event history first (subscribing late is fine),
        then follows live events through the terminal event.  A stream
        that dies mid-run (connection reset, server restart of the
        connection) is reconnected with backoff; the server's full-history
        replay plus client-side id dedup turn the reconnect into a seamless
        resume from the last seen event id.  Raises :class:`ServiceError`
        when the stream cannot be completed within the retry budget.
        """
        last_id = 0
        last_exc: Optional[BaseException] = None
        for attempt in range(1, self.retries + 2):
            clean_end = False
            try:
                for event in self._stream_once(job_id, timeout, attempt):
                    event_id, name, _data = event
                    if event_id == 0 and name == "truncated":
                        # Replay-truncation marker: meaningful once, noise
                        # on every reconnect.
                        if attempt == 1:
                            yield event
                        continue
                    if event_id <= last_id:
                        continue  # already yielded before the reconnect
                    last_id = event_id
                    yield event
                    if name in TERMINAL_EVENTS:
                        return
                clean_end = True
            except ServiceError:
                raise  # structured HTTP error (404 unknown job): no retry
            except TRANSIENT_ERRORS as exc:
                last_exc = exc
            if clean_end:
                # The server ended the stream without a terminal event —
                # a broadcaster reset between runs.  Not a transport
                # failure: return and let the caller poll status.
                return
            if attempt <= self.retries:
                self._backoff(attempt)
        raise ServiceError(
            0, "stream_interrupted",
            f"SSE stream for job {job_id} at {self.peer_name} kept "
            f"failing after {self.retries + 1} attempt(s) ({last_exc})",
        ) from last_exc

    def wait(self, job_id: str, timeout: float = 300.0) -> Dict[str, Any]:
        """Block until the job's current run ends; return its final status.

        Follows the SSE stream (so waiting costs no polling); falls back
        to one status poll per second if the stream ends without a
        terminal event (e.g. a server-side reset between runs).
        """
        deadline = time.monotonic() + timeout
        try:
            for _event_id, name, _data in self.stream(job_id, timeout=timeout):
                if name in TERMINAL_EVENTS:
                    break
                if time.monotonic() > deadline:
                    raise ServiceError(408, "timeout",
                                       f"job {job_id} still running after "
                                       f"{timeout}s")
        except ServiceError as exc:
            if exc.code not in ("stream_interrupted", "unreachable"):
                raise
        while True:
            status = self.job(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() > deadline:
                raise ServiceError(408, "timeout",
                                   f"job {job_id} still running after "
                                   f"{timeout}s")
            time.sleep(0.05)


__all__ = ["SSEEvent", "ServiceClient", "ServiceError", "TRANSIENT_ERRORS"]
