"""Declarative design-space grids.

A :class:`SweepSpec` names the axes of a design-space study — topology,
cluster count, steering policy, workload mix, seed, plus arbitrary
:class:`~repro.common.config.ProcessorConfig` fields addressed by dotted
path (``"bus.hop_latency"``) — and :meth:`SweepSpec.expand` takes their
cartesian product into concrete :class:`ExperimentPoint` objects.

Every point is content-addressed: :meth:`ExperimentPoint.key` hashes the
full nested config dict, the workload identity ``(mix, n_instructions,
seed)`` and :data:`~repro.engine.kernel.ENGINE_VERSION`.  The result store
uses this key, which is what makes sweeps resumable and re-runs free.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Tuple

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError
from repro.common.jsonutil import canonical_json, content_digest
from repro.common.types import Topology
from repro.energy import EnergyConfig
from repro.engine.kernel import ENGINE_VERSION
from repro.steering import STEERING_REGISTRY, list_policies
from repro.workloads import get_mix

#: Spec axes that map onto ProcessorConfig fields; they cannot also appear
#: as ``overrides`` paths or the same field would be set from two places.
_AXIS_FIELDS = ("topology", "n_clusters", "steering")


def _set_path(tree: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``tree[a][b]... = value`` for dotted ``path`` ``"a.b...."``.

    Only existing keys may be addressed: an unknown component raises
    :class:`ConfigurationError` naming the valid keys at that level, the
    same fail-loudly contract as :meth:`ProcessorConfig.from_dict`.
    """
    node = tree
    parts = path.split(".")
    for depth, part in enumerate(parts):
        if not isinstance(node, dict) or part not in node:
            where = ".".join(parts[:depth]) or "ProcessorConfig"
            valid = sorted(node) if isinstance(node, dict) else []
            raise ConfigurationError(
                f"override path {path!r}: {part!r} is not a field of {where} "
                f"(valid: {valid})"
            )
        if depth == len(parts) - 1:
            node[part] = value
        else:
            node = node[part]


@dataclass(frozen=True)
class ExperimentPoint:
    """One fully-resolved simulation: a machine config plus a workload."""

    config: ProcessorConfig
    mix: str
    n_instructions: int
    seed: int

    def __post_init__(self) -> None:
        get_mix(self.mix)  # raises ConfigurationError for unknown mixes
        if self.n_instructions < 0:
            raise ConfigurationError(
                f"n_instructions must be non-negative, got {self.n_instructions}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "mix": self.mix,
            "n_instructions": self.n_instructions,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentPoint":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"ExperimentPoint.from_dict: unknown key(s) {unknown}"
            )
        kwargs = dict(data)
        if "config" in kwargs and not isinstance(kwargs["config"], ProcessorConfig):
            kwargs["config"] = ProcessorConfig.from_dict(kwargs["config"])
        return cls(**kwargs)

    def key(self) -> str:
        """Content hash identifying this point in the result store.

        Folds in :data:`ENGINE_VERSION` so results computed by an older
        timing model are cache *misses*, never silently reused.  Memoized
        per instance (all fields are frozen): the runner consults keys on
        every dedup, cache-hit, dispatch, and frontier-flush step, and
        re-hashing the full nested config each time is pure waste.
        """
        cached = self.__dict__.get("_key")
        if cached is not None and cached[0] == ENGINE_VERSION:
            return cached[1]
        digest = content_digest(
            {"point": self.to_dict(), "engine_version": ENGINE_VERSION}, 24
        )
        object.__setattr__(self, "_key", (ENGINE_VERSION, digest))
        return digest

    def label(self) -> str:
        """Short human-readable identity for logs and progress output."""
        return (
            f"{self.mix}/{self.config.topology.value}"
            f"x{self.config.n_clusters}/{self.config.steering}"
            f"/n{self.n_instructions}/s{self.seed}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a design-space sweep.

    ``overrides`` maps a dotted ``ProcessorConfig`` path to the *axis* of
    values it sweeps over (every entry multiplies the grid); ``base`` maps
    dotted paths to a single fixed value applied to every point.
    """

    name: str = "sweep"
    topologies: Tuple[str, ...] = ("ring", "conv")
    cluster_counts: Tuple[int, ...] = (2, 4, 8)
    steerings: Tuple[str, ...] = ("dependence",)
    mixes: Tuple[str, ...] = ("int_heavy",)
    n_instructions: int = 20_000
    seeds: Tuple[int, ...] = (2005,)
    overrides: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    base: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Normalise sequences (callers pass lists; JSON specs always do).
        object.__setattr__(self, "topologies", tuple(self.topologies))
        object.__setattr__(self, "cluster_counts", tuple(self.cluster_counts))
        object.__setattr__(self, "steerings", tuple(self.steerings))
        object.__setattr__(self, "mixes", tuple(self.mixes))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self,
                "overrides",
                tuple((k, tuple(v)) for k, v in self.overrides.items()),
            )
        else:
            object.__setattr__(
                self, "overrides", tuple((k, tuple(v)) for k, v in self.overrides)
            )
        if isinstance(self.base, Mapping):
            object.__setattr__(self, "base", tuple(self.base.items()))
        else:
            object.__setattr__(self, "base", tuple(tuple(kv) for kv in self.base))

        for axes_name in ("topologies", "cluster_counts", "steerings", "mixes", "seeds"):
            if not getattr(self, axes_name):
                raise ConfigurationError(f"SweepSpec.{axes_name} must not be empty")
        for topo in self.topologies:
            try:
                Topology(topo)
            except ValueError:
                valid = [t.value for t in Topology]
                raise ConfigurationError(
                    f"SweepSpec: unknown topology {topo!r}; valid: {valid}"
                ) from None
        for steering in self.steerings:
            if steering not in STEERING_REGISTRY:
                raise ConfigurationError(
                    f"SweepSpec: unknown steering {steering!r}; "
                    f"registered policies: {list(list_policies())}"
                )
        for mix in self.mixes:
            get_mix(mix)
        for path, _values in tuple(self.overrides) + tuple(self.base):
            root = path.split(".", 1)[0]
            if root in _AXIS_FIELDS:
                raise ConfigurationError(
                    f"SweepSpec: {path!r} cannot be overridden — "
                    f"{root!r} is a sweep axis (use the axis field instead)"
                )
        for path, values in self.overrides:
            if not values:
                raise ConfigurationError(
                    f"SweepSpec: override axis {path!r} has no values"
                )

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "topologies": list(self.topologies),
            "cluster_counts": list(self.cluster_counts),
            "steerings": list(self.steerings),
            "mixes": list(self.mixes),
            "n_instructions": self.n_instructions,
            "seeds": list(self.seeds),
            "overrides": {path: list(values) for path, values in self.overrides},
            "base": {path: value for path, value in self.base},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"SweepSpec.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        return cls(**dict(data))

    # -- expansion --------------------------------------------------------
    def n_points(self) -> int:
        total = (
            len(self.mixes)
            * len(self.topologies)
            * len(self.cluster_counts)
            * len(self.steerings)
            * len(self.seeds)
        )
        for _path, values in self.overrides:
            total *= len(values)
        return total

    def expand(self) -> List[ExperimentPoint]:
        """Materialise the grid, in deterministic (declaration) order."""
        base_tree = ProcessorConfig().to_dict()
        # ``to_dict`` omits an all-default energy block (the digest-stability
        # rule), but dotted override paths like ``energy.enabled`` can only
        # address existing keys — seed the defaults so energy sweeps work.
        # Points that leave the block at its defaults serialize without it,
        # so non-energy grids keep their pre-energy content-hash keys.
        base_tree.setdefault("energy", EnergyConfig().to_dict())
        for path, value in self.base:
            _set_path(base_tree, path, value)
        override_paths = [path for path, _values in self.overrides]
        override_axes = [values for _path, values in self.overrides]

        points: List[ExperimentPoint] = []
        for mix, topo, n_clusters, steering, seed in itertools.product(
            self.mixes, self.topologies, self.cluster_counts,
            self.steerings, self.seeds,
        ):
            for combo in itertools.product(*override_axes):
                tree = json.loads(canonical_json(base_tree))  # deep copy
                for path, value in zip(override_paths, combo):
                    _set_path(tree, path, value)
                tree["topology"] = topo
                tree["n_clusters"] = n_clusters
                tree["steering"] = steering
                points.append(
                    ExperimentPoint(
                        config=ProcessorConfig.from_dict(tree),
                        mix=mix,
                        n_instructions=self.n_instructions,
                        seed=seed,
                    )
                )
        return points


def smoke_spec(n_instructions: int = 2_000) -> SweepSpec:
    """The CI grid: 2 mixes x 2 topologies x 3 cluster counts x 2 steerings
    = 24 points, small enough to finish in seconds."""
    return SweepSpec(
        name="smoke",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4, 8),
        steerings=("dependence", "round_robin"),
        mixes=("int_heavy", "memory_bound"),
        n_instructions=n_instructions,
        seeds=(2005,),
    )


def paper_spec(n_instructions: int = 100_000) -> SweepSpec:
    """The full paper-style grid: every mix and every *registered* steering
    policy (plugins included), ring and conv, 2/4/8 clusters, three seeds."""
    from repro.workloads import list_mixes

    return SweepSpec(
        name="paper",
        topologies=("ring", "conv"),
        cluster_counts=(2, 4, 8),
        steerings=list_policies(),
        mixes=list_mixes(),
        n_instructions=n_instructions,
        seeds=(2005, 2006, 2007),
    )


__all__ = ["ExperimentPoint", "SweepSpec", "paper_spec", "smoke_spec"]
