"""Aggregate a result store into paper-style tables.

Three tables mirror the shape of the paper's evaluation:

* **IPC vs cluster count** — mean IPC per (mix, steering, cluster count)
  for RING and CONV side by side, with the RING/CONV ratio (the paper's
  headline comparison);
* **RING/CONV relative IPC** — the ratio pivoted into one row per
  (mix, steering) and one column per cluster count;
* **Communication by steering policy** — messages per instruction, mean
  hop distance and the hop-distance distribution per (steering, topology).

When the store holds energy-model results (``repro.energy``), two more
tables cover the paper's actual motivation — energy, not just IPC:

* **Energy per instruction vs cluster count** — mean EPI per (mix,
  steering, cluster count), RING and CONV side by side with the ratio;
* **Energy breakdown** — per-component EPI share per (steering, topology).

Seeds are averaged (arithmetic mean); everything else stays a separate row.
Output is markdown (one document) and CSV (one file per table).
"""

from __future__ import annotations

import csv
import io
import os
from collections import defaultdict
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import StoreError
from repro.energy import ENERGY_COMPONENTS
from repro.sweep.store import ResultStore


@dataclass(frozen=True)
class ResultRow:
    """One store record flattened to the fields the tables consume.

    ``energy`` is the sorted ``(component, units)`` breakdown for records
    computed with the energy model enabled, ``None`` otherwise.
    """

    mix: str
    topology: str
    n_clusters: int
    steering: str
    seed: int
    n_instructions: int
    cycles: int
    communications: int
    hop_histogram: Tuple[Tuple[int, int], ...]
    energy: Optional[Tuple[Tuple[str, int], ...]] = None

    @property
    def ipc(self) -> float:
        return self.n_instructions / self.cycles if self.cycles else 0.0

    @property
    def comm_per_instr(self) -> float:
        if not self.n_instructions:
            return 0.0
        return self.communications / self.n_instructions

    @property
    def hops_mean(self) -> float:
        total = sum(count for _d, count in self.hop_histogram)
        if not total:
            return 0.0
        return sum(d * count for d, count in self.hop_histogram) / total

    @cached_property
    def _energy_map(self) -> Dict[str, int]:
        # Built once per row: the tables probe ~10 components per row.
        return dict(self.energy) if self.energy is not None else {}

    @property
    def energy_total(self) -> int:
        if self.energy is None:
            return 0
        return self._energy_map["total"]

    @property
    def epi(self) -> float:
        """Energy units per instruction (0.0 without energy data)."""
        if not self.n_instructions:
            return 0.0
        return self.energy_total / self.n_instructions

    def energy_component(self, component: str) -> int:
        return self._energy_map.get(component, 0)


@dataclass
class Table:
    """A titled rectangular table renderable as markdown or CSV."""

    title: str
    slug: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)

    def to_markdown(self) -> str:
        def cell(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4f}"
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(cell(v) for v in row) + " |")
        return "\n".join(lines)

    def to_csv_text(self) -> str:
        """The table as CSV text — exactly what :meth:`write_csv` writes.

        One rendering path for both the file on disk and the service's
        ``GET /jobs/<id>/report?format=csv`` endpoint, so the two can
        never drift.
        """
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(
                [f"{v:.6f}" if isinstance(v, float) else v for v in row]
            )
        return buf.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="", encoding="utf-8") as fh:
            fh.write(self.to_csv_text())


def load_rows(store: ResultStore) -> List[ResultRow]:
    """Flatten every store record; malformed records raise StoreError."""
    return rows_from_records(store.records(), where=repr(store.path))


def rows_from_records(
    records: Iterable[Dict[str, Any]], where: str = "<records>"
) -> List[ResultRow]:
    """Flatten an in-memory iterable of result records into table rows.

    The record-level half of :func:`load_rows`, split out so incremental
    reports (the service rendering tables from the subset of a job's
    points completed so far) share one parsing/validation path with the
    CLI.  ``where`` names the source in error messages.
    """
    rows: List[ResultRow] = []
    for record in records:
        try:
            point = record["point"]
            config = point["config"]
            result = record["result"]
            energy_data = result.get("energy")
            if energy_data is not None:
                # A breakdown missing any component is a corrupt record and
                # must fail here (KeyError -> StoreError), not load silently
                # and skew the share tables downstream.
                for component in ENERGY_COMPONENTS + ("total",):
                    int(energy_data[component])
            rows.append(
                ResultRow(
                    mix=point["mix"],
                    topology=config["topology"],
                    n_clusters=int(config["n_clusters"]),
                    steering=config["steering"],
                    seed=int(point["seed"]),
                    n_instructions=int(result["n_instructions"]),
                    cycles=int(result["cycles"]),
                    communications=int(result["communications"]),
                    hop_histogram=tuple(
                        sorted(
                            (int(d), int(c))
                            for d, c in result["hop_histogram"].items()
                        )
                    ),
                    energy=tuple(
                        sorted(
                            (str(comp), int(units))
                            for comp, units in energy_data.items()
                        )
                    ) if energy_data is not None else None,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(
                f"result store {where}: record "
                f"{record.get('key', '<unkeyed>')!r} is not a sweep result "
                f"({exc!r})"
            ) from None
    return rows


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _group_ipc(
    rows: Sequence[ResultRow],
) -> Dict[Tuple[str, str, int, str], float]:
    """Seed-averaged IPC keyed by (mix, steering, n_clusters, topology)."""
    acc: Dict[Tuple[str, str, int, str], List[float]] = defaultdict(list)
    for row in rows:
        acc[(row.mix, row.steering, row.n_clusters, row.topology)].append(row.ipc)
    return {key: _mean(vals) for key, vals in acc.items()}


def ipc_vs_clusters_table(rows: Sequence[ResultRow]) -> Table:
    """Mean IPC per cluster count, RING and CONV side by side."""
    ipc = _group_ipc(rows)
    table = Table(
        title="IPC vs cluster count",
        slug="ipc_vs_clusters",
        columns=["mix", "steering", "n_clusters",
                 "ring_ipc", "conv_ipc", "ring/conv"],
    )
    groups = sorted({(m, s, n) for m, s, n, _t in ipc})
    for mix, steering, n_clusters in groups:
        ring = ipc.get((mix, steering, n_clusters, "ring"))
        conv = ipc.get((mix, steering, n_clusters, "conv"))
        ratio = ring / conv if ring is not None and conv else None
        table.rows.append([
            mix, steering, n_clusters,
            ring if ring is not None else "-",
            conv if conv is not None else "-",
            ratio if ratio is not None else "-",
        ])
    return table


def relative_ipc_table(rows: Sequence[ResultRow]) -> Table:
    """RING/CONV IPC ratio, one column per cluster count."""
    ipc = _group_ipc(rows)
    counts = sorted({n for _m, _s, n, _t in ipc})
    table = Table(
        title="RING/CONV relative IPC",
        slug="ring_vs_conv",
        columns=["mix", "steering"] + [f"x{n}" for n in counts],
    )
    for mix, steering in sorted({(m, s) for m, s, _n, _t in ipc}):
        row: List[Any] = [mix, steering]
        for n_clusters in counts:
            ring = ipc.get((mix, steering, n_clusters, "ring"))
            conv = ipc.get((mix, steering, n_clusters, "conv"))
            row.append(ring / conv if ring is not None and conv else "-")
        table.rows.append(row)
    return table


def communication_table(rows: Sequence[ResultRow]) -> Table:
    """Communication traffic and hop-distance distribution per steering."""
    groups: Dict[Tuple[str, str], List[ResultRow]] = defaultdict(list)
    for row in rows:
        groups[(row.steering, row.topology)].append(row)
    max_hops = 0
    for row in rows:
        for d, _c in row.hop_histogram:
            max_hops = max(max_hops, d)
    table = Table(
        title="Communication by steering policy",
        slug="comm_by_steering",
        columns=["steering", "topology", "comm_per_instr", "hops_mean"]
        + [f"hop{d}_share" for d in range(max_hops + 1)],
    )
    for (steering, topology), members in sorted(groups.items()):
        hop_totals = [0] * (max_hops + 1)
        for row in members:
            for d, count in row.hop_histogram:
                hop_totals[d] += count
        total = sum(hop_totals)
        shares = [count / total if total else 0.0 for count in hop_totals]
        table.rows.append(
            [steering, topology,
             _mean([r.comm_per_instr for r in members]),
             _mean([r.hops_mean for r in members])]
            + shares
        )
    return table


def _group_epi(
    rows: Sequence[ResultRow],
) -> Dict[Tuple[str, str, int, str], float]:
    """Seed-averaged EPI keyed by (mix, steering, n_clusters, topology)."""
    acc: Dict[Tuple[str, str, int, str], List[float]] = defaultdict(list)
    for row in rows:
        acc[(row.mix, row.steering, row.n_clusters, row.topology)].append(row.epi)
    return {key: _mean(vals) for key, vals in acc.items()}


def epi_vs_clusters_table(rows: Sequence[ResultRow]) -> Table:
    """Mean energy per instruction per cluster count, RING vs CONV.

    Only energy-model rows contribute; without any the table is empty.
    """
    energy_rows = [row for row in rows if row.energy is not None]
    epi = _group_epi(energy_rows)
    table = Table(
        title="Energy per instruction vs cluster count",
        slug="epi_vs_clusters",
        columns=["mix", "steering", "n_clusters",
                 "ring_epi", "conv_epi", "ring/conv"],
    )
    groups = sorted({(m, s, n) for m, s, n, _t in epi})
    for mix, steering, n_clusters in groups:
        ring = epi.get((mix, steering, n_clusters, "ring"))
        conv = epi.get((mix, steering, n_clusters, "conv"))
        ratio = ring / conv if ring is not None and conv else None
        table.rows.append([
            mix, steering, n_clusters,
            ring if ring is not None else "-",
            conv if conv is not None else "-",
            ratio if ratio is not None else "-",
        ])
    return table


def energy_breakdown_table(rows: Sequence[ResultRow]) -> Table:
    """Per-component EPI and component shares per (steering, topology)."""
    energy_rows = [row for row in rows if row.energy is not None]
    groups: Dict[Tuple[str, str], List[ResultRow]] = defaultdict(list)
    for row in energy_rows:
        groups[(row.steering, row.topology)].append(row)
    table = Table(
        title="Energy breakdown by steering policy",
        slug="energy_breakdown",
        columns=["steering", "topology", "epi"]
        + [f"{component}_share" for component in ENERGY_COMPONENTS],
    )
    for (steering, topology), members in sorted(groups.items()):
        total = sum(row.energy_total for row in members)
        shares = [
            sum(row.energy_component(component) for row in members) / total
            if total else 0.0
            for component in ENERGY_COMPONENTS
        ]
        table.rows.append(
            [steering, topology, _mean([row.epi for row in members])] + shares
        )
    return table


def build_tables(rows: Sequence[ResultRow]) -> List[Table]:
    tables = [
        ipc_vs_clusters_table(rows),
        relative_ipc_table(rows),
        communication_table(rows),
    ]
    if any(row.energy is not None for row in rows):
        tables.append(epi_vs_clusters_table(rows))
        tables.append(energy_breakdown_table(rows))
    return tables


def render_markdown(
    tables: Sequence[Table],
    store: Optional[ResultStore] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> str:
    lines = ["# Sweep report", ""]
    if store is not None:
        lines.append(f"- store: `{store.path}` ({len(store)} records)")
    for key, value in (meta or {}).items():
        lines.append(f"- {key}: {value}")
    if len(lines) > 2:
        lines.append("")
    for table in tables:
        lines.append(table.to_markdown())
        lines.append("")
    return "\n".join(lines)


def write_report(store: ResultStore, out_dir: str,
                 meta: Optional[Mapping[str, Any]] = None,
                 tables: Optional[Sequence[Table]] = None) -> Dict[str, str]:
    """Write ``report.md`` plus one CSV per table; returns ``{name: path}``.

    Callers that already built the tables (e.g. to also print one) pass
    them via ``tables`` to avoid re-parsing the store.
    """
    if tables is None:
        tables = build_tables(load_rows(store))
    os.makedirs(out_dir, exist_ok=True)
    paths: Dict[str, str] = {}
    md_path = os.path.join(out_dir, "report.md")
    with open(md_path, "w", encoding="utf-8") as fh:
        fh.write(render_markdown(tables, store=store, meta=meta))
    paths["report.md"] = md_path
    for table in tables:
        csv_path = os.path.join(out_dir, f"{table.slug}.csv")
        table.write_csv(csv_path)
        paths[f"{table.slug}.csv"] = csv_path
    return paths


__all__ = [
    "ResultRow",
    "Table",
    "build_tables",
    "communication_table",
    "energy_breakdown_table",
    "epi_vs_clusters_table",
    "ipc_vs_clusters_table",
    "load_rows",
    "relative_ipc_table",
    "render_markdown",
    "rows_from_records",
    "write_report",
]
