"""Design-space exploration: grids, sharded execution, cached results.

The sweep subsystem turns the single-run engine into the paper's evaluation
methodology at scale:

* :mod:`repro.sweep.grid` — declarative :class:`SweepSpec` expanded into
  content-addressed :class:`ExperimentPoint` grids;
* :mod:`repro.sweep.runner` — :func:`run_sweep` shards points over worker
  processes with deterministic results, incremental expansion-order
  flushing, and :class:`RetryPolicy`-driven retry/timeout/backoff fault
  handling (see :mod:`repro.faults` for the matching injection harness);
* :mod:`repro.sweep.store` — append-only JSON-lines :class:`ResultStore`
  keyed by content hash, giving free re-runs and resumable sweeps;
* :mod:`repro.sweep.report` — paper-style IPC / communication tables as
  markdown and CSV;
* :mod:`repro.sweep.cli` — the ``python -m repro.sweep`` command.
"""

from repro.sweep.grid import ExperimentPoint, SweepSpec, paper_spec, smoke_spec
from repro.sweep.report import build_tables, load_rows, render_markdown, write_report
from repro.sweep.runner import (
    FailureRecord,
    RetryPolicy,
    SweepInterrupted,
    SweepSummary,
    default_workers,
    execute_point,
    run_sweep,
)
from repro.sweep.store import ResultStore

__all__ = [
    "ExperimentPoint",
    "FailureRecord",
    "ResultStore",
    "RetryPolicy",
    "SweepInterrupted",
    "SweepSpec",
    "SweepSummary",
    "build_tables",
    "default_workers",
    "execute_point",
    "load_rows",
    "paper_spec",
    "render_markdown",
    "run_sweep",
    "smoke_spec",
    "write_report",
]
