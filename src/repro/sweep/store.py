"""Append-only JSON-lines result store.

One line per completed :class:`~repro.sweep.grid.ExperimentPoint`, keyed by
the point's content hash.  The format is deliberately dumb — canonical JSON
(sorted keys, no whitespace), one record per line — so that

* a sweep interrupted mid-write loses at most its unfinished last line,
  which :meth:`ResultStore.load` detects, drops from the loaded view, and
  physically truncates just before the next append (an interior corrupt
  line, by contrast, raises :class:`~repro.common.errors.StoreError`
  because silently dropping completed results would be data loss);
* re-running the same spec appends records in the same order with the same
  bytes, so two fresh runs of one spec produce byte-identical stores — the
  property the determinism tests pin.

Wall-clock timings never enter the store (they would break byte-identity);
the runner reports them in its :class:`~repro.sweep.runner.SweepSummary`.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import StoreConflictError, StoreError
from repro.common.jsonutil import canonical_json


class ResultStore:
    """A keyed, append-only store of sweep result records.

    Records are plain dicts with at least a ``"key"`` entry.  Appending an
    existing key replaces the in-memory record (last-wins, matching what a
    reload would see) and appends a new line; :meth:`compact` rewrites the
    file with one line per live key.
    """

    def __init__(self, path: str, load: bool = True) -> None:
        self.path = path
        self._records: Dict[str, Dict[str, Any]] = {}
        # key -> the record's serialized line (no newline), maintained by
        # load/append/compact.  This is merge()'s conflict reference: an
        # N-shard merge compares candidate bytes against this cache instead
        # of re-serializing every overlapping existing record per shard, so
        # a full fabric merge costs one serialization per *supplied* record
        # — O(total records), not O(shards x store size).
        self._lines: Dict[str, str] = {}
        #: Bytes of truncated tail detected by the last load.
        self.recovered_bytes = 0
        #: Physical record lines in the file (appends included), which can
        #: exceed ``len(self)`` when ``force=True`` re-runs appended
        #: duplicate records for a key; :meth:`compact` reconciles the two.
        self.physical_records = 0
        # Byte offset the file must be cut back to before the next append.
        # Repair is deferred to append() so that purely reading a store
        # (report/list) never mutates the file — a concurrent writer may be
        # mid-append, and what looks like a truncated tail to a reader is
        # that writer's record in flight.
        self._repair_offset: Optional[int] = None
        # File size this object has accounted for (bytes read by the last
        # load() plus bytes it appended itself).  read_record() compares it
        # against the on-disk size to detect *other* writers cheaply — one
        # stat per miss instead of one full re-read per miss.
        self._seen_size = 0
        # Serializes load/append/compact/read_record across threads: the
        # service appends from its job-runner thread while the event loop
        # serves reads from the same object.  Cross-*process* readers are
        # protected by the append discipline instead (a record line is
        # written and flushed in one call, and the trailing-newline rule
        # makes a torn tail invisible to load()).
        self._lock = threading.RLock()
        if load:
            self.load()

    # -- persistence ------------------------------------------------------
    def load(self) -> "ResultStore":
        """(Re)read the backing file, detecting a truncated final line.

        A truncated tail (interrupted append) is dropped from the in-memory
        view and scheduled for physical truncation on the next
        :meth:`append`; the file itself is not modified by loading.
        """
        with self._lock:
            return self._load_locked()

    def _load_locked(self) -> "ResultStore":
        self._records = {}
        self._lines = {}
        self.recovered_bytes = 0
        self.physical_records = 0
        self._repair_offset = None
        self._seen_size = 0
        if not os.path.exists(self.path):
            return self
        with open(self.path, "rb") as fh:
            raw = fh.read()
        total = len(raw)
        self._seen_size = total
        body = raw
        if body and not body.endswith(b"\n"):
            # A crash after writing a record's bytes but before its newline
            # leaves a final line that may *parse* as a complete record —
            # but it is still an unfinished append: taking it live would
            # make the next append concatenate onto the unterminated line
            # and corrupt the file.  Treat everything after the last
            # newline as a recoverable tail, whatever it contains.
            cut = body.rfind(b"\n") + 1
            self.recovered_bytes = total - cut
            self._repair_offset = cut
            body = body[:cut]
        offset = 0
        entries: List[Tuple[int, bytes]] = []  # (start offset, line bytes)
        for line in body.split(b"\n"):
            entries.append((offset, line))
            offset += len(line) + 1
        for idx, (start, line) in enumerate(entries):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "key" not in record:
                    raise ValueError("record is not an object with a 'key'")
            except (ValueError, UnicodeDecodeError) as exc:
                is_last = all(not rest.strip() for _s, rest in entries[idx + 1:])
                if is_last:
                    self.recovered_bytes = total - start
                    self._repair_offset = start
                    return self
                raise StoreError(
                    f"result store {self.path!r}: corrupt interior record at "
                    f"byte {start} ({exc}); refusing to load — the file needs "
                    "manual repair (a truncated *final* line would have been "
                    "recovered automatically)"
                ) from None
            self._records[record["key"]] = record
            self._lines[record["key"]] = line.decode("utf-8")
            self.physical_records += 1
        return self

    def append(self, record: Dict[str, Any]) -> None:
        """Persist ``record`` (which must carry a ``"key"``) durably."""
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise StoreError(
                f"result store {self.path!r}: record must have a non-empty "
                f"string 'key', got {key!r}"
            )
        self._append_line(key, record, canonical_json(record))

    def _append_line(self, key: str, record: Dict[str, Any],
                     line: str) -> None:
        """Append a pre-serialized record (``line`` = its canonical JSON,
        no newline) — merge() passes the line it already computed for the
        conflict scan, so a merged record is serialized exactly once."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with self._lock:
            if self._repair_offset is not None:
                with open(self.path, "r+b") as fh:
                    fh.truncate(self._repair_offset)
                self._seen_size = self._repair_offset
                self._repair_offset = None
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._records[key] = record
            self._lines[key] = line
            self.physical_records += 1
            self._seen_size += len(line.encode("utf-8")) + 1

    def merge(self, records: Iterable[Dict[str, Any]]) -> int:
        """Fold shard records in; returns how many were newly appended.

        The merge discipline the distributed fabric rests on:

        * a record whose key is absent is appended (in iteration order, so
          callers control the file layout — the fabric merger feeds records
          strictly in expansion order);
        * a record whose key is present with **byte-identical** canonical
          JSON is skipped silently — at-least-once delivery (a requeued
          shard computed twice, a late result from an expired lease) is
          expected and harmless;
        * a record whose key is present with **different** bytes raises
          :class:`~repro.common.errors.StoreConflictError` before anything
          from this call is appended — a torn, corrupted, or dishonest
          shard must never contaminate the store.

        The conflict scan runs over *all* supplied records first (including
        duplicates within the batch itself), so a failed merge leaves the
        store exactly as it was.
        """
        batch: List[Tuple[str, Dict[str, Any], str]] = []
        with self._lock:
            staged: Dict[str, str] = {}
            for record in records:
                key = record.get("key")
                if not isinstance(key, str) or not key:
                    raise StoreError(
                        f"result store {self.path!r}: merge record must have "
                        f"a non-empty string 'key', got {key!r}"
                    )
                line = canonical_json(record)
                against = self._lines.get(key)
                if against is None:
                    against = staged.get(key)
                if against is not None:
                    if against != line:
                        raise StoreConflictError(
                            f"result store {self.path!r}: conflicting record "
                            f"for key {key!r} — existing and merged bytes "
                            "differ; refusing to merge (corrupt or dishonest "
                            "producer)"
                        )
                    continue
                staged[key] = line
                batch.append((key, record, line))
            for key, record, line in batch:
                self._append_line(key, record, line)
        return len(batch)

    def compact(self) -> int:
        """Rewrite the file with exactly one line per live key.

        The live view is *last-wins*: when a key was appended more than
        once (``force=True`` re-runs), the latest record is the one a
        reload would see, and it is the one compaction keeps.  Returns the
        number of shadowed duplicate lines dropped from the file.
        """
        with self._lock:
            dropped = self.physical_records - len(self._records)
            tmp = self.path + ".tmp"
            written = 0
            with open(tmp, "w", encoding="utf-8") as fh:
                for key, record in self._records.items():
                    line = canonical_json(record)
                    self._lines[key] = line
                    fh.write(line + "\n")
                    written += len(line.encode("utf-8")) + 1
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._repair_offset = None
            self.physical_records = len(self._records)
            self._seen_size = written
            return dropped

    # -- queries ----------------------------------------------------------
    def read_record(
        self, key: str, default: Optional[Dict[str, Any]] = None
    ) -> Optional[Dict[str, Any]]:
        """Point lookup that sees records appended by *other* writers.

        :meth:`get` consults only this object's in-memory view; a reader
        following a store that another process is appending to (the
        service's read-side endpoints, a ``report`` run against a live
        sweep) needs the on-disk truth.  On a miss the file size is
        compared against the bytes this object has accounted for, and a
        mismatch triggers a full :meth:`load` — so a hit costs a dict
        probe, a stale miss costs one ``stat`` plus one re-read.

        Safe against a concurrent appender: the trailing-newline recovery
        rule means a torn tail (the writer's record in flight) is simply
        invisible — it becomes visible on a later call, once its newline
        lands — and reading never mutates the file (tail repair stays
        deferred to :meth:`append`, which only the owning writer calls).
        """
        with self._lock:
            hit = self._records.get(key)
            if hit is not None:
                return hit
            try:
                size = os.path.getsize(self.path)
            except OSError:
                return default
            if size != self._seen_size:
                self._load_locked()
            return self._records.get(key, default)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str, default: Optional[Dict[str, Any]] = None):
        return self._records.get(key, default)

    def keys(self) -> List[str]:
        return list(self._records)

    def records(self) -> Iterator[Dict[str, Any]]:
        """Records in file (= insertion) order."""
        return iter(self._records.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({self.path!r}, {len(self)} records)"


__all__ = ["ResultStore"]
