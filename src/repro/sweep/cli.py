"""``python -m repro.sweep`` — run, report on, and inspect sweeps.

Subcommands::

    run      expand a spec (JSON file, --smoke, or --paper) and compute every
             point not already in the store, sharded across worker processes
             with retry/timeout/backoff fault handling
    report   aggregate the store into paper-style markdown + CSV tables
    list     print one line per stored result (or the registered mixes)
    compact  rewrite the store with one line per live key (last-wins)

The store is a JSON-lines file (default ``sweeps/store.jsonl``); re-running
any spec against the same store only computes missing points.  Completed
records are flushed incrementally in expansion order, so an interrupted or
crashed run keeps its finished prefix — re-run the same command to resume
(exit status 130 marks an interrupt, 1 a run with permanently-failed
points).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.sweep.grid import SweepSpec, paper_spec, smoke_spec
from repro.sweep.report import build_tables, load_rows, write_report
from repro.sweep.runner import (
    RetryPolicy,
    SweepInterrupted,
    default_workers,
    run_sweep,
)
from repro.sweep.store import ResultStore
from repro.workloads import list_mixes

DEFAULT_STORE = "sweeps/store.jsonl"
DEFAULT_REPORT_DIR = "sweeps/report"


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    chosen = [bool(args.spec), args.smoke, args.paper]
    if sum(chosen) != 1:
        raise ReproError(
            "choose exactly one of --spec FILE, --smoke, --paper"
        )
    if args.smoke:
        return smoke_spec()
    if args.paper:
        return paper_spec()
    # A missing/unreadable file or malformed JSON is an *input* problem, not
    # a bug: surface it as a ReproError so main() prints a clean one-line
    # ``error: ...`` and exits 2 instead of dumping a traceback.
    try:
        with open(args.spec, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read sweep spec {args.spec!r}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ReproError(
            f"sweep spec {args.spec!r} is not UTF-8 text: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"sweep spec {args.spec!r} is not valid JSON: {exc}"
        ) from exc
    return SweepSpec.from_dict(data)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    if args.energy:
        # Enable the per-event energy model (default costs) on every point.
        # Appended last so it wins over any energy.* entry a JSON spec set.
        spec = dataclasses.replace(
            spec, base=tuple(spec.base) + (("energy.enabled", True),)
        )
    points = spec.expand()
    store = ResultStore(args.store)
    if store.recovered_bytes:
        print(f"store: recovered truncated tail "
              f"({store.recovered_bytes} bytes dropped)")
    print(f"spec {spec.name!r}: {len(points)} points -> {args.store}")
    policy = RetryPolicy(
        max_attempts=args.retries + 1,
        backoff_s=args.backoff,
        timeout_s=args.timeout,
    )
    try:
        summary = run_sweep(
            points, store,
            workers=args.workers,
            force=args.force,
            log=print if args.verbose else None,
            policy=policy,
        )
    except SweepInterrupted as exc:
        print(exc.summary.describe())
        print(
            "interrupted — finished points are flushed to the store; "
            "re-run the same command to resume",
            file=sys.stderr,
        )
        return 130
    print(summary.describe())
    if summary.failures:
        for failure in summary.failures.values():
            print(
                f"FAILED {failure.label}: {failure.error}: "
                f"{failure.message} ({failure.attempts} attempt(s), "
                f"{failure.elapsed_s:.2f}s)",
                file=sys.stderr,
            )
        print(
            f"{len(summary.failures)} point(s) permanently failed; the "
            "store keeps the clean prefix before the first failure — "
            "re-run the same command to resume once the cause is fixed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not len(store):
        print(f"store {args.store!r} is empty; run a sweep first",
              file=sys.stderr)
        return 1
    tables = build_tables(load_rows(store))
    paths = write_report(store, args.out, tables=tables)
    # The headline tables go to stdout; the files carry the rest.
    for table in tables:
        if table.slug in ("ring_vs_conv", "epi_vs_clusters"):
            print(table.to_markdown())
            print()
    for name in sorted(paths):
        print(f"wrote {paths[name]}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if store.recovered_bytes:
        print(f"store: dropping truncated tail "
              f"({store.recovered_bytes} bytes)")
    dropped = store.compact()
    print(
        f"compacted {args.store}: {len(store)} live record(s), "
        f"{dropped} shadowed duplicate line(s) dropped"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.mixes:
        for name in list_mixes():
            print(name)
        return 0
    store = ResultStore(args.store)
    for record in store.records():
        point = record["point"]
        config = point["config"]
        result = record["result"]
        cycles = result["cycles"]
        n = result["n_instructions"]
        ipc = n / cycles if cycles else 0.0
        print(
            f"{record['key']}  {point['mix']:<13s} "
            f"{config['topology']:<4s} x{config['n_clusters']:<2d} "
            f"{config['steering']:<12s} seed={point['seed']:<6d} "
            f"n={n:<8d} ipc={ipc:.4f}"
        )
    print(f"{len(store)} record(s) in {args.store}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="expand a spec and compute its points")
    run_p.add_argument("--spec", help="JSON sweep spec file")
    run_p.add_argument("--smoke", action="store_true",
                       help="built-in 24-point CI grid")
    run_p.add_argument("--paper", action="store_true",
                       help="built-in full paper-style grid")
    run_p.add_argument("--store", default=DEFAULT_STORE)
    run_p.add_argument("--workers", type=int, default=None,
                       help=f"worker processes (default {default_workers()})")
    run_p.add_argument("--force", action="store_true",
                       help="recompute cached points (records are appended "
                            "again, last-wins on reload; run `compact` to "
                            "deduplicate the store file afterwards)")
    run_p.add_argument("--retries", type=int, default=2,
                       help="retries per failing point beyond the first "
                            "attempt (default 2); the final permitted "
                            "attempt runs in-process as graceful "
                            "degradation")
    run_p.add_argument("--timeout", type=float, default=None,
                       help="per-point timeout in seconds for "
                            "pool-dispatched attempts (default: none); a "
                            "timed-out point is retried and its hung or "
                            "dead worker pool is replaced")
    run_p.add_argument("--backoff", type=float, default=0.1,
                       help="base backoff seconds before a retry, doubling "
                            "per further attempt (default 0.1; "
                            "deterministic, no jitter)")
    run_p.add_argument("--energy", action="store_true",
                       help="enable the per-event energy model (default "
                            "costs) on every point; energy-enabled points "
                            "have their own cache keys")
    run_p.add_argument("--verbose", action="store_true",
                       help="log every computed point")
    run_p.set_defaults(func=_cmd_run)

    report_p = sub.add_parser("report", help="write markdown + CSV tables")
    report_p.add_argument("--store", default=DEFAULT_STORE)
    report_p.add_argument("--out", default=DEFAULT_REPORT_DIR)
    report_p.set_defaults(func=_cmd_report)

    list_p = sub.add_parser("list", help="print stored results (or mixes)")
    list_p.add_argument("--store", default=DEFAULT_STORE)
    list_p.add_argument("--mixes", action="store_true",
                        help="list registered workload mixes instead")
    list_p.set_defaults(func=_cmd_list)

    compact_p = sub.add_parser(
        "compact",
        help="rewrite the store with one line per live key (last-wins)",
        description="Deduplicate the append-only store file.  `run --force` "
                    "re-runs append a fresh record for every recomputed "
                    "key; on load the *last* appended record for a key "
                    "wins, and compaction rewrites the file keeping "
                    "exactly that last-wins view — shadowed duplicate "
                    "lines and any recovered truncated tail are dropped, "
                    "live results are never discarded.",
    )
    compact_p.add_argument("--store", default=DEFAULT_STORE)
    compact_p.set_defaults(func=_cmd_compact)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C outside run_sweep's managed window (expansion, reporting,
        # compaction) — nothing partial to save, just exit convention 130.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout went away (e.g. `... list | head`); exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


__all__ = ["build_parser", "main"]
