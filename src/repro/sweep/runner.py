"""Sharded execution of experiment points with store-backed caching.

:func:`run_sweep` takes expanded :class:`~repro.sweep.grid.ExperimentPoint`
lists, skips every point whose key is already in the
:class:`~repro.sweep.store.ResultStore` (a *cache hit*), shards the rest
across ``multiprocessing`` workers, and appends the computed records to the
store **in expansion order** — never completion order — so identical sweeps
yield byte-identical stores regardless of worker count or scheduling.

Determinism: a point's simulation depends only on ``(config, mix,
n_instructions, seed)`` — trace generation derives its stream from the
point's own seed via :func:`repro.common.rng.spawn_rng` and the kernel is
seedless — so sharding cannot change results, only wall-clock time.
Per-point wall-clock timings are returned in :class:`SweepSummary` (and
deliberately kept out of the store, which must stay reproducible).

Each worker process keeps two warm caches: the LRU trace memo here (a grid
that varies only machine config reuses one generated trace for all its
points) and the per-config compiled-kernel registry in
:mod:`repro.engine.codegen` (points sharing a structural specialization key
share one compiled kernel).  Neither affects results — only wall-clock.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.pipeline import Pipeline, resolve_kernel_variant
from repro.engine.trace import Trace
from repro.sweep.grid import ExperimentPoint
from repro.sweep.store import ResultStore
from repro.workloads import (
    MIX_REGISTRY,
    WorkloadMix,
    generate_trace,
    get_mix,
    register_mix,
)

#: Smallest shard worth forking a worker pool for; below this the fork +
#: import cost dwarfs the simulation work.
MIN_POINTS_PER_WORKER = 2

#: Per-process bound on memoized traces (see :func:`_cached_trace`).
TRACE_CACHE_SIZE = 8

#: ``(mix_name, n_instructions, seed) -> (mix_definition, trace)``.
#: Process-global on purpose: a grid that varies only the config re-uses one
#: generated trace across all its points instead of regenerating it per
#: point, and each pool worker warms its own copy.  The mix definition is
#: kept alongside the trace so a ``register_mix(..., overwrite=True)`` that
#: changes a mix's parameters busts the entry instead of serving a trace
#: generated under the old definition.  (The per-config *kernel* cache lives
#: in :mod:`repro.engine.codegen`'s registry, which is process-global the
#: same way.)
_TRACE_CACHE: "OrderedDict[Tuple[str, int, int], Tuple[WorkloadMix, Trace]]" = (
    OrderedDict()
)


def _cached_trace(mix_name: str, n_instructions: int, seed: int) -> Trace:
    """LRU-memoized :func:`repro.workloads.generate_trace`."""
    mix = get_mix(mix_name)
    key = (mix_name, n_instructions, seed)
    hit = _TRACE_CACHE.get(key)
    if hit is not None and hit[0] == mix:
        _TRACE_CACHE.move_to_end(key)
        return hit[1]
    trace = generate_trace(mix_name, n_instructions, seed=seed)
    _TRACE_CACHE[key] = (mix, trace)
    if len(_TRACE_CACHE) > TRACE_CACHE_SIZE:
        _TRACE_CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests and memory-sensitive embedders)."""
    _TRACE_CACHE.clear()


def default_workers() -> int:
    """Default worker-process count: at least two (so sharding is always
    exercised), at most eight, scaled to the machine in between."""
    return max(2, min(8, multiprocessing.cpu_count()))


def _payload_for(point: ExperimentPoint) -> Dict[str, Any]:
    """Self-contained worker payload for one point.

    Carries the full :class:`~repro.workloads.WorkloadMix` definition, not
    just its name: under the ``spawn`` start method (macOS/Windows default)
    workers re-import the package with a pristine registry, so a mix added
    via :func:`register_mix` in the parent would otherwise be unknown there.
    """
    payload = point.to_dict()
    payload["_mix_definition"] = get_mix(point.mix)
    return payload


def execute_point(payload: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Run one experiment point; returns ``(record, elapsed_seconds)``.

    Module-level and picklable-in/picklable-out so it crosses process
    boundaries under any start method.  ``payload`` is
    :meth:`ExperimentPoint.to_dict` output, optionally with a
    ``"_mix_definition"`` entry (see :func:`_payload_for`) registered here
    if this interpreter does not know the mix yet.
    """
    t0 = time.perf_counter()
    data = dict(payload)
    mix_definition = data.pop("_mix_definition", None)
    kernel_variant = data.pop("_kernel_variant", None)
    if mix_definition is not None and mix_definition.name not in MIX_REGISTRY:
        register_mix(mix_definition)
    point = ExperimentPoint.from_dict(data)
    trace = _cached_trace(point.mix, point.n_instructions, point.seed)
    record = Pipeline(point.config, kernel_variant=kernel_variant).run_record(trace)
    # run_record names the kernel variant that computed it (provenance for
    # API callers), but the variant must never reach the store: stores are
    # required to be byte-identical whichever variant computed them — CI
    # cmp-checks generic-vs-specialized store files.
    record.pop("kernel_variant", None)
    record["key"] = point.key()
    record["point"] = point.to_dict()
    return record, time.perf_counter() - t0


@dataclass
class SweepSummary:
    """What one :func:`run_sweep` call did."""

    n_points: int
    n_cached: int
    n_computed: int
    n_workers: int
    elapsed_s: float
    #: ``point key -> wall-clock seconds`` for freshly computed points only.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Resolved kernel variant the computed points ran under.  Summary-only
    #: provenance: the variant never enters the result store (both variants
    #: produce identical records by contract).
    kernel_variant: str = ""

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cached / self.n_points if self.n_points else 0.0

    def describe(self) -> str:
        slowest = ""
        if self.timings:
            worst_key = max(self.timings, key=self.timings.__getitem__)
            slowest = (
                f"; slowest point {self.timings[worst_key]*1e3:.0f} ms"
            )
        variant = f" [{self.kernel_variant}]" if self.kernel_variant else ""
        return (
            f"{self.n_points} points: {self.n_cached} cached, "
            f"{self.n_computed} computed on {self.n_workers} worker(s)"
            f"{variant} in {self.elapsed_s:.2f}s{slowest}"
        )


def run_sweep(
    points: Sequence[ExperimentPoint],
    store: ResultStore,
    workers: Optional[int] = None,
    force: bool = False,
    log: Optional[Callable[[str], None]] = None,
    kernel_variant: Optional[str] = None,
) -> SweepSummary:
    """Compute every point not already in ``store``; return a summary.

    ``force=True`` recomputes cached points (their records are appended
    again; last-wins on reload).  ``workers`` defaults to
    :func:`default_workers`; the pool is skipped entirely when the pending
    shard is too small to amortise process startup.  ``kernel_variant``
    selects the simulation kernel per worker (see
    :class:`repro.engine.Pipeline`); both variants produce identical
    records, so the store contents do not depend on it.
    """
    t0 = time.perf_counter()
    n_workers = default_workers() if workers is None else max(1, int(workers))
    say = log if log is not None else (lambda _msg: None)

    # Deduplicate while preserving expansion order: a grid with repeated
    # points (e.g. overlapping specs) must not compute the same key twice.
    unique: List[Tuple[str, ExperimentPoint]] = []
    seen = set()
    for point in points:
        key = point.key()
        if key not in seen:
            seen.add(key)
            unique.append((key, point))

    pending = [
        (key, point) for key, point in unique if force or key not in store
    ]
    n_cached = len(unique) - len(pending)
    say(f"sweep: {len(unique)} points, {n_cached} cache hits, "
        f"{len(pending)} to compute")

    timings: Dict[str, float] = {}
    if pending:
        payloads = [_payload_for(point) for _key, point in pending]
        if kernel_variant is not None:
            for payload in payloads:
                payload["_kernel_variant"] = kernel_variant
        use_pool = (
            n_workers > 1
            and len(pending) >= n_workers * MIN_POINTS_PER_WORKER
        )
        if use_pool:
            with multiprocessing.Pool(processes=n_workers) as pool:
                outcomes = pool.map(execute_point, payloads, chunksize=1)
        else:
            outcomes = [execute_point(payload) for payload in payloads]
        # Append in expansion order — map() already preserves it — so the
        # store bytes do not depend on scheduling.
        for (key, point), (record, elapsed) in zip(pending, outcomes):
            store.append(record)
            timings[key] = elapsed
            say(f"  done {point.label()} ({elapsed*1e3:.0f} ms)")

    return SweepSummary(
        n_points=len(unique),
        n_cached=n_cached,
        n_computed=len(pending),
        n_workers=n_workers,
        elapsed_s=time.perf_counter() - t0,
        timings=timings,
        kernel_variant=resolve_kernel_variant(kernel_variant),
    )


__all__ = [
    "MIN_POINTS_PER_WORKER",
    "TRACE_CACHE_SIZE",
    "SweepSummary",
    "clear_trace_cache",
    "default_workers",
    "execute_point",
    "run_sweep",
]
