"""Fault-tolerant sharded execution of experiment points.

:func:`run_sweep` takes expanded :class:`~repro.sweep.grid.ExperimentPoint`
lists, skips every point whose key is already in the
:class:`~repro.sweep.store.ResultStore` (a *cache hit*), and dispatches the
rest to ``multiprocessing`` workers point by point.  Completions arrive in
whatever order the workers finish; an **expansion-order flush frontier**
buffers out-of-order results and appends each record the moment every
earlier point has been appended, so

* partial progress is durable within moments of being computed — a crash
  at point N of M keeps the N-1 finished prefix on disk, and
* the store's bytes are identical to a single-process fault-free run at
  any worker count, failure pattern, or interrupt point: what reaches the
  file is always an expansion-order prefix of the full sweep, and a re-run
  resumes exactly where that prefix ends via content-key cache hits.

The frontier itself is :class:`repro.exec.frontier.FlushFrontier` — the
shared execution-plane primitive the fabric coordinator's shard merge
frontier is also built on — parameterized here with an emit hook that
appends records to the store.  (Before :mod:`repro.exec` existed this
module carried its own private frontier implementation; anything that
imported those internals should import :mod:`repro.exec` instead.)

Failures are handled per point by a :class:`RetryPolicy` (now defined in
:mod:`repro.exec.attempts` and re-exported here): failed attempts
retry with deterministic exponential backoff, a per-point timeout detects
hung *and* hard-died workers (a task whose worker was killed never
completes — the timeout is its obituary), a timed-out pool is replaced
wholesale (the only safe recovery ``multiprocessing.Pool`` allows), and
the final permitted attempt runs in-process as graceful degradation so a
pathological pool cannot starve a point.  A point that exhausts its
attempts becomes a :class:`FailureRecord` in :class:`SweepSummary` —
structured provenance (attempts, error class, elapsed) that never enters
the store — and blocks the frontier at its expansion index so the
prefix-layout guarantee survives even permanent failures.

SIGINT/SIGTERM tear the pool down (terminate + join — no leaked workers),
leave the frontier's flushed prefix on disk, and surface as
:class:`SweepInterrupted` carrying the partial summary; re-running the
same sweep resumes from the stored prefix.

Determinism: a point's simulation depends only on ``(config, mix,
n_instructions, seed)`` — trace generation derives its stream from the
point's own seed via :func:`repro.common.rng.spawn_rng` and the kernel is
seedless — so scheduling, retries, and failure order cannot change
results, only wall-clock time.  :mod:`repro.faults` piggybacks on
:func:`execute_point` to inject worker exceptions, hangs, and hard deaths
deterministically; the chaos CI job uses it to prove the byte-identity
claim above instead of merely asserting it.

Each worker process keeps two warm caches: the LRU trace memo here (a grid
that varies only machine config reuses one generated trace for all its
points) and the per-config compiled-kernel registry in
:mod:`repro.engine.codegen` (points sharing a structural specialization key
share one compiled kernel).  Neither affects results — only wall-clock.

Under ``kernel_variant="batch"`` the runner adds a scheduling pre-phase:
pending points are grouped by structural specialization key and every
multi-point group is executed through one
:func:`repro.engine.batch.simulate_batch` call (:func:`execute_batch`),
demuxed back into per-point records that feed the same flush frontier.
Batching is pure scheduling: the store bytes are identical to any other
variant's, and a failed batch charges each member one attempt and falls
back to per-point execution, so the retry/timeout machinery above is
unchanged.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError, SimulationError
from repro.engine.batch import simulate_batch
from repro.engine.codegen import specialization_key
from repro.engine.kernel import ENGINE_VERSION
from repro.engine.pipeline import Pipeline, resolve_kernel_variant
from repro.engine.trace import Trace
from repro.exec.attempts import RetryPolicy
from repro.exec.frontier import FlushFrontier, dedup_ordered
from repro.faults import maybe_inject
from repro.sweep.grid import ExperimentPoint
from repro.sweep.store import ResultStore
from repro.workloads import (
    MIX_REGISTRY,
    WorkloadMix,
    generate_trace,
    get_mix,
    register_mix,
)

#: Smallest shard worth forking a worker pool for; below this the fork +
#: import cost dwarfs the simulation work.
MIN_POINTS_PER_WORKER = 2

#: Per-process bound on memoized traces (see :func:`_cached_trace`).
TRACE_CACHE_SIZE = 8

#: Upper bound on lanes per batched kernel call under the ``batch`` variant.
#: Caps the failure domain (one bad lane costs at most this many points one
#: attempt each) and the per-call memory footprint; throughput saturates
#: well before this many lanes for sweep-sized traces.
MAX_BATCH_LANES = 32

#: Sleep between dispatch-loop iterations while results are outstanding.
#: Small enough that flush latency is invisible next to point runtimes,
#: large enough that the orchestrator does not busy-spin.
_POLL_INTERVAL_S = 0.01

#: ``(mix_name, n_instructions, seed) -> (mix_definition, trace)``.
#: Process-global on purpose: a grid that varies only the config re-uses one
#: generated trace across all its points instead of regenerating it per
#: point, and each pool worker warms its own copy.  The mix definition is
#: kept alongside the trace so a ``register_mix(..., overwrite=True)`` that
#: changes a mix's parameters busts the entry instead of serving a trace
#: generated under the old definition.  (The per-config *kernel* cache lives
#: in :mod:`repro.engine.codegen`'s registry, which is process-global the
#: same way.)
_TRACE_CACHE: "OrderedDict[Tuple[str, int, int], Tuple[WorkloadMix, Trace]]" = (
    OrderedDict()
)


def _cached_trace(mix_name: str, n_instructions: int, seed: int) -> Trace:
    """LRU-memoized :func:`repro.workloads.generate_trace`."""
    mix = get_mix(mix_name)
    key = (mix_name, n_instructions, seed)
    hit = _TRACE_CACHE.get(key)
    if hit is not None and hit[0] == mix:
        _TRACE_CACHE.move_to_end(key)
        return hit[1]
    trace = generate_trace(mix_name, n_instructions, seed=seed)
    _TRACE_CACHE[key] = (mix, trace)
    if len(_TRACE_CACHE) > TRACE_CACHE_SIZE:
        _TRACE_CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests and memory-sensitive embedders)."""
    _TRACE_CACHE.clear()


def default_workers() -> int:
    """Default worker-process count: at least two (so sharding is always
    exercised), at most eight, scaled to the machine in between."""
    return max(2, min(8, multiprocessing.cpu_count()))


def _payload_for(point: ExperimentPoint) -> Dict[str, Any]:
    """Self-contained worker payload for one point.

    Carries the full :class:`~repro.workloads.WorkloadMix` definition, not
    just its name: under the ``spawn`` start method (macOS/Windows default)
    workers re-import the package with a pristine registry, so a mix added
    via :func:`register_mix` in the parent would otherwise be unknown there.
    """
    payload = point.to_dict()
    payload["_mix_definition"] = get_mix(point.mix)
    return payload


def execute_point(payload: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Run one experiment point; returns ``(record, elapsed_seconds)``.

    Module-level and picklable-in/picklable-out so it crosses process
    boundaries under any start method.  ``payload`` is
    :meth:`ExperimentPoint.to_dict` output, optionally with a
    ``"_mix_definition"`` entry (see :func:`_payload_for`) registered here
    if this interpreter does not know the mix yet, and a ``"_attempt"``
    counter (1-based) identifying which delivery attempt this is.
    """
    t0 = time.perf_counter()
    data = dict(payload)
    mix_definition = data.pop("_mix_definition", None)
    kernel_variant = data.pop("_kernel_variant", None)
    attempt = data.pop("_attempt", 1)
    if mix_definition is not None and mix_definition.name not in MIX_REGISTRY:
        register_mix(mix_definition)
    point = ExperimentPoint.from_dict(data)
    # Fault-injection hook, armed only when a repro.faults plan is active.
    # Placed before any real work so an injected death or hang costs the
    # runner a whole attempt — the honest worst case.
    maybe_inject(point.key(), attempt)
    trace = _cached_trace(point.mix, point.n_instructions, point.seed)
    record = Pipeline(point.config, kernel_variant=kernel_variant).run_record(trace)
    # run_record names the kernel variant that computed it (provenance for
    # API callers), but the variant must never reach the store: stores are
    # required to be byte-identical whichever variant computed them — CI
    # cmp-checks generic-vs-specialized store files.
    record.pop("kernel_variant", None)
    record["key"] = point.key()
    record["point"] = point.to_dict()
    return record, time.perf_counter() - t0


def execute_batch(
    payloads: Sequence[Dict[str, Any]],
) -> List[Tuple[Dict[str, Any], float]]:
    """Run several experiment points through one batched kernel call.

    The batched sibling of :func:`execute_point`: ``payloads`` are point
    payloads (see there) whose configs share one structural specialization
    key — the runner groups them that way — and the whole group is
    simulated as lock-step lanes of :func:`repro.engine.batch.simulate_batch`.
    Returns one ``(record, elapsed_seconds)`` pair per payload, in order;
    every record is field-for-field identical to what :func:`execute_point`
    would produce for that point (stores must not depend on batching), and
    elapsed is the batch wall-clock split evenly across the lanes.

    Any lane's failure (including an injected fault) fails the whole call —
    the caller charges each member one attempt and falls back to per-point
    execution, so one poisoned point cannot permanently wedge its
    batch-mates.
    """
    t0 = time.perf_counter()
    points: List[ExperimentPoint] = []
    for payload in payloads:
        data = dict(payload)
        mix_definition = data.pop("_mix_definition", None)
        data.pop("_kernel_variant", None)
        attempt = data.pop("_attempt", 1)
        if mix_definition is not None and \
                mix_definition.name not in MIX_REGISTRY:
            register_mix(mix_definition)
        point = ExperimentPoint.from_dict(data)
        maybe_inject(point.key(), attempt)
        points.append(point)
    traces = [
        _cached_trace(p.mix, p.n_instructions, p.seed) for p in points
    ]
    results = simulate_batch(traces, [p.config for p in points])
    per_lane = (time.perf_counter() - t0) / len(points) if points else 0.0
    out: List[Tuple[Dict[str, Any], float]] = []
    for point, trace, result in zip(points, traces, results):
        if result.n_instructions and result.cycles <= 0:
            raise SimulationError(
                f"trace {trace.name!r}: simulation produced no forward "
                "progress"
            )
        record = {
            "engine_version": ENGINE_VERSION,
            "config_digest": point.config.config_digest(),
            "trace": trace.name,
            "result": result.to_dict(),
            "key": point.key(),
            "point": point.to_dict(),
        }
        out.append((record, per_lane))
    return out


@dataclass
class FailureRecord:
    """Provenance of one permanently-failed point (summary-only: failures
    never enter the result store, which holds completed records alone)."""

    key: str
    label: str
    attempts: int
    error: str
    message: str
    elapsed_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "attempts": self.attempts,
            "error": self.error,
            "message": self.message,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class SweepSummary:
    """What one :func:`run_sweep` call did."""

    n_points: int
    n_cached: int
    n_computed: int
    n_workers: int
    elapsed_s: float
    #: ``point key -> wall-clock seconds`` for freshly computed points only.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Resolved kernel variant the computed points ran under.  Summary-only
    #: provenance: the variant never enters the result store (both variants
    #: produce identical records by contract).
    kernel_variant: str = ""
    #: ``point key -> FailureRecord`` for points that exhausted their retry
    #: budget.  Summary-only, like timings: the store must stay a clean
    #: expansion-order prefix of successful records.
    failures: Dict[str, FailureRecord] = field(default_factory=dict)
    #: Points computed successfully but *not* appended because the flush
    #: frontier was blocked by an earlier failed or interrupted point.
    #: They are recomputed (or cache-missed back in) on the next run.
    n_discarded: int = 0
    #: True when the run was cut short by SIGINT/SIGTERM; the summary then
    #: arrives attached to a :class:`SweepInterrupted`.
    interrupted: bool = False

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cached / self.n_points if self.n_points else 0.0

    def describe(self) -> str:
        slowest = ""
        if self.timings:
            worst_key = max(self.timings, key=self.timings.__getitem__)
            slowest = (
                f"; slowest point {self.timings[worst_key]*1e3:.0f} ms"
            )
        variant = f" [{self.kernel_variant}]" if self.kernel_variant else ""
        tail = ""
        if self.failures:
            tail += f"; {len(self.failures)} FAILED"
        if self.n_discarded:
            tail += f"; {self.n_discarded} computed-but-unflushed"
        head = "interrupted: " if self.interrupted else ""
        return (
            f"{head}{self.n_points} points: {self.n_cached} cached, "
            f"{self.n_computed} computed on {self.n_workers} worker(s)"
            f"{variant} in {self.elapsed_s:.2f}s{slowest}{tail}"
        )


class SweepInterrupted(ReproError):
    """SIGINT/SIGTERM ended the sweep early; the flushed prefix is durable.

    Carries the partial :class:`SweepSummary` so callers can report what
    was saved before exiting.  Re-running the same sweep resumes from the
    stored prefix via cache hits.
    """

    def __init__(self, summary: "SweepSummary") -> None:
        super().__init__(summary.describe())
        self.summary = summary


class _PointTask:
    """Mutable per-point execution state inside one :func:`run_sweep`."""

    __slots__ = (
        "index", "key", "point", "payload",
        "attempts", "elapsed", "ready_at", "async_result", "deadline",
    )

    def __init__(self, index: int, key: str, point: ExperimentPoint,
                 payload: Dict[str, Any]) -> None:
        self.index = index
        self.key = key
        self.point = point
        self.payload = payload
        self.attempts = 0          # settled (finished or charged) attempts
        self.elapsed = 0.0         # cumulative wall-clock across attempts
        self.ready_at = 0.0        # monotonic time when dispatchable again
        self.async_result = None   # in-flight multiprocessing AsyncResult
        self.deadline = None       # monotonic timeout for the in-flight try


def _worker_init() -> None:
    """Pool workers ignore SIGINT: a terminal Ctrl-C reaches the whole
    process group, but only the orchestrator may act on it — it then
    terminates the pool deterministically, so no workers are leaked and
    no worker dies mid-anything it shouldn't.  SIGTERM goes back to the
    default action: forked workers inherit the parent's TERM->interrupt
    handler (see :func:`_convert_sigterm`), and a worker that turned the
    pool's own ``terminate()`` into KeyboardInterrupt would die noisily
    — or, caught mid-``queue.get`` holding the queue lock, wedge the
    teardown."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def _convert_sigterm() -> Callable[[], None]:
    """Route SIGTERM through the KeyboardInterrupt path for the duration
    of a sweep, so a service manager's TERM flushes the frontier and tears
    the pool down exactly like Ctrl-C.  Returns a restore callable; no-op
    when not on the main thread (signal API restriction)."""
    if threading.current_thread() is not threading.main_thread():
        return lambda: None

    def _raise_interrupt(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt()

    try:
        previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:  # pragma: no cover - embedders with odd threading
        return lambda: None
    return lambda: signal.signal(signal.SIGTERM, previous)


class _FrontierExecutor:
    """Executes pending points under a :class:`RetryPolicy`, appending
    completed records to the store in expansion order as the
    :class:`repro.exec.frontier.FlushFrontier` advances (see the module
    docstring for the layout guarantee)."""

    def __init__(
        self,
        tasks: List[_PointTask],
        store: ResultStore,
        policy: RetryPolicy,
        n_workers: int,
        use_pool: bool,
        say: Callable[[str], None],
        on_point_done: Optional[Callable[[str, Dict[str, Any], int], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        batch: bool = False,
    ) -> None:
        self.tasks = tasks
        self.store = store
        self.policy = policy
        self.n_workers = n_workers
        self.use_pool = use_pool
        self.batch = batch
        self.say = say
        self.on_point_done = on_point_done
        self.should_stop = should_stop
        self.pool: Optional[multiprocessing.pool.Pool] = None
        self._work: List[_PointTask] = list(tasks)
        self.frontier = FlushFrontier(len(tasks), emit=self._emit)
        self.timings: Dict[str, float] = {}
        self.failures: Dict[str, FailureRecord] = {}
        self.n_discarded = 0

    @property
    def n_flushed(self) -> int:
        return self.frontier.n_flushed

    # -- lifecycle --------------------------------------------------------
    def run(self) -> None:
        self._work = list(self.tasks)
        try:
            if self.batch:
                self._work = self._run_batches(self._work)
            if self.use_pool:
                self._run_pool()
            else:
                self._run_inline()
        finally:
            self._shutdown_pool()
            self.n_discarded = self.frontier.discard()
            if self.n_discarded:
                self.say(
                    f"  {self.n_discarded} computed record(s) past the "
                    "blocked frontier were not persisted; they will be "
                    "recomputed on the next run"
                )

    def _spawn_pool(self) -> None:
        if self.pool is not None:  # carried over from the batch pre-phase
            return
        self.pool = multiprocessing.Pool(
            processes=self.n_workers, initializer=_worker_init
        )

    def _shutdown_pool(self) -> None:
        if self.pool is not None:
            self.pool.terminate()
            self.pool.join()
            self.pool = None

    # -- frontier ---------------------------------------------------------
    def _emit(self, index: int, payload: Tuple[Dict[str, Any], float]) -> None:
        """Append one frontier-reached record durably (the
        :class:`~repro.exec.frontier.FlushFrontier` emit hook: called
        exactly once per completed point, strictly in expansion order —
        a permanently-failed point blocks the frontier there, keeping the
        store an expansion-order prefix of the fault-free sweep)."""
        record, elapsed = payload
        self.store.append(record)
        task = self.tasks[index]
        self.timings[task.key] = elapsed
        self.say(f"  done {task.point.label()} ({elapsed*1e3:.0f} ms)")
        if self.on_point_done is not None:
            # Progress hook, invoked strictly in expansion order and
            # only after the record is durably appended — a subscriber
            # notified of (key, index) may read the store and find it.
            # Exceptions propagate: a broken hook aborts the sweep
            # rather than silently dropping progress events.
            self.on_point_done(task.key, record, task.index)

    def _complete(self, task: _PointTask, record: Dict[str, Any],
                  elapsed: float) -> None:
        self.frontier.complete(task.index, (record, elapsed))

    def _fail(self, task: _PointTask, exc: BaseException) -> None:
        self.frontier.block(task.index)
        self.failures[task.key] = FailureRecord(
            key=task.key,
            label=task.point.label(),
            attempts=task.attempts,
            error=type(exc).__name__,
            message=str(exc),
            elapsed_s=task.elapsed,
        )
        self.say(
            f"  FAILED {task.point.label()} after {task.attempts} "
            f"attempt(s): {type(exc).__name__}: {exc}"
        )

    def _on_error(self, task: _PointTask, exc: BaseException,
                  requeue: List[_PointTask]) -> None:
        """One attempt of ``task`` failed; retry with backoff or give up."""
        if task.attempts >= self.policy.max_attempts:
            self._fail(task, exc)
            return
        delay = self.policy.backoff_for(task.attempts)
        task.ready_at = time.monotonic() + delay
        self.say(
            f"  retry {task.point.label()}: attempt "
            f"{task.attempts}/{self.policy.max_attempts} failed "
            f"({type(exc).__name__}: {exc}); backing off {delay:.2f}s"
        )
        requeue.append(task)

    def _check_stop(self) -> None:
        """Cooperative cancellation: embedders (the service job manager)
        pass ``should_stop``; when it fires the sweep takes the exact
        SIGINT path — pool torn down, frontier flushed, partial summary
        raised as :class:`SweepInterrupted` — so cancel inherits every
        durability guarantee of an interrupt."""
        if self.should_stop is not None and self.should_stop():
            raise KeyboardInterrupt()

    # -- batched execution (kernel_variant="batch") -----------------------
    def _group_batches(
        self, tasks: List["_PointTask"],
    ) -> List[List["_PointTask"]]:
        """Group tasks by structural specialization key, chunked to
        :data:`MAX_BATCH_LANES`; singleton chunks are left to the per-point
        path (which still runs the batch kernel, just with one lane)."""
        groups: "OrderedDict[str, List[_PointTask]]" = OrderedDict()
        for task in tasks:
            key = specialization_key(task.point.config)
            groups.setdefault(key, []).append(task)
        batches: List[List[_PointTask]] = []
        for members in groups.values():
            for start in range(0, len(members), MAX_BATCH_LANES):
                chunk = members[start:start + MAX_BATCH_LANES]
                if len(chunk) >= 2:
                    batches.append(chunk)
        # Earliest expansion index first, so the flush frontier advances
        # as soon as possible.
        batches.sort(key=lambda chunk: chunk[0].index)
        return batches

    def _run_batches(
        self, tasks: List["_PointTask"],
    ) -> List["_PointTask"]:
        """Pre-phase for the batch variant: execute every multi-point
        specialization-key group through one :func:`execute_batch` call
        each, demuxing per-point records into the ordinary flush frontier.

        Returns the tasks still owed to the per-point path: singletons the
        grouping left behind, plus every member of a failed batch — each
        charged one attempt, so a poisoned point converges on its own
        retry budget instead of wedging its batch-mates forever.
        """
        batches = self._group_batches(tasks)
        if not batches:
            return tasks
        self.say(
            f"  batch variant: {sum(len(b) for b in batches)} of "
            f"{len(tasks)} point(s) in {len(batches)} batched kernel "
            "call(s), grouped by specialization key"
        )
        settled: set = set()
        scrap: List[_PointTask] = []   # _on_error's requeue; unused here
        if not self.use_pool:
            for chunk in batches:
                self._check_stop()
                payloads = [
                    dict(task.payload, _attempt=task.attempts + 1)
                    for task in chunk
                ]
                t0 = time.perf_counter()
                try:
                    pairs = execute_batch(payloads)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    share = (time.perf_counter() - t0) / len(chunk)
                    for task in chunk:
                        task.attempts += 1
                        task.elapsed += share
                        self._on_error(task, exc, scrap)
                else:
                    for task, (record, elapsed) in zip(chunk, pairs):
                        task.attempts += 1
                        task.elapsed += elapsed
                        self._complete(task, record, elapsed)
                        settled.add(task.index)
        else:
            self._spawn_pool()
            assert self.pool is not None
            in_flight = [
                (chunk, self.pool.apply_async(
                    execute_batch,
                    ([dict(task.payload, _attempt=task.attempts + 1)
                      for task in chunk],),
                ))
                for chunk in batches
            ]
            pool_lost = False
            for chunk, async_result in in_flight:
                if pool_lost:
                    # The pool died with this batch's attempt in flight;
                    # nobody is charged — the per-point path recomputes.
                    continue
                deadline = (
                    time.monotonic() + self.policy.timeout_s * len(chunk)
                    if self.policy.timeout_s is not None else None
                )
                while True:
                    self._check_stop()
                    try:
                        pairs = async_result.get(timeout=_POLL_INTERVAL_S)
                    except multiprocessing.TimeoutError:
                        if deadline is not None and \
                                time.monotonic() >= deadline:
                            exc = TimeoutError(
                                f"batch of {len(chunk)} point(s): no "
                                f"result within "
                                f"{self.policy.timeout_s * len(chunk):.1f}s "
                                "(worker hung or died)"
                            )
                            for task in chunk:
                                task.attempts += 1
                                task.elapsed += self.policy.timeout_s
                                self._on_error(task, exc, scrap)
                            self.say(
                                "  pool replaced after batch timeout; "
                                "remaining batches fall back to "
                                "per-point execution"
                            )
                            self._shutdown_pool()
                            pool_lost = True
                            break
                        continue
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        for task in chunk:
                            task.attempts += 1
                            self._on_error(task, exc, scrap)
                        break
                    else:
                        for task, (record, elapsed) in zip(chunk, pairs):
                            task.attempts += 1
                            task.elapsed += elapsed
                            self._complete(task, record, elapsed)
                            settled.add(task.index)
                        break
        return [
            task for task in tasks
            if task.index not in settled
            and not self.frontier.is_blocked(task.index)
        ]

    # -- inline execution (no pool) ---------------------------------------
    def _run_inline(self) -> None:
        for task in self._work:
            while True:
                self._check_stop()
                if task.ready_at:
                    time.sleep(max(0.0, task.ready_at - time.monotonic()))
                attempt = task.attempts + 1
                t0 = time.perf_counter()
                try:
                    record, elapsed = execute_point(
                        dict(task.payload, _attempt=attempt)
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    task.attempts = attempt
                    task.elapsed += time.perf_counter() - t0
                    requeue: List[_PointTask] = []
                    self._on_error(task, exc, requeue)
                    if not requeue:
                        break
                else:
                    task.attempts = attempt
                    task.elapsed += elapsed
                    self._complete(task, record, elapsed)
                    break

    # -- pooled execution -------------------------------------------------
    def _dispatch(self, task: _PointTask,
                  in_flight: Dict[int, _PointTask]) -> None:
        payload = dict(task.payload, _attempt=task.attempts + 1)
        assert self.pool is not None
        task.async_result = self.pool.apply_async(execute_point, (payload,))
        task.deadline = (
            time.monotonic() + self.policy.timeout_s
            if self.policy.timeout_s is not None
            else None
        )
        in_flight[task.index] = task

    def _attempt_in_process(self, task: _PointTask) -> None:
        """Graceful degradation: the final permitted attempt runs in the
        orchestrating process, immune to worker death and pool state."""
        attempt = task.attempts + 1
        self.say(
            f"  last attempt for {task.point.label()} runs in-process "
            "(graceful degradation)"
        )
        t0 = time.perf_counter()
        try:
            record, elapsed = execute_point(
                dict(task.payload, _attempt=attempt)
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            task.attempts = attempt
            task.elapsed += time.perf_counter() - t0
            self._fail(task, exc)
        else:
            task.attempts = attempt
            task.elapsed += elapsed
            self._complete(task, record, elapsed)

    def _run_pool(self) -> None:
        self._spawn_pool()
        waiting = list(self._work)
        in_flight: Dict[int, _PointTask] = {}
        while waiting or in_flight:
            self._check_stop()
            now = time.monotonic()
            # 1. Dispatch tasks whose backoff has elapsed, lowest expansion
            #    index first so the frontier advances soonest, capped at one
            #    in-flight task per worker: a dispatched task then starts on
            #    a free worker immediately, which is what lets ``deadline``
            #    measure actual execution instead of queue time (dispatching
            #    the whole shard at once would start every timeout clock up
            #    front and falsely expire tasks still waiting in the pool's
            #    queue).  A task on its final attempt runs in-process
            #    instead (see above).
            waiting.sort(key=lambda t: t.index)
            still_waiting: List[_PointTask] = []
            for task in waiting:
                if task.ready_at > now:
                    still_waiting.append(task)
                elif task.attempts > 0 and \
                        task.attempts + 1 >= self.policy.max_attempts:
                    self._attempt_in_process(task)
                elif len(in_flight) < self.n_workers:
                    self._dispatch(task, in_flight)
                else:
                    still_waiting.append(task)
            waiting = still_waiting
            # 2. Collect completions and worker exceptions; note timeouts.
            now = time.monotonic()
            timed_out: List[_PointTask] = []
            for index, task in list(in_flight.items()):
                assert task.async_result is not None
                if task.async_result.ready():
                    del in_flight[index]
                    task.attempts += 1
                    try:
                        record, elapsed = task.async_result.get()
                    except Exception as exc:
                        self._on_error(task, exc, waiting)
                    else:
                        task.elapsed += elapsed
                        self._complete(task, record, elapsed)
                elif task.deadline is not None and now >= task.deadline:
                    timed_out.append(task)
            # 3. Timeouts: the worker holding the task is hung or dead
            #    (a killed worker's task never completes — this is how
            #    hard death is detected).  multiprocessing.Pool cannot
            #    reap one worker, so the pool is replaced wholesale and
            #    innocent in-flight tasks are re-dispatched without being
            #    charged an attempt.
            if timed_out:
                assert self.policy.timeout_s is not None
                for task in timed_out:
                    del in_flight[task.index]
                    task.attempts += 1
                    task.elapsed += self.policy.timeout_s
                    exc = TimeoutError(
                        f"no result within {self.policy.timeout_s:.1f}s "
                        "(worker hung or died)"
                    )
                    self._on_error(task, exc, waiting)
                collateral = sorted(in_flight.values(),
                                    key=lambda t: t.index)
                in_flight.clear()
                self.say(
                    "  pool replaced after timeout "
                    f"({len(collateral)} in-flight task(s) re-dispatched)"
                )
                self._shutdown_pool()
                self._spawn_pool()
                for task in collateral:
                    task.ready_at = 0.0
                    waiting.append(task)
            if waiting or in_flight:
                time.sleep(_POLL_INTERVAL_S)


def run_sweep(
    points: Sequence[ExperimentPoint],
    store: ResultStore,
    workers: Optional[int] = None,
    force: bool = False,
    log: Optional[Callable[[str], None]] = None,
    kernel_variant: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    on_point_done: Optional[Callable[[str, Dict[str, Any], int], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> SweepSummary:
    """Compute every point not already in ``store``; return a summary.

    ``force=True`` recomputes cached points (their records are appended
    again; last-wins on reload — ``python -m repro.sweep compact``
    deduplicates the file afterwards).  ``workers`` defaults to
    :func:`default_workers`; the pool is skipped entirely when the pending
    shard is too small to amortise process startup.  ``kernel_variant``
    selects the simulation kernel per worker (see
    :class:`repro.engine.Pipeline`); every variant produces identical
    records, so the store contents do not depend on it.  The ``batch``
    variant additionally groups pending points that share a structural
    specialization key into single vectorized kernel calls (see the module
    docstring) — again without touching store bytes.  ``policy``
    configures retry/timeout/backoff handling (default: three attempts,
    0.1 s base backoff, no timeout).

    Completed records are appended incrementally in expansion order (the
    flush frontier), so partial progress survives crashes and interrupts;
    SIGINT/SIGTERM raise :class:`SweepInterrupted` carrying the partial
    summary after the pool is torn down.  Points that exhaust their retry
    budget are reported in :attr:`SweepSummary.failures` and block the
    frontier at their expansion index.

    ``on_point_done(key, record, index)``, when given, is invoked once per
    freshly computed point, strictly in expansion order, immediately after
    the record is durably appended to the store; ``index`` is the point's
    0-based position within the pending (non-cached) shard.  The hook runs
    in the orchestrating thread and must be cheap; leaving it unset changes
    nothing — store bytes, summaries, and timings are identical.

    ``should_stop``, when given, is polled between dispatch iterations;
    returning ``True`` cancels the sweep through the interrupt path (pool
    torn down, frontier flushed, :class:`SweepInterrupted` raised with the
    partial summary) — the service's cancel button.
    """
    t0 = time.perf_counter()
    n_workers = default_workers() if workers is None else max(1, int(workers))
    retry_policy = RetryPolicy() if policy is None else policy
    say = log if log is not None else (lambda _msg: None)
    # Resolve (and validate) the variant once, up front: the batch variant
    # changes how work is scheduled, not just what each worker runs.
    resolved_variant = resolve_kernel_variant(kernel_variant)

    # Deduplicate while preserving expansion order: a grid with repeated
    # points (e.g. overlapping specs) must not compute the same key twice.
    # dedup_ordered is the shared canonical-ordering helper — the service
    # job manager and the fabric coordinator number the same list.
    unique = list(
        dedup_ordered((point.key(), point) for point in points).items()
    )

    pending = [
        (key, point) for key, point in unique if force or key not in store
    ]
    n_cached = len(unique) - len(pending)
    say(f"sweep: {len(unique)} points, {n_cached} cache hits, "
        f"{len(pending)} to compute")

    timings: Dict[str, float] = {}
    failures: Dict[str, FailureRecord] = {}
    n_computed = 0
    n_discarded = 0
    interrupted = False
    if pending:
        tasks = []
        for index, (key, point) in enumerate(pending):
            payload = _payload_for(point)
            if kernel_variant is not None:
                payload["_kernel_variant"] = kernel_variant
            tasks.append(_PointTask(index, key, point, payload))
        use_pool = (
            n_workers > 1
            and len(pending) >= n_workers * MIN_POINTS_PER_WORKER
        )
        executor = _FrontierExecutor(
            tasks, store, retry_policy, n_workers, use_pool, say,
            on_point_done=on_point_done, should_stop=should_stop,
            batch=(resolved_variant == "batch"),
        )
        restore_sigterm = _convert_sigterm()
        try:
            executor.run()
        except KeyboardInterrupt:
            interrupted = True
            say("  interrupted: frontier flushed, worker pool torn down")
        finally:
            restore_sigterm()
        timings = executor.timings
        failures = executor.failures
        n_computed = executor.n_flushed
        n_discarded = executor.n_discarded

    summary = SweepSummary(
        n_points=len(unique),
        n_cached=n_cached,
        n_computed=n_computed,
        n_workers=n_workers,
        elapsed_s=time.perf_counter() - t0,
        timings=timings,
        kernel_variant=resolved_variant,
        failures=failures,
        n_discarded=n_discarded,
        interrupted=interrupted,
    )
    if interrupted:
        raise SweepInterrupted(summary)
    return summary


__all__ = [
    "MAX_BATCH_LANES",
    "MIN_POINTS_PER_WORKER",
    "TRACE_CACHE_SIZE",
    "FailureRecord",
    "RetryPolicy",
    "SweepInterrupted",
    "SweepSummary",
    "clear_trace_cache",
    "default_workers",
    "execute_batch",
    "execute_point",
    "run_sweep",
]
