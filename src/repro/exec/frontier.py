"""The ordered flush/merge frontier over indexed work items.

Work arrives as ``n_items`` indexed slots (0-based, densely numbered in
the canonical order — expansion order for sweep points, shard order for
fabric shards).  Completions may arrive in *any* order; the frontier
buffers them and emits each one exactly once, strictly in index order,
the moment every earlier index has been emitted.  The emitted prefix is
therefore always a byte/index prefix of the fault-free sequential order —
the invariant both the sweep store layout and the fabric's merged store
byte-identity rest on.

A *blocked* index (a permanently failed item) stops the frontier: nothing
at or past it is ever emitted, because emitting around a hole would leave
a gap that a later resume could only fill out of order.  Completions
buffered behind a block are *discarded* (counted, so callers can report
"computed but not persisted; will be recomputed on the next run").

The frontier is deliberately ignorant of what a payload is and what
"emit" does — the sweep runner appends a record to the store, the fabric
coordinator merges a shard's records — so one implementation serves every
layer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def dedup_ordered(
    items: Iterable[Tuple[K, V]],
) -> "OrderedDict[K, V]":
    """First-wins key dedup preserving encounter order.

    The canonical-ordering helper every layer shares: sweep points keyed
    by content hash, deduped in expansion order, index by index — the
    pool runner, the service job manager, and the fabric coordinator must
    all agree on this list or their frontiers would number different
    work.
    """
    keyed: "OrderedDict[K, V]" = OrderedDict()
    for key, value in items:
        keyed.setdefault(key, value)
    return keyed


class FlushFrontier:
    """Strict-prefix emission of out-of-order completions.

    ``emit(index, payload)`` is called exactly once per completed index,
    strictly in ascending index order, from within :meth:`complete` (or
    :meth:`advance_to` rehydration) on the calling thread.  An exception
    raised by ``emit`` propagates to the completer with the frontier
    still consistent: the failing index stays un-emitted and buffered.
    """

    def __init__(self, n_items: int,
                 emit: Callable[[int, Any], None]) -> None:
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        self.n_items = n_items
        self._emit = emit
        self._buffer: Dict[int, Any] = {}
        self._blocked: set = set()
        self._position = 0          # next index to emit
        self.n_flushed = 0
        self.n_discarded = 0

    # -- queries -----------------------------------------------------------
    @property
    def position(self) -> int:
        """The next index the frontier will emit (= emitted prefix length
        plus any externally-advanced span; see :meth:`advance_to`)."""
        return self._position

    @property
    def done(self) -> bool:
        """True once every index has been emitted (no blocks, no holes)."""
        return self._position >= self.n_items

    def is_blocked(self, index: int) -> bool:
        return index in self._blocked

    @property
    def blocked(self) -> frozenset:
        return frozenset(self._blocked)

    def is_buffered(self, index: int) -> bool:
        return index in self._buffer

    def is_complete(self, index: int) -> bool:
        """True once ``index`` is settled — emitted already, or buffered
        awaiting its turn.  (At-least-once callers use this to ignore
        duplicate deliveries without consulting the payloads.)"""
        return index < self._position or index in self._buffer

    def buffered(self) -> Dict[int, Any]:
        """Snapshot of completions waiting behind a hole (index ->
        payload) — what a checkpoint persists so a successor process can
        rehydrate them instead of recomputing."""
        return dict(self._buffer)

    # -- mutations ---------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_items):
            raise IndexError(
                f"index {index} out of range for frontier of "
                f"{self.n_items} item(s)"
            )

    def complete(self, index: int, payload: Any) -> int:
        """Record ``index`` as completed; flush every emittable prefix
        item.  Returns how many items this call emitted.  Completing an
        index twice (an at-least-once duplicate) keeps the first payload;
        completing an already-emitted index is a no-op.
        """
        self._check_index(index)
        if index < self._position or index in self._blocked:
            return 0
        self._buffer.setdefault(index, payload)
        return self._flush()

    def block(self, index: int) -> None:
        """Mark ``index`` permanently failed: the frontier will never
        advance past it.  A buffered completion for the index is dropped
        (it can no longer be emitted in order)."""
        self._check_index(index)
        if index < self._position:
            raise ValueError(
                f"cannot block index {index}: already emitted "
                f"(frontier at {self._position})"
            )
        self._blocked.add(index)
        self._buffer.pop(index, None)

    def advance_to(self, index: int) -> None:
        """Declare indexes ``[position, index)`` already emitted by an
        earlier process (resume-from-durable-state): the frontier skips
        them without calling ``emit``.  Buffered payloads inside the span
        are dropped silently — they are already durable downstream."""
        if not (0 <= index <= self.n_items):
            raise IndexError(
                f"cannot advance to {index} on a frontier of "
                f"{self.n_items} item(s)"
            )
        if index < self._position:
            raise ValueError(
                f"cannot advance backwards to {index} "
                f"(frontier at {self._position})"
            )
        for skipped in range(self._position, index):
            self._buffer.pop(skipped, None)
            self._blocked.discard(skipped)
        self._position = index
        self._flush()

    def drop(self, index: int) -> bool:
        """Forget a buffered (un-emitted) completion so it can be redone.

        Used when a payload turns out to be unusable at emit time (e.g. a
        rehydrated checkpoint shard that conflicts with the store): the
        slot reopens, and a fresh :meth:`complete` may fill it.  Returns
        whether anything was dropped; does not count into
        :attr:`n_discarded` (the caller decided, not the frontier).
        """
        return self._buffer.pop(index, None) is not None

    def discard(self) -> int:
        """Drop every completion still buffered behind a hole or block;
        returns how many were dropped (cumulative in
        :attr:`n_discarded`).  Called when a run ends with the frontier
        blocked — the buffered work was computed but cannot be emitted in
        order, so it will be recomputed (or cache-hit) on the next run."""
        dropped = len(self._buffer)
        self._buffer.clear()
        self.n_discarded += dropped
        return dropped

    def _flush(self) -> int:
        emitted = 0
        while self._position < self.n_items:
            if self._position in self._blocked:
                break
            if self._position not in self._buffer:
                break
            payload = self._buffer[self._position]
            # Emit BEFORE popping: if emit raises, the payload stays
            # buffered and the frontier has not advanced — the caller can
            # retry or abort with consistent state.
            self._emit(self._position, payload)
            del self._buffer[self._position]
            self._position += 1
            self.n_flushed += 1
            emitted += 1
        return emitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlushFrontier(position={self._position}/{self.n_items}, "
            f"buffered={len(self._buffer)}, blocked={len(self._blocked)})"
        )


__all__ = ["FlushFrontier", "dedup_ordered"]
