"""Atomic JSON checkpoints for orchestrator state.

The same durability pattern the service's job persistence established
(write to a tmp file, fsync, ``os.replace``), packaged for any
orchestrator that wants to survive its own death: the fabric coordinator
periodically snapshots its frontier position, attempt counters, and
buffered completions, and a replacement process started on the same
store + checkpoint resumes mid-run.

Reads are deliberately forgiving: a missing, torn, or non-JSON
checkpoint returns ``None`` (the caller starts fresh from the durable
store — losing a checkpoint costs recomputation, never correctness),
while `os.replace` atomicity guarantees a reader can never observe a
half-written file.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.common.jsonutil import canonical_json


def write_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Persist ``payload`` atomically (tmp + fsync + replace).

    The payload must be JSON-serializable; it is written as canonical
    JSON plus a trailing newline, so byte-identical states produce
    byte-identical checkpoint files.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(payload) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_checkpoint(path: str) -> Optional[Dict[str, Any]]:
    """Load a checkpoint written by :func:`write_checkpoint`.

    Returns ``None`` when the file is missing, unreadable, torn, or not
    a JSON object — a checkpoint is an optimization, and refusing to
    start over a broken one would turn a crash into an outage.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    return data


def clear_checkpoint(path: str) -> None:
    """Remove a checkpoint file (run finished); missing is fine."""
    try:
        os.remove(path)
    except OSError:
        pass


__all__ = ["clear_checkpoint", "read_checkpoint", "write_checkpoint"]
