"""The unified execution plane: frontier / attempts / leases / checkpoints.

Every durability and byte-identity guarantee in this reproduction rests on
the same small set of coordination mechanisms, which until this package
existed were re-implemented — slightly differently each time — in three
feature layers:

* the sweep runner's expansion-order *flush frontier* (records buffered
  out of order, appended strictly in order);
* the fabric coordinator's shard *merge frontier* plus lease/heartbeat
  supervision and shard attempt budgets;
* the service job manager's and HTTP client's retry/backoff bookkeeping.

:mod:`repro.exec` is the single, engine-agnostic home for that machinery:

* :mod:`repro.exec.frontier` — :class:`FlushFrontier`, the ordered
  flush/merge frontier over indexed work items (buffered out-of-order
  completions, strict-prefix durability, blocking failures, discard
  accounting), plus :func:`dedup_points`-style canonical ordering via
  :func:`dedup_ordered`;
* :mod:`repro.exec.attempts` — :class:`RetryPolicy`, the shared
  deterministic :func:`backoff_delay`, and :class:`AttemptTracker`
  attempt-budget bookkeeping;
* :mod:`repro.exec.lease` — :class:`Lease`/:class:`LeaseTable`
  heartbeat-renewed ownership with expiry sweeps;
* :mod:`repro.exec.checkpoint` — atomic (tmp + replace + fsync) JSON
  snapshots of coordinator state, so an orchestrator killed mid-run can
  be replaced by a new process that resumes exactly where it stopped.

Nothing in here knows about experiment points, shards, stores, or HTTP —
the feature layers supply the payloads and the emit/merge callbacks, and
inherit the invariants (most importantly: *what is emitted is always a
strict index prefix of the fault-free order*) from one implementation
instead of three.
"""

from repro.exec.attempts import AttemptTracker, RetryPolicy, backoff_delay
from repro.exec.checkpoint import (
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.exec.frontier import FlushFrontier, dedup_ordered
from repro.exec.lease import Lease, LeaseTable

__all__ = [
    "AttemptTracker",
    "FlushFrontier",
    "Lease",
    "LeaseTable",
    "RetryPolicy",
    "backoff_delay",
    "clear_checkpoint",
    "dedup_ordered",
    "read_checkpoint",
    "write_checkpoint",
]
