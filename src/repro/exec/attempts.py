"""Retry policies, deterministic backoff, and attempt-budget bookkeeping.

One definition of "how failures are retried" for every layer: the sweep
runner's per-point retries, the HTTP client's transient-error retries,
and the fabric coordinator's per-shard requeue budget all draw on the
same three pieces —

* :func:`backoff_delay` — the deterministic exponential-backoff formula
  (base doubling per failed attempt, optional cap, **no jitter**: chaos
  runs must replay identically, which is why every layer pins this exact
  curve);
* :class:`RetryPolicy` — a validated ``(max_attempts, backoff_s,
  timeout_s)`` bundle (previously defined privately by the sweep
  runner and imported from there by everything else);
* :class:`AttemptTracker` — per-item delivery counters against a shared
  budget, with snapshot/restore so a coordinator checkpoint carries its
  attempt history across a process death (a replacement coordinator must
  not grant a failing shard a fresh budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.common.errors import ConfigurationError


def backoff_delay(base_s: float, failed_attempts: int,
                  cap_s: Optional[float] = None) -> float:
    """Deterministic exponential backoff before the next attempt.

    ``failed_attempts`` is how many attempts have already failed (>= 1);
    the delay is ``base_s * 2**(failed_attempts - 1)``, clamped to
    ``cap_s`` when given.  No jitter, by design — see the module
    docstring.
    """
    if failed_attempts < 1:
        raise ValueError(
            f"failed_attempts must be >= 1, got {failed_attempts}"
        )
    delay = base_s * (2.0 ** (failed_attempts - 1))
    if cap_s is not None:
        delay = min(cap_s, delay)
    return delay


@dataclass(frozen=True)
class RetryPolicy:
    """How an executor treats an item whose attempt fails, hangs, or dies.

    ``max_attempts`` bounds deliveries per item (1 = no retries).
    ``backoff_s`` is the pause before the second attempt, doubling for each
    further one — deterministic, no jitter, so chaos runs are exactly
    reproducible.  ``timeout_s``, when set, bounds each dispatched
    attempt's wall-clock; what a timeout *does* (replace a pool, expire a
    lease) is the executor's business — the policy only carries the knobs.
    """

    max_attempts: int = 3
    backoff_s: float = 0.1
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"RetryPolicy.backoff_s must be non-negative, got {self.backoff_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"RetryPolicy.timeout_s must be positive or None, "
                f"got {self.timeout_s}"
            )

    def backoff_for(self, failed_attempts: int) -> float:
        """Backoff before attempt ``failed_attempts + 1`` (exponential)."""
        return backoff_delay(self.backoff_s, failed_attempts)


class AttemptTracker:
    """Delivery attempts per item against one shared budget.

    Items are arbitrary hashable ids (point keys, shard ordinals).  An
    item that has been :meth:`charge`\\ d ``max_attempts`` times is
    *exhausted* — the caller decides what that means (fail the point,
    raise a fabric error).  ``snapshot()``/``restore()`` round-trip the
    counters through plain JSON so checkpoints can carry them.
    """

    def __init__(self, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"AttemptTracker.max_attempts must be >= 1, "
                f"got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self._counts: Dict[Hashable, int] = {}

    def charge(self, item: Hashable) -> int:
        """Count one delivery attempt for ``item``; returns the new total."""
        total = self._counts.get(item, 0) + 1
        self._counts[item] = total
        return total

    def attempts(self, item: Hashable) -> int:
        return self._counts.get(item, 0)

    def exhausted(self, item: Hashable) -> bool:
        return self._counts.get(item, 0) >= self.max_attempts

    def remaining(self, item: Hashable) -> int:
        return max(0, self.max_attempts - self._counts.get(item, 0))

    def snapshot(self) -> Dict[str, int]:
        """JSON-ready counters (keys stringified)."""
        return {str(item): count for item, count in self._counts.items()}

    def restore(self, counts: Dict[str, int],
                key: "type" = str) -> None:
        """Load counters from a :meth:`snapshot`; ``key`` converts the
        stringified item ids back (``int`` for shard ordinals)."""
        for item, count in counts.items():
            self._counts[key(item)] = int(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttemptTracker(max_attempts={self.max_attempts}, "
            f"{len(self._counts)} item(s))"
        )


__all__ = ["AttemptTracker", "RetryPolicy", "backoff_delay"]
