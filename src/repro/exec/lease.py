"""Heartbeat-renewed leases: who owns which work item right now.

Lifted out of the fabric scheduler so any orchestrator can supervise
remote (or merely slow) executors the same way: a :class:`Lease` is one
item's claim by one named holder, renewed by :meth:`Lease.beat` from
whatever thread carries progress callbacks; the :class:`LeaseTable`
issues tickets, counts in-flight leases per holder (the work-stealing
dispatch cap), and sweeps out leases whose last heartbeat is older than
the timeout.

Threading model, inherited from the original scheduler: ``beat()`` is a
bare float store — atomic under the GIL — so worker threads renew leases
without locks while the orchestrator loop reads them.  Everything else
(issue/release/expiry) happens on the orchestrator thread only.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional


class Lease:
    """One work item's claim on one holder, renewed by heartbeats."""

    __slots__ = ("ticket", "item", "holder", "clock", "last_beat", "expired")

    def __init__(self, ticket: int, item: Any, holder: str,
                 clock: Callable[[], float]) -> None:
        self.ticket = ticket
        self.item = item
        self.holder = holder
        self.clock = clock
        self.last_beat = clock()
        self.expired = False

    def beat(self) -> None:
        """Renew the lease (atomic float store; see module docstring)."""
        self.last_beat = self.clock()

    def age(self) -> float:
        return self.clock() - self.last_beat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "expired" if self.expired else f"age={self.age():.1f}s"
        return f"Lease(#{self.ticket} {self.item!r} -> {self.holder}, {state})"


class LeaseTable:
    """Issues, tracks, and expires leases for one orchestrator run."""

    def __init__(self, timeout_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self.clock = clock
        self._live: Dict[int, Lease] = {}
        #: Every lease ever issued, by ticket — completions may arrive
        #: after expiry, and the orchestrator needs the lease's identity
        #: (item, holder, expired flag) to judge them.
        self._issued: Dict[int, Lease] = {}
        self._next_ticket = 0
        self.n_expired = 0

    # -- lifecycle ---------------------------------------------------------
    def issue(self, item: Any, holder: str) -> Lease:
        lease = Lease(self._next_ticket, item, holder, self.clock)
        self._next_ticket += 1
        self._live[lease.ticket] = lease
        self._issued[lease.ticket] = lease
        return lease

    def release(self, ticket: int) -> Optional[Lease]:
        """Settle a lease (its work finished or failed while still live).
        Returns the lease, or ``None`` if it was already expired/unknown."""
        return self._live.pop(ticket, None)

    def lookup(self, ticket: int) -> Lease:
        """The lease a completion ticket refers to, live or expired."""
        return self._issued[ticket]

    def expire_stale(self) -> List[Lease]:
        """Mark and remove every live lease whose heartbeat is older than
        ``timeout_s``; returns them (oldest ticket first)."""
        now = self.clock()
        stale = [
            lease for lease in self._live.values()
            if now - lease.last_beat > self.timeout_s
        ]
        for lease in stale:
            lease.expired = True
            del self._live[lease.ticket]
            self.n_expired += 1
        return stale

    # -- queries -----------------------------------------------------------
    def held_by(self, holder: str) -> int:
        """How many live leases ``holder`` currently holds (the
        work-stealing dispatch loop caps this at ``max_inflight``)."""
        return sum(1 for lease in self._live.values()
                   if lease.holder == holder)

    def live(self) -> Iterator[Lease]:
        return iter(list(self._live.values()))

    def __len__(self) -> int:
        return len(self._live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeaseTable({len(self._live)} live, "
            f"{self.n_expired} expired, timeout={self.timeout_s}s)"
        )


__all__ = ["Lease", "LeaseTable"]
