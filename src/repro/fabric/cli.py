"""``python -m repro.fabric`` — run a sweep across local + peer backends.

Subcommands::

    run     expand a spec (JSON file, --smoke, or --paper), shard its
            pending points, and compute them across the local pool and/or
            remote sweep services, merging results deterministically into
            the store
    probe   one liveness check per configured backend

The merged store is byte-identical to what ``python -m repro.sweep run``
would have produced on one host — peers only change wall-clock, never
bytes.  Exit conventions match the sweep CLI: 0 on success, 1 when the
fabric gave up on a shard (:class:`~repro.common.errors.FabricError`; the
merged prefix is durable, re-run to resume), 2 for input/configuration
errors, 130 on interrupt.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import shutil
import sys
import tempfile
from typing import List, Optional

from repro.common.errors import FabricError, ReproError
from repro.fabric.backends import LocalBackend, PeerBackend, RunnerBackend
from repro.fabric.scheduler import (
    DEFAULT_SHARD_SIZE,
    FabricCoordinator,
)
from repro.exec.attempts import RetryPolicy
from repro.sweep.grid import SweepSpec, paper_spec, smoke_spec
from repro.sweep.store import ResultStore

DEFAULT_STORE = "sweeps/store.jsonl"
DEFAULT_PEER_PORT = 8765


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    chosen = [bool(args.spec), args.smoke, args.paper]
    if sum(chosen) != 1:
        raise ReproError(
            "choose exactly one of --spec FILE, --smoke, --paper"
        )
    if args.smoke:
        return smoke_spec()
    if args.paper:
        return paper_spec()
    try:
        with open(args.spec, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read sweep spec {args.spec!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"sweep spec {args.spec!r} is not valid JSON: {exc}"
        ) from exc
    return SweepSpec.from_dict(data)


def _parse_peer(value: str) -> "tuple[str, int]":
    host, sep, port_text = value.rpartition(":")
    if not sep:
        return value, DEFAULT_PEER_PORT
    try:
        port = int(port_text)
        if not (0 < port < 65536):
            raise ValueError
    except ValueError:
        raise ReproError(
            f"--peer {value!r}: expected HOST or HOST:PORT with a valid port"
        ) from None
    return host or "localhost", port


def _build_backends(args: argparse.Namespace,
                    scratch_dir: str) -> List[RunnerBackend]:
    backends: List[RunnerBackend] = []
    if not args.no_local:
        backends.append(LocalBackend(
            scratch_dir=scratch_dir,
            workers=args.local_workers,
            policy=RetryPolicy(
                max_attempts=args.retries + 1,
                backoff_s=args.backoff,
                timeout_s=args.timeout,
            ),
        ))
    for value in args.peer or ():
        host, port = _parse_peer(value)
        backends.append(PeerBackend(
            host, port,
            timeout=args.rpc_timeout,
            retries=args.retries,
            backoff_s=args.backoff,
        ))
    if not backends:
        raise ReproError(
            "no backends: --no-local requires at least one --peer"
        )
    return backends


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    if args.energy:
        # Same fold as the sweep CLI / service: energy-enabled points have
        # their own cache keys, and peers see the already-folded spec.
        spec = dataclasses.replace(
            spec, base=tuple(spec.base) + (("energy.enabled", True),)
        )
    store = ResultStore(args.store)
    if store.recovered_bytes:
        print(f"store: recovered truncated tail "
              f"({store.recovered_bytes} bytes dropped)")
    scratch_dir = tempfile.mkdtemp(prefix="repro-fabric-")
    try:
        coordinator = FabricCoordinator(
            _build_backends(args, scratch_dir),
            shard_size=args.shard_size,
            lease_timeout_s=args.lease_timeout,
            max_inflight_shards=args.max_inflight_shards,
            checkpoint_path=args.checkpoint,
            checkpoint_interval_s=args.checkpoint_interval,
            log=print if args.verbose else None,
        )
        print(
            f"fabric: spec {spec.name!r} -> {args.store} via "
            + ", ".join(b.describe() for b in coordinator.backends)
        )
        try:
            summary = coordinator.run(spec, store)
        except FabricError as exc:
            print(f"fabric failed: {exc}", file=sys.stderr)
            if exc.summary is not None and exc.summary.failures:
                # Same per-point failure lines the sweep CLI prints — the
                # two summaries share one failure schema.
                for failure in exc.summary.failures.values():
                    print(
                        f"FAILED {failure.label}: {failure.error}: "
                        f"{failure.message} ({failure.attempts} attempt(s), "
                        f"{failure.elapsed_s:.2f}s)",
                        file=sys.stderr,
                    )
            print(
                "the merged prefix is durable — re-run the same command "
                "to resume",
                file=sys.stderr,
            )
            return 1
        print(summary.describe())
        for name, stats in sorted(summary.backends.items()):
            print(
                f"  {name}: {stats['shards_completed']} shard(s), "
                f"state {stats['state']} "
                f"({stats['n_successes']} ok / {stats['n_failures']} failed, "
                f"inflight {stats['inflight_leases']}/{stats['max_inflight']})"
            )
        return 0
    finally:
        shutil.rmtree(scratch_dir, ignore_errors=True)


def _cmd_probe(args: argparse.Namespace) -> int:
    args.no_local = not args.local
    args.local_workers = None
    args.retries = 1
    args.backoff = 0.1
    args.timeout = None
    scratch_dir = tempfile.mkdtemp(prefix="repro-fabric-probe-")
    try:
        backends = _build_backends(args, scratch_dir)
        coordinator = FabricCoordinator(
            backends, max_inflight_shards=args.max_inflight_shards,
        )
        counts = coordinator.lease_counts()
        all_up = True
        for backend in backends:
            up = backend.probe()
            all_up = all_up and up
            print(f"{backend.name}: {'up' if up else 'DOWN'} "
                  f"({backend.describe()}; inflight "
                  f"{counts[backend.name]}/{coordinator.max_inflight_shards})")
        return 0 if all_up else 1
    finally:
        shutil.rmtree(scratch_dir, ignore_errors=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="shard a spec across local + peer backends"
    )
    run_p.add_argument("--spec", help="JSON sweep spec file")
    run_p.add_argument("--smoke", action="store_true",
                       help="built-in 24-point CI grid")
    run_p.add_argument("--paper", action="store_true",
                       help="built-in full paper-style grid")
    run_p.add_argument("--store", default=DEFAULT_STORE,
                       help="merged (coordinator-side) result store")
    run_p.add_argument("--peer", action="append", metavar="HOST[:PORT]",
                       help="remote sweep service to federate with "
                            f"(repeatable; default port {DEFAULT_PEER_PORT})")
    run_p.add_argument("--no-local", action="store_true",
                       help="dispatch to peers only (no local pool backend)")
    run_p.add_argument("--local-workers", type=int, default=None,
                       help="worker processes for the local backend")
    run_p.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE,
                       help="max points per dispatched shard "
                            f"(default {DEFAULT_SHARD_SIZE})")
    run_p.add_argument("--lease-timeout", type=float, default=60.0,
                       help="seconds without a heartbeat before a shard's "
                            "lease expires and it is requeued (default 60)")
    run_p.add_argument("--max-inflight-shards", type=int, default=1,
                       metavar="N",
                       help="leases each backend may hold at once (work-"
                            "stealing pipelining; default 1 = one shard "
                            "per backend)")
    run_p.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="coordinator checkpoint file: periodically "
                            "snapshot run state so a replacement "
                            "coordinator started on the same store + "
                            "checkpoint resumes mid-run (default: off)")
    run_p.add_argument("--checkpoint-interval", type=float, default=5.0,
                       metavar="S",
                       help="seconds between checkpoint snapshots "
                            "(default 5; merges always snapshot "
                            "immediately)")
    run_p.add_argument("--retries", type=int, default=2,
                       help="transient-error retries per RPC / per failing "
                            "point (default 2)")
    run_p.add_argument("--rpc-timeout", type=float, default=60.0,
                       help="socket timeout per peer RPC in seconds "
                            "(default 60)")
    run_p.add_argument("--timeout", type=float, default=None,
                       help="per-point timeout for the local backend "
                            "(default: none)")
    run_p.add_argument("--backoff", type=float, default=0.1,
                       help="base retry backoff in seconds, doubling per "
                            "attempt (default 0.1; deterministic)")
    run_p.add_argument("--energy", action="store_true",
                       help="enable the per-event energy model on every "
                            "point (energy points have their own cache keys)")
    run_p.add_argument("--verbose", action="store_true",
                       help="log dispatch, requeue, and merge decisions")
    run_p.set_defaults(func=_cmd_run)

    probe_p = sub.add_parser("probe", help="liveness-check the backends")
    probe_p.add_argument("--peer", action="append", metavar="HOST[:PORT]",
                         help="remote sweep service (repeatable)")
    probe_p.add_argument("--local", action="store_true",
                         help="include the (always-up) local backend")
    probe_p.add_argument("--rpc-timeout", type=float, default=5.0,
                         help="probe timeout in seconds (default 5)")
    probe_p.add_argument("--max-inflight-shards", type=int, default=1,
                         metavar="N",
                         help="lease cap to report against (matches run)")
    probe_p.set_defaults(func=_cmd_probe)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            "interrupted — merged shards are durable; re-run the same "
            "command to resume",
            file=sys.stderr,
        )
        return 130


__all__ = ["build_parser", "main"]
