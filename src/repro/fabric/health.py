"""Per-backend health state machine for the distributed sweep fabric.

Each backend carries a tiny four-state machine driven only by the
coordinator's own observations (shard successes and failures — there is no
gossip, no external failure detector):

::

    alive ──failure──▶ suspect ──failures──▶ dead
      ▲                   │                   │ cooldown
      │                   └──success──▶ alive │
      └──success── probation ◀────────────────┘
                      │
                      └──failure──▶ dead (cooldown restarts)

* **alive** — the default; the backend takes shards normally.
* **suspect** — one or more recent failures, but below the dead
  threshold.  Still schedulable: a single refused connection must not
  bench a peer that is merely restarting.
* **dead** — ``dead_after`` *consecutive* failures.  Not schedulable;
  its in-flight shards get requeued elsewhere by lease expiry.
* **probation** — a dead backend past its cooldown.  Schedulable again
  for a trial shard: success re-admits it to ``alive``, any failure sends
  it straight back to ``dead`` and restarts the cooldown, so a flapping
  peer costs the fabric at most one requeued shard per cooldown period.

The clock is injectable so tests drive cooldowns without sleeping.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
PROBATION = "probation"

#: Every state, for introspection/tests.
STATES = (ALIVE, SUSPECT, DEAD, PROBATION)


class BackendHealth:
    """Failure-driven availability tracking for one backend."""

    def __init__(self, name: str, dead_after: int = 3,
                 cooldown_s: float = 10.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if dead_after < 1:
            raise ValueError(f"dead_after must be >= 1, got {dead_after}")
        self.name = name
        self.dead_after = dead_after
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = ALIVE
        self._consecutive_failures = 0
        self._died_at = 0.0
        self.n_successes = 0
        self.n_failures = 0
        self.n_probations = 0

    # -- observations ------------------------------------------------------
    def record_success(self) -> None:
        """A shard (or probe) completed on this backend."""
        self.n_successes += 1
        self._consecutive_failures = 0
        self._state = ALIVE

    def record_failure(self) -> None:
        """A shard failed, a lease expired, or an RPC was exhausted."""
        self.n_failures += 1
        self._consecutive_failures += 1
        if self._state == PROBATION:
            # The trial failed: back to dead, cooldown restarts.
            self._state = DEAD
            self._died_at = self._clock()
        elif self._consecutive_failures >= self.dead_after:
            self._state = DEAD
            self._died_at = self._clock()
        else:
            self._state = SUSPECT

    # -- queries -----------------------------------------------------------
    @property
    def state(self) -> str:
        self._maybe_promote()
        return self._state

    def available(self) -> bool:
        """May the coordinator hand this backend a shard right now?"""
        return self.state != DEAD

    def _maybe_promote(self) -> None:
        if self._state == DEAD and \
                self._clock() - self._died_at >= self.cooldown_s:
            self._state = PROBATION
            self.n_probations += 1

    def status(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "n_successes": self.n_successes,
            "n_failures": self.n_failures,
            "n_probations": self.n_probations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BackendHealth({self.name!r}, {self.state})"


__all__ = ["ALIVE", "BackendHealth", "DEAD", "PROBATION", "STATES", "SUSPECT"]
