"""Distributed sweep fabric: shard scheduling over pluggable backends.

Federates a sweep across one local pool and any number of remote
``repro.service`` peers, under lease/heartbeat supervision with
at-least-once delivery and content-key dedup.  The merged store is
byte-identical to the fault-free single-host store regardless of cluster
shape, shard assignment, peer deaths, lease expiries, or retries — the
abelian-networks correctness property, now across hosts.

Entry points::

    python -m repro.fabric run --smoke --peer localhost:8765
    python -m repro.fabric probe --peer localhost:8765

See :mod:`repro.fabric.scheduler` for the coordination model,
:mod:`repro.fabric.backends` for the execution/validation contract, and
:mod:`repro.fabric.health` for the per-peer availability state machine.
"""

from repro.common.errors import FabricError
from repro.fabric.backends import (
    LocalBackend,
    PeerBackend,
    RunnerBackend,
    Shard,
    ShardExecutionError,
    ShardValidationError,
    validate_record_bytes,
)
from repro.fabric.health import BackendHealth
from repro.fabric.scheduler import (
    DEFAULT_SHARD_SIZE,
    FabricCoordinator,
    FabricSummary,
    dedup_points,
    plan_shards,
)

__all__ = [
    "BackendHealth",
    "DEFAULT_SHARD_SIZE",
    "FabricCoordinator",
    "FabricError",
    "FabricSummary",
    "LocalBackend",
    "PeerBackend",
    "RunnerBackend",
    "Shard",
    "ShardExecutionError",
    "ShardValidationError",
    "dedup_points",
    "plan_shards",
    "validate_record_bytes",
]
