"""Entry point: ``python -m repro.fabric``."""

import sys

from repro.fabric.cli import main

if __name__ == "__main__":
    sys.exit(main())
