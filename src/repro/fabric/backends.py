"""Runner backends: where the fabric actually computes a shard.

A :class:`Shard` is the unit of dispatch — a contiguous half-open range of
the spec's deduped expansion-order point list, carrying both the points
themselves (for local execution) and their content keys (for validation
and remote fetch).  A :class:`RunnerBackend` computes one shard at a time
and returns its records *in shard order*; the coordinator owns merging.

Two implementations:

* :class:`LocalBackend` — PR 6's fault-tolerant pool runner, pointed at a
  throwaway scratch store per attempt so a failed or torn shard leaves no
  trace in the real store.
* :class:`PeerBackend` — federates over the PR 7 job protocol: submit the
  spec plus a shard range, follow the SSE stream (every event doubles as a
  liveness heartbeat), then fetch each record's canonical bytes through
  ``GET /results/<key>``.

Everything a peer returns is **validated before it is trusted**:
:func:`validate_record_bytes` checks framing, UTF-8, canonical-JSON
byte-round-trip, the claimed key, and — decisively — that the embedded
point re-hashes to the key it was fetched under.  A truncated, corrupted,
or dishonest response fails validation and is refetched/recomputed; it can
never reach the store.

Backend failures raise :class:`ShardExecutionError` (or its subclass
:class:`ShardValidationError`), which the coordinator treats as
*requeueable* — distinct from :class:`~repro.common.errors.FabricError`,
which is terminal.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.common.jsonutil import canonical_json
from repro.service.client import ServiceClient, ServiceError
from repro.service.events import TERMINAL_EVENTS
from repro.sweep.grid import ExperimentPoint, SweepSpec
from repro.exec.attempts import RetryPolicy
from repro.sweep.runner import SweepInterrupted, run_sweep
from repro.sweep.store import ResultStore

#: Heartbeat callback type: the coordinator's lease-renewal hook.
Heartbeat = Callable[[], None]


class ShardExecutionError(ReproError):
    """A backend could not complete a shard; the shard is requeueable."""


class ShardValidationError(ShardExecutionError):
    """A shard's result bytes failed integrity validation.

    Raised for torn (truncated), corrupted, non-canonical, or mislabeled
    records.  The offending bytes are discarded and the shard (or the
    single record, on refetch) is recomputed — never merged.
    """


@dataclass(frozen=True)
class Shard:
    """A contiguous slice ``[start, stop)`` of the deduped expansion order."""

    index: int                          # ordinal among this run's shards
    start: int                          # inclusive, into the deduped list
    stop: int                           # exclusive
    points: Tuple[ExperimentPoint, ...]
    keys: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.stop):
            raise ValueError(f"bad shard range [{self.start}, {self.stop})")
        if len(self.points) != self.stop - self.start or \
                len(self.keys) != len(self.points):
            raise ValueError("shard points/keys do not match its range")

    @property
    def n_points(self) -> int:
        return self.stop - self.start

    def label(self) -> str:
        return f"shard {self.index} [{self.start}:{self.stop})"


def validate_record_bytes(raw: bytes, expected_key: str) -> Dict[str, Any]:
    """Parse + integrity-check one record's wire bytes; return the record.

    The checks mirror, layer by layer, what could go wrong in transit:

    1. framing — exactly one line, terminated by the store's newline
       (a missing newline is how truncation manifests);
    2. UTF-8 + JSON-object parse;
    3. canonical-JSON round trip — the bytes must be *exactly* what the
       store would write, or merging them would break byte-identity;
    4. the record's ``key`` field matches the key it was fetched under;
    5. the embedded point **re-hashes** to that key — a peer cannot
       relabel one result as another without failing the content digest.

    Raises :class:`ShardValidationError` naming the failed layer.
    """
    def bad(reason: str) -> ShardValidationError:
        return ShardValidationError(
            f"record {expected_key!r}: {reason} "
            f"({len(raw)} byte(s) received)"
        )

    if not raw or not raw.endswith(b"\n"):
        raise bad("truncated: missing trailing newline")
    try:
        body = raw[:-1].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise bad(f"corrupt: not UTF-8 ({exc})") from None
    if "\n" in body:
        raise bad("malformed: more than one line")
    try:
        record = json.loads(body)
    except ValueError as exc:
        raise bad(f"corrupt: not valid JSON ({exc})") from None
    if not isinstance(record, dict):
        raise bad("malformed: not a JSON object")
    if canonical_json(record) != body:
        raise bad("non-canonical bytes: would break store byte-identity")
    if record.get("key") != expected_key:
        raise bad(f"key mismatch: record claims {record.get('key')!r}")
    if "point" not in record or "result" not in record:
        raise bad("malformed: missing 'point' or 'result'")
    try:
        point = ExperimentPoint.from_dict(record["point"])
    except ReproError as exc:
        raise bad(f"malformed point: {exc}") from None
    if point.key() != expected_key:
        raise bad(
            f"digest mismatch: embedded point hashes to {point.key()!r} — "
            "relabeled or tampered record"
        )
    return record


class RunnerBackend:
    """Where one shard gets computed.  Subclasses define the *how*.

    Contract for :meth:`run_shard`: return the shard's records in shard
    order, all keys matching ``shard.keys``, every record already
    integrity-validated; call ``heartbeat()`` at least once per point (or
    progress event) so the coordinator's lease stays fresh; raise
    :class:`ShardExecutionError` for any failure the coordinator should
    requeue.
    """

    name: str = "backend"

    def run_shard(self, spec: SweepSpec, shard: Shard,
                  heartbeat: Heartbeat) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def probe(self) -> bool:
        """Cheap liveness check (no side effects)."""
        return True

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class LocalBackend(RunnerBackend):
    """Compute shards in this process via the fault-tolerant pool runner.

    Each attempt runs against a fresh scratch store under ``scratch_dir``
    (deleted afterwards), so a failed attempt leaves nothing behind and a
    successful one hands the coordinator exactly the shard's records —
    the real store is touched only by the coordinator's ordered merge.
    """

    def __init__(self, scratch_dir: str, workers: Optional[int] = None,
                 kernel_variant: Optional[str] = None,
                 policy: Optional[RetryPolicy] = None,
                 name: str = "local") -> None:
        self.scratch_dir = scratch_dir
        self.workers = workers
        self.kernel_variant = kernel_variant
        self.policy = policy
        self.name = name
        self._serial = itertools.count()

    def run_shard(self, spec: SweepSpec, shard: Shard,
                  heartbeat: Heartbeat) -> List[Dict[str, Any]]:
        os.makedirs(self.scratch_dir, exist_ok=True)
        scratch_path = os.path.join(
            self.scratch_dir,
            f"shard-{shard.index}-a{next(self._serial)}.jsonl",
        )
        heartbeat()
        scratch = ResultStore(scratch_path, load=False)
        try:
            try:
                summary = run_sweep(
                    list(shard.points), scratch,
                    workers=self.workers,
                    kernel_variant=self.kernel_variant,
                    policy=self.policy,
                    on_point_done=lambda _k, _r, _i: heartbeat(),
                )
            except SweepInterrupted as exc:
                raise ShardExecutionError(
                    f"{self.name}: {shard.label()} interrupted "
                    f"({exc.summary.describe()})"
                ) from exc
            if summary.failures:
                labels = ", ".join(
                    f.label for f in summary.failures.values()
                )
                raise ShardExecutionError(
                    f"{self.name}: {shard.label()} had "
                    f"{len(summary.failures)} permanently failed point(s): "
                    f"{labels}"
                )
            records = []
            for key in shard.keys:
                record = scratch.get(key)
                if record is None:
                    raise ShardExecutionError(
                        f"{self.name}: {shard.label()} completed without "
                        f"producing record {key!r}"
                    )
                records.append(record)
            return records
        finally:
            try:
                os.remove(scratch_path)
            except OSError:
                pass


class PeerBackend(RunnerBackend):
    """Compute shards on a remote sweep service over the job protocol.

    The peer expands the same spec (expansion is deterministic, so both
    sides agree on every index), runs only its ``[start, stop)`` slice
    against its own store, and serves the records back as canonical store
    bytes.  Every fetched record passes :func:`validate_record_bytes`;
    a record that keeps failing validation after ``fetch_retries``
    refetches fails the shard, which the coordinator then recomputes
    elsewhere.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 retries: int = 2, backoff_s: float = 0.1,
                 workers: Optional[int] = None,
                 fetch_retries: int = 3,
                 job_timeout_s: float = 600.0,
                 name: Optional[str] = None) -> None:
        self.client = ServiceClient(
            host, port, timeout=timeout,
            retries=retries, backoff_s=backoff_s, peer_name=name,
        )
        self.name = self.client.peer_name
        self.workers = workers
        self.fetch_retries = max(0, int(fetch_retries))
        self.job_timeout_s = job_timeout_s

    def probe(self) -> bool:
        try:
            return self.client.health().get("status") == "ok"
        except ReproError:
            return False

    def describe(self) -> str:
        return f"peer http://{self.client.host}:{self.client.port}"

    def run_shard(self, spec: SweepSpec, shard: Shard,
                  heartbeat: Heartbeat) -> List[Dict[str, Any]]:
        try:
            return self._run_shard(spec, shard, heartbeat)
        except ServiceError as exc:
            # Transport/protocol failure after the client's own retry
            # budget: surface as a requeueable shard failure.
            raise ShardExecutionError(
                f"{self.name}: {shard.label()} failed: {exc}"
            ) from exc

    def _run_shard(self, spec: SweepSpec, shard: Shard,
                   heartbeat: Heartbeat) -> List[Dict[str, Any]]:
        response = self.client.submit(
            spec.to_dict(),
            shard={"start": shard.start, "stop": shard.stop},
            workers=self.workers,
        )
        job_id = response["job_id"]
        heartbeat()
        # Follow the run; every SSE event renews the lease.  The stream
        # client reconnects and replays through transient drops on its own.
        for _event_id, name, _data in self.client.stream(
                job_id, timeout=self.job_timeout_s):
            heartbeat()
            if name in TERMINAL_EVENTS:
                break
        status = self.client.job(job_id)
        if status["state"] in ("queued", "running"):
            # Stream ended without a terminal event (e.g. a broadcaster
            # reset on resubmission by another client): fall back to a
            # bounded wait.
            status = self.client.wait(job_id, timeout=self.job_timeout_s)
        if status["state"] != "done":
            raise ShardExecutionError(
                f"{self.name}: {shard.label()} job {job_id} ended "
                f"{status['state']!r}: {status.get('error') or 'no detail'}"
            )
        heartbeat()
        records = []
        for key in shard.keys:
            records.append(self._fetch_record(key, shard, heartbeat))
        return records

    def _fetch_record(self, key: str, shard: Shard,
                      heartbeat: Heartbeat) -> Dict[str, Any]:
        last: Optional[ShardValidationError] = None
        for attempt in range(1, self.fetch_retries + 2):
            raw = self.client.result(key, attempt=attempt)
            heartbeat()
            try:
                return validate_record_bytes(raw, key)
            except ShardValidationError as exc:
                # Bad bytes in transit (or a lying peer): refetch with an
                # advanced attempt number so a seeded fault plan moves on.
                last = exc
        raise ShardValidationError(
            f"{self.name}: {shard.label()}: {last} "
            f"(after {self.fetch_retries + 1} fetch attempt(s))"
        )


__all__ = [
    "Heartbeat",
    "LocalBackend",
    "PeerBackend",
    "RunnerBackend",
    "Shard",
    "ShardExecutionError",
    "ShardValidationError",
    "validate_record_bytes",
]
