"""Shard scheduler: leases, failover, work stealing, and the merger.

The coordinator turns one sweep spec into the same store bytes a
single-host ``python -m repro.sweep run`` would produce, using however
many backends happen to survive.  Since the :mod:`repro.exec` refactor
the coordinator holds no private coordination machinery: leases come
from :class:`repro.exec.lease.LeaseTable`, attempt budgets from
:class:`repro.exec.attempts.AttemptTracker`, the merge frontier is a
:class:`repro.exec.frontier.FlushFrontier` whose emit callback is
``store.merge``, and checkpoints ride on :mod:`repro.exec.checkpoint`.
The pieces:

**Planning.**  The spec is expanded and deduped into the canonical
expansion-order point list (exactly as the pool runner and the service do
it).  Points already in the store are cache hits; the remaining pending
points — which always form contiguous runs, because the store is an
expansion-order prefix plus whatever earlier fabric runs merged — are
chopped into contiguous :class:`~repro.fabric.backends.Shard` ranges of at
most ``shard_size`` points.

**Dispatch under lease, with work stealing.**  Each available
(health-gated) backend may hold up to ``max_inflight_shards`` leases at
once; the default of 1 preserves the original one-shard-per-backend
behaviour.  Whenever a backend has spare lease capacity it *steals* the
oldest unleased shard (lowest shard ordinal first — the shard the merge
frontier is waiting on), idle-most backends first, so a fast peer
pipelines several shards while a slow one grinds on its first.  The
backend's progress callbacks renew the shard's lease; a lease that misses
heartbeats for ``lease_timeout_s`` is declared expired — the backend is
charged a failure, and the shard is requeued for a surviving backend.
Delivery is therefore *at least once*; a stale worker that eventually
finishes anyway is harmless, because its result is accepted only if the
shard is still open, and record-level dedup (content keys + byte-identical
merge) makes duplicates invisible.

**Deterministic merge.**  Completed shards buffer in the merge frontier
and are folded into the store strictly in shard order (the inter-host
mirror of the runner's flush frontier — literally the same class now).
Records therefore land in the file in expansion order no matter which
backend finished first — this is what makes the final store
byte-identical to the fault-free single-host store under any cluster
shape, assignment, failover, or retry history (the abelian-networks
property the reproduction is built around).  A shard that keeps failing
everywhere exhausts ``max_shard_attempts`` and raises
:class:`~repro.common.errors.FabricError` carrying a partial
:class:`FabricSummary` (per-point ``failures`` in the sweep summary's
schema, plus ``n_discarded`` for completed-but-unmerged work); everything
merged up to that point stays durable, and re-running resumes from the
cached prefix.

**Checkpoint / handoff.**  With ``checkpoint_path`` set, the coordinator
periodically snapshots its plan, merge position, attempt counters, and
completed-but-unmerged shard records (atomic tmp + replace).  A
replacement coordinator started on the same store + checkpoint — e.g.
after the original was SIGKILLed mid-run — resumes where it stopped:
the merged prefix is recomputed from the *store* (never trusted from the
checkpoint, since the coordinator may die between a merge and the next
snapshot), buffered completions are rehydrated instead of recomputed,
and attempt budgets carry over so a failing shard does not get a fresh
budget by crashing its supervisor.  The checkpoint is cleared on any
terminal outcome (success or budget exhaustion); it exists to survive
crashes, not to memoise failures.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, FabricError, StoreError
from repro.common.jsonutil import content_digest
from repro.exec.attempts import AttemptTracker
from repro.exec.checkpoint import (
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.exec.frontier import FlushFrontier, dedup_ordered
from repro.exec.lease import LeaseTable
from repro.fabric.backends import PeerBackend, RunnerBackend, Shard
from repro.fabric.health import DEAD, BackendHealth
from repro.sweep.grid import ExperimentPoint, SweepSpec
from repro.sweep.runner import FailureRecord
from repro.sweep.store import ResultStore

#: Default shard size: small enough that a lost peer forfeits little work,
#: large enough to amortise one job submission per shard.
DEFAULT_SHARD_SIZE = 8

#: Checkpoint payload schema version; bump on incompatible layout changes
#: (a mismatched version is simply ignored and the run re-plans fresh).
CHECKPOINT_VERSION = 1


@dataclass
class FabricSummary:
    """What one coordinated run did, across every backend.

    The failure schema is shared with the sweep runner's ``SweepSummary``:
    ``failures`` maps point keys to the same
    :class:`~repro.sweep.runner.FailureRecord` and ``n_discarded`` counts
    computed-but-unpersisted points, so tooling that consumes one summary
    consumes the other unchanged.
    """

    n_points: int                 # deduped points in the spec
    n_cached: int                 # already in the store when the run began
    n_computed: int               # newly merged by this run
    n_shards: int                 # shards planned (0 on a pure cache hit)
    n_requeues: int = 0           # shard dispatches beyond the first
    n_expired_leases: int = 0     # leases lost to missed heartbeats
    elapsed_s: float = 0.0
    degraded: bool = False        # peers were configured but all ended dead
    #: ``point key -> FailureRecord`` for the shard that exhausted its
    #: attempt budget (same schema as ``SweepSummary.failures``).
    failures: Dict[str, FailureRecord] = field(default_factory=dict)
    #: Records completed by backends but never merged because an earlier
    #: shard's failure blocked the merge frontier — recomputed (or
    #: cache-hit) on the next run, like the sweep's computed-but-unflushed.
    n_discarded: int = 0
    #: backend name -> health/status counters (shards completed included).
    backends: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cached / self.n_points if self.n_points else 0.0

    def describe(self) -> str:
        tail = ""
        if self.n_requeues:
            tail += f"; {self.n_requeues} shard requeue(s)"
        if self.n_expired_leases:
            tail += f"; {self.n_expired_leases} lease(s) expired"
        if self.failures:
            tail += f"; {len(self.failures)} FAILED"
        if self.n_discarded:
            tail += f"; {self.n_discarded} computed-but-unflushed"
        if self.degraded:
            tail += "; degraded to local-only (all peers down)"
        return (
            f"{self.n_points} points: {self.n_cached} cached, "
            f"{self.n_computed} computed over {self.n_shards} shard(s) "
            f"via {len(self.backends)} backend(s) "
            f"in {self.elapsed_s:.2f}s{tail}"
        )


def dedup_points(
    points: Sequence[ExperimentPoint],
) -> "OrderedDict[str, ExperimentPoint]":
    """Unique points in expansion order — the canonical list every layer
    (pool runner, service shard jobs, fabric) agrees on index by index."""
    return dedup_ordered((point.key(), point) for point in points)


def plan_shards(
    keyed: "OrderedDict[str, ExperimentPoint]",
    store: ResultStore,
    shard_size: int,
) -> List[Shard]:
    """Chop the pending (not-in-store) points into contiguous shards.

    Pending indices are walked in expansion order; each maximal contiguous
    run is split into chunks of at most ``shard_size``.  Shard ordinals
    (``Shard.index``) number the shards in expansion order — the merge
    frontier consumes them in exactly that order.
    """
    if shard_size < 1:
        raise FabricError(f"shard_size must be >= 1, got {shard_size}")
    items = list(keyed.items())
    shards: List[Shard] = []
    run_start: Optional[int] = None

    def close_run(end: int) -> None:
        nonlocal run_start
        if run_start is None:
            return
        for chunk_start in range(run_start, end, shard_size):
            chunk_stop = min(chunk_start + shard_size, end)
            chunk = items[chunk_start:chunk_stop]
            shards.append(Shard(
                index=len(shards),
                start=chunk_start,
                stop=chunk_stop,
                points=tuple(point for _key, point in chunk),
                keys=tuple(key for key, _point in chunk),
            ))
        run_start = None

    for position, (key, _point) in enumerate(items):
        if key in store:
            close_run(position)
        elif run_start is None:
            run_start = position
    close_run(len(items))
    return shards


def _shards_from_ranges(
    ranges: Any,
    keyed: "OrderedDict[str, ExperimentPoint]",
) -> Optional[List[Shard]]:
    """Reconstruct a checkpointed shard plan from its ``(start, stop)``
    ranges over the deterministic expansion; ``None`` on any anomaly."""
    if not isinstance(ranges, list) or not ranges:
        return None
    items = list(keyed.items())
    shards: List[Shard] = []
    prev_stop = 0
    try:
        for position, entry in enumerate(ranges):
            index = int(entry["index"])
            start = int(entry["start"])
            stop = int(entry["stop"])
            if index != position:
                return None
            if not (0 <= start < stop <= len(items)) or start < prev_stop:
                return None
            chunk = items[start:stop]
            shards.append(Shard(
                index=index,
                start=start,
                stop=stop,
                points=tuple(point for _key, point in chunk),
                keys=tuple(key for key, _point in chunk),
            ))
            prev_stop = stop
    except (KeyError, TypeError, ValueError):
        return None
    return shards


class FabricCoordinator:
    """Drives one spec to completion across a set of backends."""

    def __init__(
        self,
        backends: Sequence[RunnerBackend],
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_timeout_s: float = 60.0,
        max_shard_attempts: Optional[int] = None,
        dead_after: int = 3,
        cooldown_s: float = 10.0,
        poll_s: float = 0.05,
        max_inflight_shards: int = 1,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval_s: float = 5.0,
        log: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not backends:
            raise FabricError(
                "fabric needs at least one backend (local and/or peers)"
            )
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise FabricError(f"backend names must be unique, got {names}")
        if max_inflight_shards < 1:
            raise ConfigurationError(
                f"max_inflight_shards must be >= 1, got {max_inflight_shards}"
            )
        if checkpoint_interval_s <= 0:
            raise ConfigurationError(
                f"checkpoint_interval_s must be positive, "
                f"got {checkpoint_interval_s}"
            )
        self.backends = list(backends)
        self.shard_size = shard_size
        self.lease_timeout_s = lease_timeout_s
        # Every shard may fail once per backend and still complete on a
        # second pass somewhere; beyond that the run is hopeless.
        self.max_shard_attempts = (
            max_shard_attempts if max_shard_attempts is not None
            else 2 * len(self.backends) + 2
        )
        self.max_inflight_shards = max_inflight_shards
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval_s = checkpoint_interval_s
        self.poll_s = poll_s
        self.log = log
        self.clock = clock
        self.health: Dict[str, BackendHealth] = {
            backend.name: BackendHealth(
                backend.name, dead_after=dead_after,
                cooldown_s=cooldown_s, clock=clock,
            )
            for backend in self.backends
        }
        #: Shards completed per backend name (summary bookkeeping).
        self._completed_by: Dict[str, int] = {
            backend.name: 0 for backend in self.backends
        }
        #: The live lease table while a run executes (probe/stats read it).
        self._leases: Optional[LeaseTable] = None

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def probe(self) -> Dict[str, bool]:
        """One liveness probe per backend (does not change health state)."""
        return {backend.name: backend.probe() for backend in self.backends}

    def lease_counts(self) -> Dict[str, int]:
        """Live in-flight lease count per backend (0s when no run is
        executing) — the numbers the work-stealing cap compares against
        ``max_inflight_shards``."""
        table = self._leases
        return {
            backend.name: (table.held_by(backend.name) if table else 0)
            for backend in self.backends
        }

    # -- the run -----------------------------------------------------------
    def run(self, spec: SweepSpec, store: ResultStore) -> FabricSummary:
        """Compute every pending point of ``spec`` into ``store``.

        Returns a :class:`FabricSummary`; raises
        :class:`~repro.common.errors.FabricError` (with the partial
        summary attached) when a shard exhausts its attempt budget on
        every available backend.  The store's merged prefix is durable
        either way — re-running resumes from it.
        """
        t0 = time.monotonic()
        keyed = dedup_points(spec.expand())
        shards, resume = self._plan_or_resume(spec, keyed, store)
        n_points = len(keyed)
        n_cached = sum(1 for key in keyed if key in store)
        summary = FabricSummary(
            n_points=n_points,
            n_cached=n_cached,
            n_computed=0,
            n_shards=len(shards),
        )
        self._say(
            f"fabric: spec {spec.name!r}: {n_points} points, "
            f"{n_cached} cached, {n_points - n_cached} pending in "
            f"{len(shards)} shard(s) across {len(self.backends)} backend(s)"
        )
        try:
            if shards:
                self._execute(spec, store, shards, summary, resume)
        except FabricError as exc:
            summary.elapsed_s = time.monotonic() - t0
            summary.degraded = self._is_degraded()
            summary.backends = self._backend_stats()
            if exc.summary is None:
                exc.summary = summary
            # Terminal outcome: the checkpoint must not memoise the
            # exhausted attempt budget into the next (fresh) run.
            if self.checkpoint_path:
                clear_checkpoint(self.checkpoint_path)
            raise
        if self.checkpoint_path:
            clear_checkpoint(self.checkpoint_path)
        summary.elapsed_s = time.monotonic() - t0
        # Degradation is snapshotted BEFORE the stats pass: status() reads
        # the promoting ``state`` property, which can flip a dead peer to
        # post-cooldown probation while this very summary is being built —
        # "ended the run dead" must not depend on wall-clock read order.
        summary.degraded = self._is_degraded()
        summary.backends = self._backend_stats()
        return summary

    def _plan_or_resume(
        self,
        spec: SweepSpec,
        keyed: "OrderedDict[str, ExperimentPoint]",
        store: ResultStore,
    ) -> Tuple[List[Shard], Optional[Dict[str, Any]]]:
        """The shard plan for this run: reconstructed from a live
        checkpoint when one matches this spec, planned fresh otherwise."""
        if self.checkpoint_path:
            data = read_checkpoint(self.checkpoint_path)
            if (
                data is not None
                and data.get("version") == CHECKPOINT_VERSION
                and data.get("spec_digest") == _spec_digest(spec)
            ):
                shards = _shards_from_ranges(data.get("shards"), keyed)
                if shards is not None:
                    return shards, data
            if data is not None:
                self._say(
                    "fabric: ignoring checkpoint (stale or mismatched); "
                    "planning fresh from the store"
                )
        return plan_shards(keyed, store, self.shard_size), None

    def _backend_stats(self) -> Dict[str, Dict[str, Any]]:
        counts = self.lease_counts()
        stats = {}
        for backend in self.backends:
            entry = self.health[backend.name].status()
            entry["kind"] = type(backend).__name__
            entry["shards_completed"] = self._completed_by[backend.name]
            entry["inflight_leases"] = counts[backend.name]
            entry["max_inflight"] = self.max_inflight_shards
            stats[backend.name] = entry
        return stats

    def _is_degraded(self) -> bool:
        peers = [b for b in self.backends if isinstance(b, PeerBackend)]
        # state (not available()) on purpose: a peer in post-cooldown
        # probation still *ended the run* dead for degradation purposes.
        return bool(peers) and all(
            self.health[peer.name]._state == DEAD for peer in peers
        )

    def _execute(self, spec: SweepSpec, store: ResultStore,
                 shards: List[Shard], summary: FabricSummary,
                 resume: Optional[Dict[str, Any]] = None) -> None:
        leases = LeaseTable(self.lease_timeout_s, clock=self.clock)
        self._leases = leases
        attempts = AttemptTracker(self.max_shard_attempts)
        first_dispatch: Dict[int, float] = {}
        done_q: "queue.Queue[Tuple[int, Optional[List[Dict[str, Any]]], Optional[BaseException]]]" = queue.Queue()
        threads: List[threading.Thread] = []
        spec_digest = _spec_digest(spec)

        def merge_shard(index: int, records: List[Dict[str, Any]]) -> None:
            summary.n_computed += store.merge(records)
            self._say(
                f"fabric: merged {shards[index].label()} "
                f"({len(records)} record(s))"
            )

        frontier = FlushFrontier(len(shards), emit=merge_shard)

        if resume is not None:
            self._rehydrate(frontier, attempts, summary, shards,
                            store, resume)

        pending: List[Shard] = [
            shard for shard in shards
            if not frontier.is_complete(shard.index)
        ]

        # -- checkpointing -------------------------------------------------
        ckpt_state = {"dirty": False, "last": self.clock()}

        def save_checkpoint(force: bool = False) -> None:
            if not self.checkpoint_path:
                return
            now = self.clock()
            if not force and not (
                ckpt_state["dirty"]
                and now - ckpt_state["last"] >= self.checkpoint_interval_s
            ):
                return
            write_checkpoint(self.checkpoint_path, {
                "version": CHECKPOINT_VERSION,
                "spec_digest": spec_digest,
                "shard_size": self.shard_size,
                "shards": [
                    {"index": s.index, "start": s.start, "stop": s.stop}
                    for s in shards
                ],
                "merged_through": frontier.position,
                "attempts": attempts.snapshot(),
                "completed": {
                    str(index): records
                    for index, records in frontier.buffered().items()
                },
                "n_requeues": summary.n_requeues,
                "n_expired_leases": summary.n_expired_leases,
            })
            ckpt_state["dirty"] = False
            ckpt_state["last"] = now

        def dispatch(shard: Shard, backend: RunnerBackend) -> None:
            lease = leases.issue(shard, backend.name)
            first_dispatch.setdefault(shard.index, self.clock())
            n = attempts.charge(shard.index)
            self._say(
                f"fabric: {shard.label()} -> {backend.name} (attempt {n})"
            )

            def work() -> None:
                try:
                    records = backend.run_shard(spec, shard, lease.beat)
                except BaseException as exc:
                    done_q.put((lease.ticket, None, exc))
                else:
                    done_q.put((lease.ticket, records, None))

            thread = threading.Thread(
                target=work, daemon=True,
                name=f"fabric-{backend.name}-s{shard.index}",
            )
            threads.append(thread)
            thread.start()

        def drop_from_pending(index: int) -> None:
            stale = [s for s in pending if s.index == index]
            for shard in stale:
                pending.remove(shard)

        def give_up(shard: Shard, reason: str, error_kind: str) -> None:
            n = attempts.attempts(shard.index)
            elapsed = self.clock() - first_dispatch.get(
                shard.index, self.clock())
            for key, point in zip(shard.keys, shard.points):
                summary.failures[key] = FailureRecord(
                    key=key,
                    label=point.label(),
                    attempts=n,
                    error=error_kind,
                    message=reason,
                    elapsed_s=elapsed,
                )
            # Records computed by backends but stuck behind the failed
            # shard: counted (point granularity, like the sweep summary)
            # and dropped — the next run recomputes or cache-hits them.
            summary.n_discarded += sum(
                len(records) for records in frontier.buffered().values()
            )
            frontier.discard()
            raise FabricError(
                f"{shard.label()} failed {n} time(s) across the fabric "
                f"(last: {reason}); giving up — {frontier.position} "
                "shard(s) are merged and durable, re-run to resume"
            )

        def requeue(shard: Shard, reason: str, error_kind: str) -> None:
            if frontier.is_complete(shard.index):
                return
            if attempts.exhausted(shard.index):
                give_up(shard, reason, error_kind)
            summary.n_requeues += 1
            ckpt_state["dirty"] = True
            pending.append(shard)
            self._say(f"fabric: requeueing {shard.label()}: {reason}")

        save_checkpoint(force=True)

        while not frontier.done:
            # Work-stealing dispatch: every available backend may hold up
            # to ``max_inflight_shards`` leases; the idle-most backend
            # (ties broken in configured order) steals the oldest
            # unleased shard — the one the merge frontier needs next.
            while pending:
                candidates = [
                    backend for backend in self.backends
                    if self.health[backend.name].available()
                    and leases.held_by(backend.name) < self.max_inflight_shards
                ]
                if not candidates:
                    break
                candidates.sort(key=lambda b: leases.held_by(b.name))
                shard = min(pending, key=lambda s: s.index)
                pending.remove(shard)
                dispatch(shard, candidates[0])

            # Wait for one completion (or just tick), then drain whatever
            # else has queued up: fast backends can finish several shards
            # per poll interval, and consuming one completion per tick
            # would lag the merge frontier and redispatch behind them.
            arrivals: List[Tuple[int, Optional[List[Dict[str, Any]]],
                                 Optional[BaseException]]] = []
            try:
                arrivals.append(done_q.get(timeout=self.poll_s))
            except queue.Empty:
                pass
            while True:
                try:
                    arrivals.append(done_q.get_nowait())
                except queue.Empty:
                    break
            for ticket, records, exc in arrivals:
                lease = leases.lookup(ticket)
                shard, holder = lease.item, lease.holder
                if not lease.expired:
                    leases.release(ticket)
                if exc is None and records is not None:
                    # A late result from an expired lease is still a
                    # success — accepted iff the shard is still open
                    # (at-least-once; the merge dedups the rest).  Health
                    # is only updated for live leases: the expiry already
                    # charged this backend a failure, and a late success
                    # must not resurrect a DEAD peer straight to ALIVE,
                    # bypassing the probation trial health.py documents.
                    if not lease.expired:
                        self.health[holder].record_success()
                    if not frontier.is_complete(shard.index):
                        self._completed_by[holder] += 1
                        drop_from_pending(shard.index)
                        ckpt_state["dirty"] = True
                        if frontier.complete(shard.index, records):
                            # The merge frontier advanced: snapshot now —
                            # this is the state a handoff must not lose.
                            save_checkpoint(force=True)
                else:
                    self._say(
                        f"fabric: {shard.label()} failed on "
                        f"{holder}: {exc}"
                    )
                    if not lease.expired:
                        self.health[holder].record_failure()
                        requeue(shard, f"{type(exc).__name__}: {exc}",
                                type(exc).__name__)

            # Expire leases that stopped heartbeating.
            for lease in leases.expire_stale():
                self.health[lease.holder].record_failure()
                summary.n_expired_leases += 1
                ckpt_state["dirty"] = True
                requeue(
                    lease.item,
                    f"lease expired on {lease.holder} "
                    f"(no heartbeat for {self.lease_timeout_s:.1f}s)",
                    "LeaseExpired",
                )

            save_checkpoint()

        # Give promptly-finishing workers a moment to park; stragglers are
        # daemon threads blocked in bounded (timeout-bearing) I/O.
        for thread in threads:
            thread.join(timeout=0.2)

    def _rehydrate(self, frontier: FlushFrontier, attempts: AttemptTracker,
                   summary: FabricSummary, shards: List[Shard],
                   store: ResultStore,
                   resume: Dict[str, Any]) -> None:
        """Restore coordinator state from a checkpoint written by a
        predecessor on the same store.

        The merged prefix is recomputed from the store — the predecessor
        may have died between a merge and its next snapshot, and the
        store (not the checkpoint) is the durable truth.  A checkpointed
        ``completed`` payload that conflicts with the store is dropped and
        recomputed; losing checkpoint state costs work, never bytes.
        """
        merged = 0
        for shard in shards:
            if all(key in store for key in shard.keys):
                merged += 1
            else:
                break
        frontier.advance_to(merged)
        try:
            attempts.restore(resume.get("attempts", {}) or {}, key=int)
            summary.n_requeues = int(resume.get("n_requeues", 0))
            summary.n_expired_leases = int(resume.get("n_expired_leases", 0))
            completed = resume.get("completed", {}) or {}
            rehydrated = sorted(
                (int(raw_index), records)
                for raw_index, records in completed.items()
            )
        except (TypeError, ValueError):
            rehydrated = []
        for index, records in rehydrated:
            if not (0 <= index < len(shards)) or index < merged:
                continue
            if not isinstance(records, list):
                continue
            try:
                frontier.complete(index, records)
            except StoreError:
                frontier.drop(index)
        self._say(
            f"fabric: resumed from checkpoint: {frontier.position}/"
            f"{len(shards)} shard(s) already merged, "
            f"{len(frontier.buffered())} rehydrated in buffer"
        )


def _spec_digest(spec: SweepSpec) -> str:
    """Content digest binding a checkpoint to the spec that produced it."""
    return content_digest({"sweep_spec": spec.to_dict()}, 16)


__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_SHARD_SIZE",
    "FabricCoordinator",
    "FabricSummary",
    "dedup_points",
    "plan_shards",
]
