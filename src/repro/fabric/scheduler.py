"""Shard scheduler: leases, failover, and the deterministic merger.

The coordinator turns one sweep spec into the same store bytes a
single-host ``python -m repro.sweep run`` would produce, using however
many backends happen to survive.  The pieces:

**Planning.**  The spec is expanded and deduped into the canonical
expansion-order point list (exactly as the pool runner and the service do
it).  Points already in the store are cache hits; the remaining pending
points — which always form contiguous runs, because the store is an
expansion-order prefix plus whatever earlier fabric runs merged — are
chopped into contiguous :class:`~repro.fabric.backends.Shard` ranges of at
most ``shard_size`` points.

**Dispatch under lease.**  Each shard is handed to one available backend
(health-gated, one shard per backend at a time) on a worker thread.  The
backend's progress callbacks renew the shard's lease; a lease that misses
heartbeats for ``lease_timeout_s`` is declared expired — the backend is
charged a failure, and the shard is requeued for a surviving backend.
Delivery is therefore *at least once*; a stale worker that eventually
finishes anyway is harmless, because its result is accepted only if the
shard is still open, and record-level dedup (content keys + byte-identical
merge) makes duplicates invisible.

**Deterministic merge.**  Completed shards buffer in memory and are folded
into the store strictly in shard order (a merge frontier, the inter-host
mirror of the runner's flush frontier).  Records therefore land in the
file in expansion order no matter which backend finished first — this is
what makes the final store byte-identical to the fault-free single-host
store under any cluster shape, assignment, failover, or retry history
(the abelian-networks property the reproduction is built around).  A
shard that keeps failing everywhere exhausts ``max_shard_attempts`` and
raises :class:`~repro.common.errors.FabricError`; everything merged up to
that point stays durable, and re-running resumes from the cached prefix.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import FabricError
from repro.fabric.backends import PeerBackend, RunnerBackend, Shard
from repro.fabric.health import DEAD, BackendHealth
from repro.sweep.grid import ExperimentPoint, SweepSpec
from repro.sweep.store import ResultStore

#: Default shard size: small enough that a lost peer forfeits little work,
#: large enough to amortise one job submission per shard.
DEFAULT_SHARD_SIZE = 8


@dataclass
class FabricSummary:
    """What one coordinated run did, across every backend."""

    n_points: int                 # deduped points in the spec
    n_cached: int                 # already in the store when the run began
    n_computed: int               # newly merged by this run
    n_shards: int                 # shards planned (0 on a pure cache hit)
    n_requeues: int = 0           # shard dispatches beyond the first
    n_expired_leases: int = 0     # leases lost to missed heartbeats
    elapsed_s: float = 0.0
    degraded: bool = False        # peers were configured but all ended dead
    #: backend name -> health/status counters (shards completed included).
    backends: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.n_cached / self.n_points if self.n_points else 0.0

    def describe(self) -> str:
        tail = ""
        if self.n_requeues:
            tail += f"; {self.n_requeues} shard requeue(s)"
        if self.n_expired_leases:
            tail += f"; {self.n_expired_leases} lease(s) expired"
        if self.degraded:
            tail += "; degraded to local-only (all peers down)"
        return (
            f"{self.n_points} points: {self.n_cached} cached, "
            f"{self.n_computed} computed over {self.n_shards} shard(s) "
            f"via {len(self.backends)} backend(s) "
            f"in {self.elapsed_s:.2f}s{tail}"
        )


def dedup_points(
    points: Sequence[ExperimentPoint],
) -> "OrderedDict[str, ExperimentPoint]":
    """Unique points in expansion order — the canonical list every layer
    (pool runner, service shard jobs, fabric) agrees on index by index."""
    keyed: "OrderedDict[str, ExperimentPoint]" = OrderedDict()
    for point in points:
        keyed.setdefault(point.key(), point)
    return keyed


def plan_shards(
    keyed: "OrderedDict[str, ExperimentPoint]",
    store: ResultStore,
    shard_size: int,
) -> List[Shard]:
    """Chop the pending (not-in-store) points into contiguous shards.

    Pending indices are walked in expansion order; each maximal contiguous
    run is split into chunks of at most ``shard_size``.  Shard ordinals
    (``Shard.index``) number the shards in expansion order — the merge
    frontier consumes them in exactly that order.
    """
    if shard_size < 1:
        raise FabricError(f"shard_size must be >= 1, got {shard_size}")
    items = list(keyed.items())
    shards: List[Shard] = []
    run_start: Optional[int] = None

    def close_run(end: int) -> None:
        nonlocal run_start
        if run_start is None:
            return
        for chunk_start in range(run_start, end, shard_size):
            chunk_stop = min(chunk_start + shard_size, end)
            chunk = items[chunk_start:chunk_stop]
            shards.append(Shard(
                index=len(shards),
                start=chunk_start,
                stop=chunk_stop,
                points=tuple(point for _key, point in chunk),
                keys=tuple(key for key, _point in chunk),
            ))
        run_start = None

    for position, (key, _point) in enumerate(items):
        if key in store:
            close_run(position)
        elif run_start is None:
            run_start = position
    close_run(len(items))
    return shards


class _Lease:
    """One shard's claim on one backend, renewed by heartbeats."""

    __slots__ = ("shard", "backend", "clock", "last_beat", "expired")

    def __init__(self, shard: Shard, backend: RunnerBackend,
                 clock: Callable[[], float]) -> None:
        self.shard = shard
        self.backend = backend
        self.clock = clock
        self.last_beat = clock()
        self.expired = False

    def beat(self) -> None:
        # A bare float store: atomic under the GIL, safe to call from the
        # worker thread while the coordinator loop reads it.
        self.last_beat = self.clock()


class FabricCoordinator:
    """Drives one spec to completion across a set of backends."""

    def __init__(
        self,
        backends: Sequence[RunnerBackend],
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_timeout_s: float = 60.0,
        max_shard_attempts: Optional[int] = None,
        dead_after: int = 3,
        cooldown_s: float = 10.0,
        poll_s: float = 0.05,
        log: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not backends:
            raise FabricError(
                "fabric needs at least one backend (local and/or peers)"
            )
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise FabricError(f"backend names must be unique, got {names}")
        self.backends = list(backends)
        self.shard_size = shard_size
        self.lease_timeout_s = lease_timeout_s
        # Every shard may fail once per backend and still complete on a
        # second pass somewhere; beyond that the run is hopeless.
        self.max_shard_attempts = (
            max_shard_attempts if max_shard_attempts is not None
            else 2 * len(self.backends) + 2
        )
        self.poll_s = poll_s
        self.log = log
        self.clock = clock
        self.health: Dict[str, BackendHealth] = {
            backend.name: BackendHealth(
                backend.name, dead_after=dead_after,
                cooldown_s=cooldown_s, clock=clock,
            )
            for backend in self.backends
        }
        #: Shards completed per backend name (summary bookkeeping).
        self._completed_by: Dict[str, int] = {
            backend.name: 0 for backend in self.backends
        }

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def probe(self) -> Dict[str, bool]:
        """One liveness probe per backend (does not change health state)."""
        return {backend.name: backend.probe() for backend in self.backends}

    # -- the run -----------------------------------------------------------
    def run(self, spec: SweepSpec, store: ResultStore) -> FabricSummary:
        """Compute every pending point of ``spec`` into ``store``.

        Returns a :class:`FabricSummary`; raises
        :class:`~repro.common.errors.FabricError` when a shard exhausts
        its attempt budget on every available backend.  The store's merged
        prefix is durable either way — re-running resumes from it.
        """
        t0 = time.monotonic()
        keyed = dedup_points(spec.expand())
        shards = plan_shards(keyed, store, self.shard_size)
        n_points = len(keyed)
        n_pending = sum(shard.n_points for shard in shards)
        summary = FabricSummary(
            n_points=n_points,
            n_cached=n_points - n_pending,
            n_computed=0,
            n_shards=len(shards),
        )
        self._say(
            f"fabric: spec {spec.name!r}: {n_points} points, "
            f"{summary.n_cached} cached, {n_pending} pending in "
            f"{len(shards)} shard(s) across {len(self.backends)} backend(s)"
        )
        if shards:
            self._execute(spec, store, shards, summary)
        summary.elapsed_s = time.monotonic() - t0
        # Degradation is snapshotted BEFORE the stats pass: status() reads
        # the promoting ``state`` property, which can flip a dead peer to
        # post-cooldown probation while this very summary is being built —
        # "ended the run dead" must not depend on wall-clock read order.
        summary.degraded = self._is_degraded()
        summary.backends = self._backend_stats()
        return summary

    def _backend_stats(self) -> Dict[str, Dict[str, Any]]:
        stats = {}
        for backend in self.backends:
            entry = self.health[backend.name].status()
            entry["kind"] = type(backend).__name__
            entry["shards_completed"] = self._completed_by[backend.name]
            stats[backend.name] = entry
        return stats

    def _is_degraded(self) -> bool:
        peers = [b for b in self.backends if isinstance(b, PeerBackend)]
        # state (not available()) on purpose: a peer in post-cooldown
        # probation still *ended the run* dead for degradation purposes.
        return bool(peers) and all(
            self.health[peer.name]._state == DEAD for peer in peers
        )

    def _execute(self, spec: SweepSpec, store: ResultStore,
                 shards: List[Shard], summary: FabricSummary) -> None:
        pending: "deque[Shard]" = deque(shards)
        attempts: Dict[int, int] = {shard.index: 0 for shard in shards}
        completed: Dict[int, List[Dict[str, Any]]] = {}
        merged_through = 0            # shards [0, merged_through) are merged
        leases: Dict[int, _Lease] = {}   # ticket -> live lease
        busy: set = set()                # backend names holding a lease
        done_q: "queue.Queue[Tuple[int, Optional[List[Dict[str, Any]]], Optional[BaseException]]]" = queue.Queue()
        tickets: Dict[int, _Lease] = {}  # every lease ever issued
        threads: List[threading.Thread] = []
        next_ticket = 0

        def dispatch(shard: Shard, backend: RunnerBackend) -> None:
            nonlocal next_ticket
            ticket = next_ticket
            next_ticket += 1
            lease = _Lease(shard, backend, self.clock)
            leases[ticket] = lease
            tickets[ticket] = lease
            busy.add(backend.name)
            attempts[shard.index] += 1
            self._say(
                f"fabric: {shard.label()} -> {backend.name} "
                f"(attempt {attempts[shard.index]})"
            )

            def work() -> None:
                try:
                    records = backend.run_shard(spec, shard, lease.beat)
                except BaseException as exc:
                    done_q.put((ticket, None, exc))
                else:
                    done_q.put((ticket, records, None))

            thread = threading.Thread(
                target=work, daemon=True,
                name=f"fabric-{backend.name}-s{shard.index}",
            )
            threads.append(thread)
            thread.start()

        def drop_from_pending(index: int) -> None:
            stale = [s for s in pending if s.index == index]
            for shard in stale:
                pending.remove(shard)

        def requeue(shard: Shard, reason: str) -> None:
            if shard.index in completed:
                return
            if attempts[shard.index] >= self.max_shard_attempts:
                raise FabricError(
                    f"{shard.label()} failed {attempts[shard.index]} "
                    f"time(s) across the fabric (last: {reason}); giving "
                    f"up — {merged_through} shard(s) are merged and "
                    "durable, re-run to resume"
                )
            summary.n_requeues += 1
            pending.append(shard)
            self._say(f"fabric: requeueing {shard.label()}: {reason}")

        while merged_through < len(shards):
            # Dispatch to every free, healthy backend.
            for backend in self.backends:
                if not pending:
                    break
                if backend.name in busy:
                    continue
                if not self.health[backend.name].available():
                    continue
                dispatch(pending.popleft(), backend)

            # Wait for one completion (or just tick), then drain whatever
            # else has queued up: fast backends can finish several shards
            # per poll interval, and consuming one completion per tick
            # would lag the merge frontier and redispatch behind them.
            arrivals: List[Tuple[int, Optional[List[Dict[str, Any]]],
                                 Optional[BaseException]]] = []
            try:
                arrivals.append(done_q.get(timeout=self.poll_s))
            except queue.Empty:
                pass
            while True:
                try:
                    arrivals.append(done_q.get_nowait())
                except queue.Empty:
                    break
            for ticket, records, exc in arrivals:
                lease = tickets[ticket]
                shard, backend = lease.shard, lease.backend
                if not lease.expired:
                    leases.pop(ticket, None)
                    busy.discard(backend.name)
                if exc is None and records is not None:
                    # A late result from an expired lease is still a
                    # success — accepted iff the shard is still open
                    # (at-least-once; the merge dedups the rest).  Health
                    # is only updated for live leases: the expiry already
                    # charged this backend a failure, and a late success
                    # must not resurrect a DEAD peer straight to ALIVE,
                    # bypassing the probation trial health.py documents.
                    if not lease.expired:
                        self.health[backend.name].record_success()
                    if shard.index not in completed:
                        completed[shard.index] = records
                        self._completed_by[backend.name] += 1
                        drop_from_pending(shard.index)
                else:
                    self._say(
                        f"fabric: {shard.label()} failed on "
                        f"{backend.name}: {exc}"
                    )
                    if not lease.expired:
                        self.health[backend.name].record_failure()
                        requeue(shard, f"{type(exc).__name__}: {exc}")

            # Expire leases that stopped heartbeating.
            now = self.clock()
            for ticket, lease in list(leases.items()):
                if now - lease.last_beat <= self.lease_timeout_s:
                    continue
                lease.expired = True
                del leases[ticket]
                busy.discard(lease.backend.name)
                self.health[lease.backend.name].record_failure()
                summary.n_expired_leases += 1
                requeue(
                    lease.shard,
                    f"lease expired on {lease.backend.name} "
                    f"(no heartbeat for {self.lease_timeout_s:.1f}s)",
                )

            # Merge frontier: fold finished shards in, strictly in order.
            while merged_through < len(shards) and \
                    merged_through in completed:
                records = completed[merged_through]
                summary.n_computed += store.merge(records)
                self._say(
                    f"fabric: merged {shards[merged_through].label()} "
                    f"({len(records)} record(s))"
                )
                merged_through += 1

        # Give promptly-finishing workers a moment to park; stragglers are
        # daemon threads blocked in bounded (timeout-bearing) I/O.
        for thread in threads:
            thread.join(timeout=0.2)


__all__ = [
    "DEFAULT_SHARD_SIZE",
    "FabricCoordinator",
    "FabricSummary",
    "dedup_points",
    "plan_shards",
]
