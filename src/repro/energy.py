"""Per-event energy accounting model.

The paper's argument for the ring-clustered organisation is not raw IPC —
it is that a ring of narrow clusters trades a little IPC for much less
*energy and complexity* than a monolithic wide core.  This module supplies
the missing half of that comparison: a per-event energy model whose costs
are charged *as the simulation kernels process each dynamic instruction*,
not re-derived by a second pass over the trace.

Model
-----

Every micro-architectural event carries a configurable integer cost (an
abstract energy unit — a joules proxy, not calibrated picojoules):

* ``fetch`` / ``steer`` — once per dynamic instruction (NOPs included: they
  flow through the front end and the steering logic like anything else);
* ``issue`` — once per instruction that occupies an issue slot (NOPs do
  not issue, matching the kernels' issue stage);
* ``operand_read`` — once per *present* source operand;
  ``result_write`` — once per produced register value;
* ``fu`` — per executed operation, by instruction class
  (:class:`FuEnergy`, the energy analogue of Table 2's latency table);
* ``bus_hop`` — per hop of inter-cluster distance each operand transfer
  covers, i.e. the energy-weighted form of the hop histogram (under RING
  every operand read travels the ring; under CONV only remote reads pay);
* ``l1_hit`` / ``l1_miss`` / ``l2_miss`` — per data-cache outcome of a
  memory-class instruction;
* ``wakeup`` — per instruction, **scaled by the reorder-window occupancy**
  at the moment it is fetched (CAM-style wakeup/select grows with the
  number of waiting entries).  Occupancy counts the instructions fetched
  but not yet retired at the new instruction's fetch cycle, the new
  instruction included, so it is always in ``[1, window_size]``.

The occupancy term is what forces the accounting into the hot loop: every
other component folds over counters the kernels already maintain
incrementally (class tallies, hop counts, miss totals), but occupancy is a
property of the in-flight set at each fetch event and is tracked with a
retire-cycle column and a monotone retire pointer inside all three kernels
(generic loop, codegen-specialized variants, naive oracle).

All costs are integers, so all three kernel implementations must agree on
every breakdown component to the exact unit — the differential fuzz suite
enforces this the same way it pins cycle counts.

``EnergyConfig.enabled`` defaults to ``False``; a disabled model is
guaranteed free: the specializer emits byte-identical kernel source, the
generic loop pays one dead branch per instruction, results serialize
without an ``energy`` key, and ``ProcessorConfig.config_digest()`` is
unchanged — existing sweep stores keep hitting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.common.errors import ConfigurationError
from repro.common.types import (
    DEST_REGCLASS_FOR_CLASS,
    InstrClass,
    MEM_CLASSES,
)

#: Breakdown keys, in reporting order; ``total`` is appended last and always
#: equals the sum of these components.
ENERGY_COMPONENTS = (
    "fetch",
    "steer",
    "issue",
    "operand",
    "fu",
    "bus",
    "cache",
    "wakeup",
)

_N_CLASSES = len(InstrClass)

#: Classes that produce a register value / access the data cache, as flat
#: index lists for the fold below (and for the codegen literal folds).
DST_CLASS_INDICES = tuple(
    int(k) for k in InstrClass if DEST_REGCLASS_FOR_CLASS[k] is not None
)
MEM_CLASS_INDICES = tuple(int(k) for k in InstrClass if k in MEM_CLASSES)


def _cost(name: str, value: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ConfigurationError(
            f"{name} must be a non-negative integer energy cost, got {value!r}"
        )


@dataclass(frozen=True)
class FuEnergy:
    """Per-operation energy by instruction class (energy Table 2 analogue).

    ``load``/``store`` cover the datapath side of memory operations only;
    the cache outcome itself is charged separately via the
    ``l1_hit``/``l1_miss``/``l2_miss`` costs of :class:`EnergyConfig`.
    NOPs execute nothing and always cost zero.
    """

    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 8
    fp_add: int = 2
    fp_mul: int = 4
    fp_div: int = 10
    load: int = 2
    store: int = 2
    branch: int = 1

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            _cost(f"FuEnergy.{f.name}", getattr(self, f.name))

    def table(self) -> List[int]:
        """Flat cost table indexed by ``int(InstrClass)`` for the hot loop."""
        t = [0] * _N_CLASSES
        t[InstrClass.INT_ALU] = self.int_alu
        t[InstrClass.INT_MUL] = self.int_mul
        t[InstrClass.INT_DIV] = self.int_div
        t[InstrClass.FP_ADD] = self.fp_add
        t[InstrClass.FP_MUL] = self.fp_mul
        t[InstrClass.FP_DIV] = self.fp_div
        t[InstrClass.LOAD] = self.load
        t[InstrClass.FP_LOAD] = self.load
        t[InstrClass.STORE] = self.store
        t[InstrClass.FP_STORE] = self.store
        t[InstrClass.BRANCH] = self.branch
        t[InstrClass.NOP] = 0
        return t

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuEnergy":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"FuEnergy.from_dict expects a mapping, got {type(data).__name__}"
            )
        allowed = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"FuEnergy.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energy costs; disabled (and therefore free) by default."""

    enabled: bool = False
    fetch: int = 1
    steer: int = 1
    issue: int = 2
    operand_read: int = 1
    result_write: int = 1
    bus_hop: int = 2
    l1_hit: int = 1
    l1_miss: int = 5
    l2_miss: int = 20
    wakeup: int = 1
    fu: FuEnergy = field(default_factory=FuEnergy)

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigurationError(
                f"EnergyConfig.enabled must be a bool, got {self.enabled!r}"
            )
        for f in dataclasses.fields(self):
            if f.name in ("enabled", "fu"):
                continue
            _cost(f"EnergyConfig.{f.name}", getattr(self, f.name))
        if not isinstance(self.fu, FuEnergy):
            raise ConfigurationError(
                f"EnergyConfig.fu must be a FuEnergy, got {self.fu!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "fu"
        }
        out["fu"] = self.fu.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnergyConfig":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"EnergyConfig.from_dict expects a mapping, got {type(data).__name__}"
            )
        allowed = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"EnergyConfig.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        kwargs = dict(data)
        if "fu" in kwargs and not isinstance(kwargs["fu"], FuEnergy):
            kwargs["fu"] = FuEnergy.from_dict(kwargs["fu"])
        return cls(**kwargs)


def fold_breakdown(
    energy: EnergyConfig,
    n: int,
    class_counts: List[int],
    operand_reads: int,
    weighted_hops: int,
    l1_misses: int,
    l2_misses: int,
    wakeup_units: int,
) -> Dict[str, int]:
    """Assemble the energy breakdown from a kernel's incremental counters.

    Every argument is a counter the hot loop maintained while it ran:
    ``class_counts`` the per-class tally, ``operand_reads`` the number of
    present source operands, ``weighted_hops`` the distance-weighted sum of
    hop-histogram tallies (``sum(d * count)``), ``wakeup_units`` the sum of
    reorder-window occupancies at each fetch event.  The returned dict maps
    every :data:`ENERGY_COMPONENTS` entry plus ``"total"`` to integer
    energy units; ``total`` is the exact sum of the components.

    The naive oracle in ``bench/naive_ref.py`` deliberately does *not* use
    this helper — it charges every cost at its event site — so the
    differential tests check the fold against an independent accounting.
    """
    fu_table = energy.fu.table()
    n_issued = n - class_counts[InstrClass.NOP]
    writes = sum(class_counts[k] for k in DST_CLASS_INDICES)
    accesses = sum(class_counts[k] for k in MEM_CLASS_INDICES)
    breakdown = {
        "fetch": energy.fetch * n,
        "steer": energy.steer * n,
        "issue": energy.issue * n_issued,
        "operand": energy.operand_read * operand_reads
        + energy.result_write * writes,
        "fu": sum(fu_table[k] * class_counts[k] for k in range(_N_CLASSES)),
        "bus": energy.bus_hop * weighted_hops,
        "cache": energy.l1_hit * (accesses - l1_misses)
        + energy.l1_miss * l1_misses
        + energy.l2_miss * l2_misses,
        "wakeup": energy.wakeup * wakeup_units,
    }
    breakdown["total"] = sum(breakdown[c] for c in ENERGY_COMPONENTS)
    return breakdown


__all__ = [
    "DST_CLASS_INDICES",
    "ENERGY_COMPONENTS",
    "EnergyConfig",
    "FuEnergy",
    "MEM_CLASS_INDICES",
    "fold_breakdown",
]
