"""Table-driven issue/execute/writeback kernel.

This module contains the hot loop of the simulator.  It models, per dynamic
instruction, in program order:

* **fetch** — ``fetch_width`` instructions per cycle, stalled by reorder-window
  occupancy (``window_size`` entries, in-order retire) and redirected on
  mispredicted branches;
* **steering** — dependence-aware (consumer follows its critical producer;
  for ``RING`` it is placed one cluster *ahead* of the producer, where the
  result arrives first), modulo, or round-robin;
* **issue** — bounded by per-cluster issue width and functional-unit
  availability; divide units are not pipelined;
* **execute** — latency from the flat Table-2 latency table, plus cache-miss
  penalties for flagged memory operations;
* **writeback / interconnect** — under ``RING`` every result is injected on
  the unidirectional ring (bandwidth-limited per cluster) and becomes visible
  to cluster ``i+1`` first; there is no intra-cluster bypass, so a consumer
  in the producing cluster waits a full loop.  Under ``CONV`` results bypass
  locally for free and are broadcast on demand over the shortest of the two
  per-direction buses.

Everything the per-instruction body touches is a local name bound to a flat
``list`` or ``dict`` before the loop starts: no attribute lookups, no enum
instances, no per-instruction objects.  The instruction/FU taxonomy enters
only through integer-indexed tables built once from the config
(:meth:`FuLatencies.table`, ``FU_FOR_CLASS``), which is what makes the loop
table-driven rather than branchy.
"""

from __future__ import annotations

import dataclasses
from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError, SteeringError
from repro.energy import ENERGY_COMPONENTS, fold_breakdown
from repro.steering import BUILTIN_POLICIES, SteeringContext, get_policy
from repro.common.types import (
    DEST_REGCLASS_FOR_CLASS,
    FU_FOR_CLASS,
    InstrClass,
    Topology,
)
from repro.engine.trace import (
    FLAG_L1_MISS,
    FLAG_L2_MISS,
    FLAG_MISPREDICT,
    Trace,
)
from repro.engine.window import SoAWindow

#: Version tag of the timing model.  The sweep result store folds this into
#: its cache keys, so bump it whenever a change alters simulated cycle counts
#: (and mirror the change in ``bench/naive_ref.py``) — stale cached results
#: then miss instead of being silently reused.
#:
#: The timing model is implemented twice on purpose: the generic loop below
#: and the per-config specialized variants emitted by
#: :mod:`repro.engine.codegen`.  A codegen change that alters simulated
#: cycles is a timing-model change like any other and must bump this version
#: (and the generic loop and ``bench/naive_ref.py`` must be updated to
#: match); codegen changes that keep every :class:`KernelResult` field
#: identical — the normal case, enforced by the differential fuzz tests and
#: the bench agreement gate — must NOT bump it, so cached sweep stores stay
#: valid.
ENGINE_VERSION = "1"

#: Authoritative pipeline stage order.  The generic loop below and the
#: per-stage emitters in :mod:`repro.engine.codegen` are both organised
#: around this exact sequence; codegen asserts it emits these stages in
#: this order, so the two kernels cannot silently drift structurally.
STAGES = (
    "fetch",
    "steering",
    "operands",
    "issue",
    "execute",
    "writeback",
    "retire",
)

_N_CLASSES = len(InstrClass)
_BRANCH = int(InstrClass.BRANCH)
_NOP = int(InstrClass.NOP)
_LOAD = int(InstrClass.LOAD)
_FP_LOAD = int(InstrClass.FP_LOAD)
_N_FU = 4  # FuType cardinality; fu_free is indexed cluster * _N_FU + futype


@dataclass
class KernelResult:
    """Raw totals produced by one :func:`simulate` call.

    ``energy`` is the per-component energy breakdown (every
    :data:`repro.energy.ENERGY_COMPONENTS` key plus ``"total"``, all
    integer units) when the config's energy model is enabled, and ``None``
    otherwise.  A ``None`` breakdown serializes to *no* ``energy`` key at
    all, so results computed with the model off are byte-identical to
    results from before the model existed.
    """

    n_instructions: int
    cycles: int
    mispredicts: int
    l1_misses: int
    l2_misses: int
    communications: int
    hop_histogram: Dict[int, int]
    issued_per_cluster: List[int]
    class_counts: List[int]
    energy: Optional[Dict[str, int]] = None

    @property
    def ipc(self) -> float:
        return self.n_instructions / self.cycles if self.cycles else 0.0

    @property
    def energy_per_instr(self) -> float:
        """Total energy units per instruction (0.0 when the model is off)."""
        if self.energy is None or not self.n_instructions:
            return 0.0
        return self.energy["total"] / self.n_instructions

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable raw totals (derived values like IPC excluded).

        ``hop_histogram`` keys become strings (JSON objects only have string
        keys); :meth:`from_dict` converts them back, so the round trip is
        exact.  The ``energy`` key is present iff the breakdown is.
        """
        out = {
            "n_instructions": self.n_instructions,
            "cycles": self.cycles,
            "mispredicts": self.mispredicts,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "communications": self.communications,
            "hop_histogram": {str(d): c for d, c in sorted(self.hop_histogram.items())},
            "issued_per_cluster": list(self.issued_per_cluster),
            "class_counts": list(self.class_counts),
        }
        if self.energy is not None:
            out["energy"] = dict(self.energy)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelResult":
        expected = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - expected)
        # ``energy`` is optional on the wire: records written with the
        # model disabled (or before it existed) simply lack the key.
        missing = sorted(expected - set(data) - {"energy"})
        if unknown or missing:
            raise ValueError(
                f"KernelResult.from_dict: unknown keys {unknown}, missing keys {missing}"
            )
        kwargs = dict(data)
        if kwargs.get("energy") is not None:
            energy: Dict[str, int] = {}
            for comp, units in kwargs["energy"].items():  # type: ignore[union-attr]
                try:
                    energy[str(comp)] = int(units)
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"KernelResult.from_dict: energy entry {comp!r}: "
                        f"{units!r} is not coercible to int units"
                    ) from exc
            expected_comps = set(ENERGY_COMPONENTS) | {"total"}
            missing_comps = sorted(expected_comps - set(energy))
            unknown_comps = sorted(set(energy) - expected_comps)
            if missing_comps or unknown_comps:
                raise ValueError(
                    f"KernelResult.from_dict: energy breakdown has unknown "
                    f"component(s) {unknown_comps}, missing component(s) "
                    f"{missing_comps}"
                )
            kwargs["energy"] = energy
        hop_histogram: Dict[int, int] = {}
        for d, c in kwargs["hop_histogram"].items():  # type: ignore[union-attr]
            try:
                hop_histogram[int(d)] = int(c)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"KernelResult.from_dict: hop_histogram entry {d!r}: {c!r} "
                    f"is not coercible to int counts"
                ) from exc
        kwargs["hop_histogram"] = hop_histogram
        kwargs["issued_per_cluster"] = list(kwargs["issued_per_cluster"])  # type: ignore[arg-type]
        kwargs["class_counts"] = list(kwargs["class_counts"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


def build_tables(cfg: ProcessorConfig):
    """Precompute the integer-indexed dispatch tables for the hot loop."""
    latency = cfg.latencies.table()
    pipelined = cfg.latencies.pipelined_table()
    # Occupancy: cycles a unit is blocked per op (1 when fully pipelined).
    occupancy = [1 if pipelined[k] else latency[k] for k in range(_N_CLASSES)]
    fu_for = [int(FU_FOR_CLASS[InstrClass(k)]) for k in range(_N_CLASSES)]
    has_dst = [DEST_REGCLASS_FOR_CLASS[InstrClass(k)] is not None for k in range(_N_CLASSES)]
    return latency, occupancy, fu_for, has_dst


def check_fu_coverage(trace_name, class_counts, fu_counts, fu_for) -> None:
    """Reject configs that cannot run the tallied instruction classes.

    Shared by the generic loop and every :mod:`repro.engine.codegen` variant:
    every instruction class present in the trace must have at least one unit
    of its FU type (clusters are homogeneous), otherwise the issue stage
    would index an empty unit list deep in the loop.
    """
    for k in range(_N_CLASSES):
        if class_counts[k] and k != _NOP and fu_counts[fu_for[k]] == 0:
            raise ConfigurationError(
                f"trace {trace_name!r} contains {InstrClass(k).name} but the "
                f"cluster configuration has zero units of its functional-unit "
                f"type (fu_counts={tuple(fu_counts)})"
            )


def preflight_class_counts(trace_name, opclass, fu_counts, fu_for) -> List[int]:
    """Tally instruction classes and run :func:`check_fu_coverage`."""
    tally = _TallyCounter(opclass)
    class_counts = [tally.get(k, 0) for k in range(_N_CLASSES)]
    check_fu_coverage(trace_name, class_counts, fu_counts, fu_for)
    return class_counts


def simulate(trace: Trace, cfg: ProcessorConfig) -> KernelResult:
    """Run ``trace`` through the machine described by ``cfg``.

    Deterministic: identical ``(trace, cfg)`` always yields identical totals.
    """
    win = SoAWindow(trace)
    (opclass, src1, src2, dst, flags,
     cluster_col, complete_col, grant_col) = win.columns()
    n = len(win)

    latency, occupancy, fu_for, has_dst = build_tables(cfg)

    n_clusters = cfg.n_clusters
    is_ring = cfg.topology is Topology.RING
    fetch_width = cfg.fetch_width
    window_size = cfg.window_size
    frontend_depth = cfg.frontend_depth
    issue_width = cfg.cluster.issue_width
    hop_lat = cfg.bus.hop_latency
    bus_bw = cfg.bus.bandwidth
    wb_lat = cfg.bus.writeback_latency
    mispredict_pen = cfg.branch.mispredict_penalty
    l1_miss_pen = cfg.memory.l1d.miss_penalty
    l2_miss_pen = cfg.memory.l2_miss_penalty
    # The three original policies stay inlined in the loop below (the
    # generic kernel is performance-gated against the naive oracle); any
    # other registered policy steers through its per-run closure.
    steer_dep = cfg.steering == "dependence"
    steer_mod = cfg.steering == "modulo"
    steer_rr = cfg.steering == "round_robin"
    plugin = None if cfg.steering in BUILTIN_POLICIES else get_policy(cfg.steering)

    fu_counts = cfg.cluster.fu_counts
    class_counts = preflight_class_counts(trace.name, opclass, fu_counts, fu_for)
    # Energy accounting state.  When the model is off the loop pays exactly
    # one dead ``if track_energy`` branch per instruction; when on, the only
    # per-event state the aggregate counters cannot reconstruct is the
    # reorder-window occupancy at each fetch (see repro.energy), tracked via
    # a retire-cycle column and a monotone retire pointer.  Occupancy-aware
    # steering policies read the same retire-cycle column.
    track_energy = cfg.energy.enabled
    track_retire = track_energy or (plugin is not None and plugin.needs_retire)
    retire_col: List[int] = [0] * n if track_retire else []
    retire_ptr = 0
    wakeup_units = 0
    operand_reads = 0
    # fu_free[c * _N_FU + t] -> list of next-free cycles, one entry per unit.
    fu_free: List[List[int]] = [
        [0] * fu_counts[t] for _c in range(n_clusters) for t in range(_N_FU)
    ]
    # grant_col stores the bus-grant cycle ALREADY SHIFTED by wb_lat, so
    # consumer reads pay one add per hop count instead of two.
    # Issue-slot and bus-injection occupancy.  One flat dict each, keyed by
    # ``cycle * n_clusters + cluster`` so the lookup method can be bound to a
    # local once instead of resolved per cluster per instruction.
    issue_slots: Dict[int, int] = {}
    bus_slots: Dict[int, int] = {}
    islots_get = issue_slots.get
    bslots_get = bus_slots.get
    rob: List[int] = [0] * window_size  # retire cycle of instruction i - window_size
    rob_idx = 0

    issued_per_cluster = [0] * n_clusters
    # Hop distances are bounded by n_clusters: count into a flat list.
    hop_counts = [0] * (n_clusters + 1)

    steer_plugin = None
    if plugin is not None:
        steer_plugin = plugin.make_generic(SteeringContext(
            n_clusters=n_clusters,
            is_ring=is_ring,
            window_size=window_size,
            fetch_width=fetch_width,
            cluster_col=cluster_col,
            complete_col=complete_col,
            retire_col=retire_col,
        ))

    nc = n_clusters
    # Power-of-two cluster counts take the &-mask fast path for ring modulo
    # (Python's & yields the positive residue even for negative operands).
    mask = nc - 1
    pow2 = nc & mask == 0
    bw1 = bus_bw == 1
    hl1 = hop_lat == 1
    fetch_cycle = 0
    fetched_this_cycle = 0
    redirect = 0
    last_retire = 0
    rr_counter = 0
    mispredicts = 0
    l1_misses = 0
    l2_misses = 0
    communications = 0

    i = -1
    for k, s1, s2, f in zip(opclass, src1, src2, flags):
        i += 1

        # ---- fetch -------------------------------------------------------
        if fetched_this_cycle >= fetch_width:
            fetch_cycle += 1
            fetched_this_cycle = 0
        if redirect > fetch_cycle:
            fetch_cycle = redirect
            fetched_this_cycle = 0
        if i >= window_size:
            slot_free = rob[rob_idx]
            if slot_free > fetch_cycle:
                fetch_cycle = slot_free
                fetched_this_cycle = 0
        fetched_this_cycle += 1
        ready = fetch_cycle + frontend_depth

        # ---- steering ----------------------------------------------------
        if steer_dep:
            if s1 >= 0:
                if s2 >= 0 and complete_col[s2] > complete_col[s1]:
                    base = cluster_col[s2]
                else:
                    base = cluster_col[s1]
                if is_ring:
                    cluster = (base + 1) & mask if pow2 else (base + 1) % nc
                else:
                    cluster = base
            elif s2 >= 0:
                base = cluster_col[s2]
                if is_ring:
                    cluster = (base + 1) & mask if pow2 else (base + 1) % nc
                else:
                    cluster = base
            else:
                cluster = rr_counter % nc
                rr_counter += 1
        elif steer_mod:
            cluster = (i // fetch_width) % nc
        elif steer_rr:
            cluster = i % nc
        else:
            cluster = steer_plugin(i, s1, s2, fetch_cycle)
            if not 0 <= cluster < nc:
                raise SteeringError(
                    f"steering policy {cfg.steering!r} returned cluster "
                    f"{cluster!r} for instruction {i} "
                    f"(valid: 0..{nc - 1})"
                )
        cluster_col[i] = cluster

        # ---- operand availability (unrolled over the two sources) -------
        if s1 >= 0:
            pc = cluster_col[s1]
            if is_ring:
                hops = ((cluster - pc - 1) & mask if pow2
                        else (cluster - pc - 1) % nc) + 1
                hop_counts[hops] += 1
                avail = grant_col[s1] + (hops if hl1 else hops * hop_lat)
            elif cluster == pc:
                avail = complete_col[s1]  # intra-cluster bypass
            else:
                g = grant_col[s1]
                if g < 0:
                    g = complete_col[s1] + wb_lat
                    key = g * nc + pc
                    if bw1:
                        while key in bus_slots:
                            g += 1
                            key += nc
                        bus_slots[key] = 1
                    else:
                        while bslots_get(key, 0) >= bus_bw:
                            g += 1
                            key += nc
                        bus_slots[key] = bslots_get(key, 0) + 1
                    g += wb_lat
                    grant_col[s1] = g
                    communications += 1
                d = cluster - pc
                if d < 0:
                    d = -d
                if nc - d < d:
                    d = nc - d
                hop_counts[d] += 1
                avail = g + (d if hl1 else d * hop_lat)
            if avail > ready:
                ready = avail
        if s2 >= 0:
            pc = cluster_col[s2]
            if is_ring:
                hops = ((cluster - pc - 1) & mask if pow2
                        else (cluster - pc - 1) % nc) + 1
                hop_counts[hops] += 1
                avail = grant_col[s2] + (hops if hl1 else hops * hop_lat)
            elif cluster == pc:
                avail = complete_col[s2]  # intra-cluster bypass
            else:
                g = grant_col[s2]
                if g < 0:
                    g = complete_col[s2] + wb_lat
                    key = g * nc + pc
                    if bw1:
                        while key in bus_slots:
                            g += 1
                            key += nc
                        bus_slots[key] = 1
                    else:
                        while bslots_get(key, 0) >= bus_bw:
                            g += 1
                            key += nc
                        bus_slots[key] = bslots_get(key, 0) + 1
                    g += wb_lat
                    grant_col[s2] = g
                    communications += 1
                d = cluster - pc
                if d < 0:
                    d = -d
                if nc - d < d:
                    d = nc - d
                hop_counts[d] += 1
                avail = g + (d if hl1 else d * hop_lat)
            if avail > ready:
                ready = avail

        # ---- issue (NOPs occupy no slot or unit) ------------------------
        if k != _NOP:
            units = fu_free[cluster * _N_FU + fu_for[k]]
            unit_idx = 0
            unit_free = units[0]
            if len(units) > 1:
                for u in range(1, len(units)):
                    if units[u] < unit_free:
                        unit_free = units[u]
                        unit_idx = u
            issue = unit_free if unit_free > ready else ready
            key = issue * nc + cluster
            while islots_get(key, 0) >= issue_width:
                issue += 1
                key += nc
            issue_slots[key] = islots_get(key, 0) + 1
            units[unit_idx] = issue + occupancy[k]
            issued_per_cluster[cluster] += 1
        else:
            issue = ready

        # ---- execute -----------------------------------------------------
        lat = latency[k]
        if f:
            if f & FLAG_MISPREDICT:
                mispredicts += 1
            if f & FLAG_L1_MISS:
                l1_misses += 1
                if k == _LOAD or k == _FP_LOAD:  # only loads stall on a miss
                    lat += l1_miss_pen
                    if f & FLAG_L2_MISS:
                        lat += l2_miss_pen
                if f & FLAG_L2_MISS:
                    l2_misses += 1
        complete = issue + lat
        complete_col[i] = complete

        # ---- writeback / interconnect -----------------------------------
        if has_dst[k]:
            if is_ring:
                # Every result enters the unidirectional ring exactly once.
                g = complete
                key = g * nc + cluster
                if bw1:
                    while key in bus_slots:
                        g += 1
                        key += nc
                    bus_slots[key] = 1
                else:
                    while bslots_get(key, 0) >= bus_bw:
                        g += 1
                        key += nc
                    bus_slots[key] = bslots_get(key, 0) + 1
                grant_col[i] = g + wb_lat
                communications += 1
            # CONV grants lazily, on first remote consumer (see above).
        elif k == _BRANCH and f & FLAG_MISPREDICT:
            r = complete + mispredict_pen
            if r > redirect:
                redirect = r

        # ---- in-order retire --------------------------------------------
        if complete > last_retire:
            last_retire = complete
        rob[rob_idx] = last_retire
        rob_idx += 1
        if rob_idx == window_size:
            rob_idx = 0
        if track_retire:
            retire_col[i] = last_retire

        # ---- energy (per-event counters; see repro.energy) --------------
        if track_energy:
            operand_reads += (s1 >= 0) + (s2 >= 0)
            # Occupancy at this instruction's fetch: instructions fetched
            # but not retired by fetch_cycle, itself included.  retire_col
            # is monotone (a running max), so the pointer never backs up.
            while retire_ptr < i and retire_col[retire_ptr] <= fetch_cycle:
                retire_ptr += 1
            wakeup_units += i - retire_ptr + 1

    energy = None
    if track_energy:
        weighted_hops = 0
        for d in range(1, nc + 1):
            weighted_hops += d * hop_counts[d]
        energy = fold_breakdown(
            cfg.energy,
            n=n,
            class_counts=class_counts,
            operand_reads=operand_reads,
            weighted_hops=weighted_hops,
            l1_misses=l1_misses,
            l2_misses=l2_misses,
            wakeup_units=wakeup_units,
        )
    hop_histogram = {d: c for d, c in enumerate(hop_counts) if c}
    return KernelResult(
        n_instructions=n,
        cycles=last_retire + 1 if n else 0,
        mispredicts=mispredicts,
        l1_misses=l1_misses,
        l2_misses=l2_misses,
        communications=communications,
        hop_histogram=hop_histogram,
        issued_per_cluster=issued_per_cluster,
        class_counts=class_counts,
        energy=energy,
    )


__all__ = [
    "ENGINE_VERSION",
    "KernelResult",
    "STAGES",
    "build_tables",
    "check_fu_coverage",
    "preflight_class_counts",
    "simulate",
]
