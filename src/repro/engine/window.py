"""Struct-of-arrays instruction window state.

The kernel keeps *all* per-instruction simulation state in parallel flat
columns — never in per-instruction objects.  :class:`SoAWindow` owns those
columns: the immutable ones borrowed from the :class:`~repro.engine.trace.Trace`
(opcode class, source producer indices, destination register, event flags)
and the mutable ones the kernel fills in as instructions flow through the
pipeline (assigned cluster, completion cycle, interconnect grant cycle).

``columns()`` hands the kernel plain Python ``list`` objects.  Lists beat
``array``/numpy for the scalar, dependence-serialised inner loop because
indexing a list yields the cached small-int object directly, while ``array``
boxes a fresh int on every read.  The ``array`` columns remain the compact
storage format; the lists are the working copy for one simulation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.trace import Trace


class SoAWindow:
    """Mutable struct-of-arrays working set for one simulation run."""

    __slots__ = ("trace", "opclass", "src1", "src2", "dst", "flags",
                 "cluster", "complete", "grant")

    def __init__(self, trace: Trace) -> None:
        n = len(trace)
        self.trace = trace
        # Immutable program columns (working copies as lists).
        self.opclass: List[int] = list(trace.opclass)
        self.src1: List[int] = list(trace.src1)
        self.src2: List[int] = list(trace.src2)
        self.dst: List[int] = list(trace.dst)
        self.flags: List[int] = list(trace.flags)
        # Mutable pipeline columns, filled by the kernel.
        self.cluster: List[int] = [0] * n
        self.complete: List[int] = [0] * n
        self.grant: List[int] = [-1] * n

    def __len__(self) -> int:
        return len(self.opclass)

    def columns(self) -> Tuple[List[int], ...]:
        """All columns as a tuple, in kernel binding order."""
        return (
            self.opclass,
            self.src1,
            self.src2,
            self.dst,
            self.flags,
            self.cluster,
            self.complete,
            self.grant,
        )


__all__ = ["SoAWindow"]
