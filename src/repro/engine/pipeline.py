"""Public simulation API: ``Pipeline(config).run(trace) -> StatGroup``.

:class:`Pipeline` is a thin, stable facade over the hot kernel in
:mod:`repro.engine.kernel`.  It validates inputs once, runs the kernel, and
converts the kernel's raw totals into a :class:`~repro.common.counters.StatGroup`
whose names are the reporting vocabulary used by benchmarks and (eventually)
the paper-figure sweeps: ``ipc``, ``cycles``, ``comm.hops`` and friends.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.common.config import ProcessorConfig
from repro.common.counters import StatGroup
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import InstrClass
from repro.engine.batch import simulate_batch
from repro.engine.codegen import simulate_specialized
from repro.engine.kernel import ENGINE_VERSION, KernelResult, simulate
from repro.engine.trace import Trace

#: Valid values for ``Pipeline(kernel_variant=...)``.  ``batch`` runs the
#: lane-vectorized numpy kernel (:mod:`repro.engine.batch`) with a single
#: lane; its real payoff is the sweep runner batching many points that
#: share a specialization key through one call.
KERNEL_VARIANTS = ("generic", "specialized", "batch")

#: Default kernel variant; ``specialized`` compiles a branch-free kernel per
#: machine configuration (see :mod:`repro.engine.codegen`).  Both variants
#: produce identical :class:`KernelResult` totals by contract.
DEFAULT_KERNEL_VARIANT = "specialized"

#: Environment override for the default variant — set
#: ``REPRO_KERNEL_VARIANT=generic`` to force the readable interpreted loop
#: (e.g. when debugging a suspected codegen issue) without touching code.
KERNEL_VARIANT_ENV = "REPRO_KERNEL_VARIANT"


def resolve_kernel_variant(kernel_variant: Optional[str]) -> str:
    """Validate/default a variant name, honouring :data:`KERNEL_VARIANT_ENV`."""
    if kernel_variant is None:
        kernel_variant = os.environ.get(KERNEL_VARIANT_ENV, DEFAULT_KERNEL_VARIANT)
    if kernel_variant not in KERNEL_VARIANTS:
        raise ConfigurationError(
            f"unknown kernel variant {kernel_variant!r}; "
            f"valid: {list(KERNEL_VARIANTS)}"
        )
    return kernel_variant


class Pipeline:
    """A configured ring- or conventionally-clustered processor model.

    ``kernel_variant`` selects the simulation kernel: ``"specialized"``
    (default) runs the per-config compiled kernel from
    :mod:`repro.engine.codegen`; ``"generic"`` runs the readable
    table-driven loop in :mod:`repro.engine.kernel`.  The two are required
    to produce identical results — ``generic`` exists as the oracle and
    debugging surface, not as a different model.
    """

    def __init__(
        self,
        config: Optional[ProcessorConfig] = None,
        kernel_variant: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else ProcessorConfig()
        self.kernel_variant = resolve_kernel_variant(kernel_variant)

    def run(self, trace: Trace, stats_name: Optional[str] = None) -> StatGroup:
        """Simulate ``trace`` and return its statistics.

        The returned group contains counters (``instructions``, ``cycles``,
        ``mispredicts``, ``l1_misses``, ``l2_misses``, ``comm.messages``,
        ``issued.cluster<k>``, ``class.<name>``), the ``comm.hops`` histogram
        and derived scalars (``ipc``, ``comm.per_instr``).
        """
        result = self._simulate_checked(trace)
        name = stats_name if stats_name is not None else trace.name
        return self._build_stats(name, result)

    def run_record(self, trace: Trace) -> Dict[str, object]:
        """Simulate ``trace`` and return a JSON-serializable result record.

        This is the persistence-friendly sibling of :meth:`run`: the record
        carries the raw :meth:`KernelResult.to_dict` totals plus the engine
        version and the config digest so a result store can key and later
        invalidate it.  Consumed by :mod:`repro.sweep`.

        ``kernel_variant`` names the kernel that computed the record, so a
        result in hand can be attributed to a variant (e.g. when triaging a
        suspected codegen divergence).  It is *provenance, not content*:
        both variants produce identical results by contract, and the sweep
        runner strips the key before a record enters the result store so
        stores stay byte-identical whichever variant computed them.
        """
        result = self._simulate_checked(trace)
        return {
            "engine_version": ENGINE_VERSION,
            "config_digest": self.config.config_digest(),
            "trace": trace.name,
            "kernel_variant": self.kernel_variant,
            "result": result.to_dict(),
        }

    def _simulate_checked(self, trace: Trace) -> KernelResult:
        if self.kernel_variant == "specialized":
            result = simulate_specialized(trace, self.config)
        elif self.kernel_variant == "batch":
            result = simulate_batch([trace], self.config)[0]
        else:
            result = simulate(trace, self.config)
        if result.n_instructions and result.cycles <= 0:
            raise SimulationError(
                f"trace {trace.name!r}: simulation produced no forward progress"
            )
        return result

    def _build_stats(self, name: str, result: KernelResult) -> StatGroup:
        stats = StatGroup(name)
        stats.counter("instructions").add(result.n_instructions)
        stats.counter("cycles").add(result.cycles)
        stats.counter("mispredicts").add(result.mispredicts)
        stats.counter("l1_misses").add(result.l1_misses)
        stats.counter("l2_misses").add(result.l2_misses)
        stats.counter("comm.messages").add(result.communications)
        hops = stats.histogram("comm.hops")
        for distance, count in result.hop_histogram.items():
            hops.add(distance, count)
        for c, issued in enumerate(result.issued_per_cluster):
            stats.counter(f"issued.cluster{c}").add(issued)
        for k, count in enumerate(result.class_counts):
            if count:
                stats.counter(f"class.{InstrClass(k).name.lower()}").add(count)
        if result.energy is not None:
            for component, units in result.energy.items():
                stats.counter(f"energy.{component}").add(units)
            stats.set_scalar("energy.per_instr", result.energy_per_instr)
        stats.set_scalar("ipc", result.ipc)
        if result.n_instructions:
            stats.set_scalar(
                "comm.per_instr", result.communications / result.n_instructions
            )
        stats.set_scalar("topology.is_ring", float(self.config.topology.is_ring))
        stats.set_scalar("n_clusters", float(self.config.n_clusters))
        return stats


__all__ = [
    "DEFAULT_KERNEL_VARIANT",
    "KERNEL_VARIANTS",
    "KERNEL_VARIANT_ENV",
    "Pipeline",
    "resolve_kernel_variant",
]
