"""Cycle-level simulation engine.

Performance-first core of the reproduction: struct-of-arrays traces and
window state (:mod:`repro.engine.trace`, :mod:`repro.engine.window`), the
table-driven issue/execute/writeback kernel (:mod:`repro.engine.kernel`)
covering both the paper's ring topology and the conventional clustered
baseline, and the public :class:`~repro.engine.pipeline.Pipeline` facade.
"""

from repro.engine.kernel import ENGINE_VERSION, KernelResult, build_tables, simulate
from repro.engine.pipeline import Pipeline
from repro.engine.trace import (
    FLAG_L1_MISS,
    FLAG_L2_MISS,
    FLAG_MISPREDICT,
    Trace,
)
from repro.engine.window import SoAWindow

__all__ = [
    "ENGINE_VERSION",
    "FLAG_L1_MISS",
    "FLAG_L2_MISS",
    "FLAG_MISPREDICT",
    "KernelResult",
    "Pipeline",
    "SoAWindow",
    "Trace",
    "build_tables",
    "simulate",
]
