"""Cycle-level simulation engine.

Performance-first core of the reproduction: struct-of-arrays traces and
window state (:mod:`repro.engine.trace`, :mod:`repro.engine.window`), the
table-driven issue/execute/writeback kernel (:mod:`repro.engine.kernel`)
covering both the paper's ring topology and the conventional clustered
baseline, the per-configuration specializing compiler
(:mod:`repro.engine.codegen`), the lane-vectorized numpy batch kernel
(:mod:`repro.engine.batch`), and the public
:class:`~repro.engine.pipeline.Pipeline` facade with its ``kernel_variant``
selector.
"""

from repro.engine.batch import simulate_batch
from repro.engine.codegen import (
    clear_registry,
    compile_kernel,
    emit_kernel_source,
    get_kernel,
    registry_size,
    simulate_specialized,
    specialization_key,
)
from repro.engine.kernel import (
    ENGINE_VERSION,
    KernelResult,
    STAGES,
    build_tables,
    simulate,
)
from repro.engine.pipeline import (
    DEFAULT_KERNEL_VARIANT,
    KERNEL_VARIANTS,
    KERNEL_VARIANT_ENV,
    Pipeline,
    resolve_kernel_variant,
)
from repro.engine.trace import (
    FLAG_L1_MISS,
    FLAG_L2_MISS,
    FLAG_MISPREDICT,
    Trace,
)
from repro.engine.window import SoAWindow

__all__ = [
    "DEFAULT_KERNEL_VARIANT",
    "ENGINE_VERSION",
    "FLAG_L1_MISS",
    "FLAG_L2_MISS",
    "FLAG_MISPREDICT",
    "KERNEL_VARIANTS",
    "KERNEL_VARIANT_ENV",
    "KernelResult",
    "Pipeline",
    "STAGES",
    "SoAWindow",
    "Trace",
    "build_tables",
    "clear_registry",
    "compile_kernel",
    "emit_kernel_source",
    "get_kernel",
    "registry_size",
    "resolve_kernel_variant",
    "simulate",
    "simulate_batch",
    "simulate_specialized",
    "specialization_key",
]
