"""Struct-of-arrays dynamic instruction traces.

A :class:`Trace` stores one dynamic instruction stream as parallel columns
(``array`` module arrays) instead of per-instruction objects: opcode class,
the two source operands, the destination register and an event-flag byte.
Source operands are stored as *producer indices* — the index of the dynamic
instruction that produced the value, ``-1`` for none — so the simulation
kernel never performs register renaming on the hot path.  Register-named
programs (handy in tests) are renamed once, up front, by
:meth:`Trace.from_ops`.

Event flags encode the outcome of stochastic micro-events that the paper's
simulator resolved with predictor/cache models and this reproduction resolves
at generation time (the workload generator draws them from configured rates):

* ``FLAG_MISPREDICT`` — this branch is mispredicted and redirects fetch;
* ``FLAG_L1_MISS`` — this memory access misses the L1 data cache;
* ``FLAG_L2_MISS`` — ... and also misses the L2 (implies ``FLAG_L1_MISS``).
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import TraceError
from repro.common.types import DEST_REGCLASS_FOR_CLASS, InstrClass

FLAG_MISPREDICT = 1
FLAG_L1_MISS = 2
FLAG_L2_MISS = 4

_N_CLASSES = len(InstrClass)


class Trace:
    """An immutable struct-of-arrays instruction stream."""

    __slots__ = ("name", "opclass", "src1", "src2", "dst", "flags")

    def __init__(
        self,
        name: str,
        opclass: Sequence[int],
        src1: Sequence[int],
        src2: Sequence[int],
        dst: Sequence[int],
        flags: Sequence[int],
        validate: bool = True,
    ) -> None:
        self.name = name
        self.opclass = array("b", opclass)
        self.src1 = array("q", src1)
        self.src2 = array("q", src2)
        self.dst = array("q", dst)
        self.flags = array("b", flags)
        if validate:
            self.validate()

    def __len__(self) -> int:
        return len(self.opclass)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceError` on violation."""
        n = len(self.opclass)
        for col_name in ("src1", "src2", "dst", "flags"):
            col = getattr(self, col_name)
            if len(col) != n:
                raise TraceError(
                    f"trace {self.name!r}: column {col_name} has {len(col)} "
                    f"entries, expected {n}"
                )
        opclass, src1, src2, flags = self.opclass, self.src1, self.src2, self.flags
        for i in range(n):
            k = opclass[i]
            if not 0 <= k < _N_CLASSES:
                raise TraceError(f"trace {self.name!r}[{i}]: invalid opclass {k}")
            for s in (src1[i], src2[i]):
                if s >= i:
                    raise TraceError(
                        f"trace {self.name!r}[{i}]: source {s} does not precede "
                        "its consumer (dependences must point backwards)"
                    )
                if s >= 0 and DEST_REGCLASS_FOR_CLASS[InstrClass(opclass[s])] is None:
                    raise TraceError(
                        f"trace {self.name!r}[{i}]: source {s} "
                        f"({InstrClass(opclass[s]).name}) produces no register value"
                    )
            f = flags[i]
            if f & FLAG_MISPREDICT and not InstrClass(k).is_branch:
                raise TraceError(
                    f"trace {self.name!r}[{i}]: mispredict flag on non-branch"
                )
            if f & (FLAG_L1_MISS | FLAG_L2_MISS) and not InstrClass(k).is_memory:
                raise TraceError(
                    f"trace {self.name!r}[{i}]: cache-miss flag on non-memory op"
                )
            if f & FLAG_L2_MISS and not f & FLAG_L1_MISS:
                raise TraceError(
                    f"trace {self.name!r}[{i}]: L2 miss without L1 miss"
                )

    @classmethod
    def from_ops(
        cls,
        ops: Iterable[Tuple],
        name: str = "trace",
    ) -> "Trace":
        """Build a trace from register-named operations, renaming once.

        Each op is ``(opclass, dst_reg[, src1_reg[, src2_reg[, flags]]])``.
        Register names are strings (or ``None`` for "no register"); ``flags``
        is an int and may only appear in fifth position, after *both* source
        slots — pad unused sources with ``None``, e.g.
        ``(InstrClass.BRANCH, None, "r1", None, FLAG_MISPREDICT)``.  An int
        in a source slot raises :class:`TraceError` rather than being
        silently treated as a register name.  Sources that name a register
        no prior op has written are treated as ready from the start
        (live-ins).
        """
        last_writer = {}
        opclass: List[int] = []
        src1: List[int] = []
        src2: List[int] = []
        dst: List[int] = []
        flags: List[int] = []
        reg_ids = {}
        for i, op in enumerate(ops):
            if not 2 <= len(op) <= 5:
                raise TraceError(
                    f"op {i}: expected (opclass, dst[, src1[, src2[, flags]]]), "
                    f"got {len(op)} elements"
                )
            k = int(op[0])
            d = op[1]
            rest = list(op[2:])
            f = 0
            if len(rest) > 2:
                f = int(rest.pop())
            for r in rest:
                if r is not None and not isinstance(r, str):
                    raise TraceError(
                        f"op {i}: source operand {r!r} is not a register name "
                        "(str or None); to pass flags, fill both source slots "
                        "first: (opclass, dst, src1, src2, flags)"
                    )
            if d is not None and not isinstance(d, str):
                raise TraceError(
                    f"op {i}: destination {d!r} is not a register name (str or None)"
                )
            srcs = [last_writer.get(r, -1) for r in rest if r is not None]
            srcs += [-1] * (2 - len(srcs))
            opclass.append(k)
            src1.append(srcs[0])
            src2.append(srcs[1])
            flags.append(f)
            if d is not None and DEST_REGCLASS_FOR_CLASS[InstrClass(k)] is not None:
                last_writer[d] = i
                dst.append(reg_ids.setdefault(d, len(reg_ids)))
            else:
                dst.append(-1)
        return cls(name, opclass, src1, src2, dst, flags)

    def class_counts(self) -> List[int]:
        """Number of instructions per :class:`InstrClass` value."""
        counts = [0] * _N_CLASSES
        for k in self.opclass:
            counts[k] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, {len(self)} instructions)"


__all__ = ["Trace", "FLAG_MISPREDICT", "FLAG_L1_MISS", "FLAG_L2_MISS"]
