"""Config-specialized kernel codegen: one branch-free ``simulate()`` per machine.

The generic loop in :mod:`repro.engine.kernel` re-tests, for every dynamic
instruction, conditions that are **loop invariants of the configuration**:
topology (``is_ring``), steering policy, power-of-two cluster counts,
``hop_latency == 1``, ``bus.bandwidth == 1``, single-unit clusters, literal
penalties and widths.  This module closes that interpreter-vs-residual-program
gap by partial evaluation: given a :class:`~repro.common.config.ProcessorConfig`
it *emits the Python source* of a kernel in which every config-dependent
branch has been resolved at codegen time and every config scalar is folded in
as a literal, ``exec``'s it once, and caches the compiled function in a
process-wide registry.

What specialization buys, per dynamic instruction:

* exactly one steering/topology path is emitted (no ``is_ring`` /
  ``steer_dep`` tests, no power-of-two conditional expressions — the ring
  modulo is emitted directly as ``& mask`` or ``% n``);
* ``fetch_width``, ``window_size``, ``frontend_depth``, ``issue_width``,
  ``hop_latency``, ``bus.bandwidth``, ``writeback_latency`` and all
  penalties appear as integer literals;
* for single-unit clusters (the paper's machine) the functional-unit
  scoreboard collapses from a list-of-lists plus an inner min-scan to a flat
  list of ints indexed ``cluster * n_fu + fu``;
* the per-class latency/occupancy/FU/dest tables are bound as constant
  tuples in default arguments instead of heap lists;
* the issue-slot dict (and, under ``RING``, the bus-slot dict) is pruned of
  dead cycles every :data:`PRUNE_INTERVAL` instructions, which keeps the hash
  tables cache-resident on long traces.  Pruning is exact: both dicts are
  only ever probed at cycles ``>= fetch_cycle`` and ``fetch_cycle`` is
  monotonically non-decreasing, so entries below it can never be read or
  written again.  (Under ``CONV`` the bus dict is *not* pruned: lazy grants
  may probe at a long-retired producer's completion cycle.)

"Branch-free" means free of *config-invariant* branches; data-dependent
control flow (operand presence, cache-miss flags, structural-hazard retry
loops) necessarily remains.

The emitted code is organised stage by stage in exactly the order of
:data:`repro.engine.kernel.STAGES` — the generic loop and this template share
that one authoritative stage structure, and :func:`emit_kernel_source`
asserts it.  Both kernels must produce identical :class:`KernelResult`
totals for every ``(trace, config)``; the differential fuzz tests and the
benchmark agreement gates enforce this, which is why ``ENGINE_VERSION``
is shared and unchanged.

Registry keying: two configs that differ only in fields the timing model
never reads (register-file sizes, cache geometry, L1 hit latency — the load
latency comes from ``latencies.load``) share one compiled variant.  The
:func:`specialization_key` is the canonical-JSON content digest — the same
machinery as ``ProcessorConfig.config_digest()`` — of exactly the values the
template folds in.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.common.config import ProcessorConfig
from repro.common.jsonutil import content_digest
from repro.common.types import Topology
from repro.energy import DST_CLASS_INDICES, MEM_CLASS_INDICES
from repro.steering import get_policy
from repro.engine.kernel import (
    KernelResult,
    STAGES,
    build_tables,
    check_fu_coverage,
)
from repro.engine.trace import Trace

#: Instructions between rebases of the sliding slot scoreboards.
PRUNE_INTERVAL = 4096

#: Minimum number of zero entries appended when a sliding scoreboard grows.
_GROW = 4096

_N_FU = 4
_N_CLASSES = 12
_NOP = 11
_BRANCH = 10
_LOAD = 6
_FP_LOAD = 7
_FLAG_MISPREDICT = 1
_FLAG_L1_MISS = 2
_FLAG_L2_MISS = 4

#: Compiled kernels, keyed by :func:`specialization_key`.  Module-level on
#: purpose: every sweep-worker process compiles each structural variant at
#: most once, no matter how many grid points share it.
_REGISTRY: Dict[str, Callable[[Trace], KernelResult]] = {}


def _spec_values(cfg: ProcessorConfig) -> Dict[str, object]:
    """Everything the template folds in, as a JSON-canonicalisable dict."""
    latency, occupancy, fu_for, has_dst = build_tables(cfg)
    values: Dict[str, object] = {
        "n_clusters": cfg.n_clusters,
        "topology": cfg.topology.value,
        "steering": cfg.steering,
        "fetch_width": cfg.fetch_width,
        "window_size": cfg.window_size,
        "frontend_depth": cfg.frontend_depth,
        "issue_width": cfg.cluster.issue_width,
        "fu_counts": list(cfg.cluster.fu_counts),
        "hop_latency": cfg.bus.hop_latency,
        "bandwidth": cfg.bus.bandwidth,
        "writeback_latency": cfg.bus.writeback_latency,
        "mispredict_penalty": cfg.branch.mispredict_penalty,
        "l1_miss_penalty": cfg.memory.l1d.miss_penalty,
        "l2_miss_penalty": cfg.memory.l2_miss_penalty,
        "latency": list(latency),
        "occupancy": list(occupancy),
        # fu_for / has_dst are config-independent today, but they are part of
        # the residual program, so they belong in the key.
        "fu_for": list(fu_for),
        "has_dst": [int(b) for b in has_dst],
    }
    if cfg.energy.enabled:
        # Every energy cost is a literal in the emitted source, so the whole
        # cost vector belongs in the key.  A disabled model adds NO key at
        # all: the emitted source — and the registry entry — is then
        # byte-identical to a build without the energy model, which is what
        # guarantees ``energy=off`` costs nothing.
        en = cfg.energy
        values["energy"] = {
            "fetch": en.fetch,
            "steer": en.steer,
            "issue": en.issue,
            "operand_read": en.operand_read,
            "result_write": en.result_write,
            "bus_hop": en.bus_hop,
            "l1_hit": en.l1_hit,
            "l1_miss": en.l1_miss,
            "l2_miss": en.l2_miss,
            "wakeup": en.wakeup,
            "fu": en.fu.table(),
        }
    return values


def _fetch_cycle_local(v: Dict[str, object]) -> str:
    """Name of the unshifted fetch-cycle local in the emitted loop body.

    Power-of-two fetch widths fold the fetch state into one pre-shifted
    token (see ``_emit_body``); the body then captures the plain cycle as
    ``fc`` for the consumers that need it (the energy block and
    occupancy-aware steering policies).  Every emitter that references the
    fetch cycle must use this name.
    """
    fw: int = v["fetch_width"]  # type: ignore[assignment]
    return "fc" if fw & (fw - 1) == 0 else "fetch_cycle"


def specialization_key(cfg: ProcessorConfig) -> str:
    """Structural cache key: digest of exactly the folded-in values.

    Computed with the same canonical-JSON content digest as
    ``ProcessorConfig.config_digest()``, but over the *timing-relevant
    projection* of the config — so e.g. register-file sizes or cache
    geometry changes do not multiply compiled variants.
    """
    return content_digest(_spec_values(cfg), 16)


class _Emitter:
    """Tiny indented-source builder used by the stage emitters."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.stages_emitted: List[str] = []

    def emit(self, line: str = "", indent: int = 0) -> None:
        self.lines.append(("    " * indent + line) if line else "")

    def stage(self, name: str, indent: int = 0) -> None:
        self.stages_emitted.append(name)
        self.emit(f"# ---- {name} " + "-" * max(0, 54 - len(name)), indent)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _ring_next(base: str, nc: int, pow2: bool) -> str:
    """Cluster one hop ahead of ``base`` on the ring."""
    if pow2:
        return f"({base} + 1) & {nc - 1}"
    return f"({base} + 1) % {nc}"


def _conv_delta(nc: int) -> str:
    """Index into the CONV shortest-distance table ``_DN``."""
    if nc & (nc - 1) == 0:
        return f"(cluster - pc) & {nc - 1}"
    return f"(cluster - pc) % {nc}"


def _conv_distance_table(nc: int) -> Tuple[int, ...]:
    """``_DN[delta mod nc]`` = shorter way around between two clusters."""
    return tuple(min(m, nc - m) for m in range(nc))


def _ring_hops(pc: str, nc: int, pow2: bool) -> str:
    """Hops from producer cluster ``pc`` to ``cluster`` on the ring (>= 1)."""
    if pow2:
        return f"((cluster - {pc} - 1) & {nc - 1}) + 1"
    return f"((cluster - {pc} - 1) % {nc}) + 1"


def _emit_steering(e: _Emitter, v: Dict[str, object], ind: int) -> None:
    """Steering for the non-fused policies (``modulo`` / ``round_robin``)."""
    nc = v["n_clusters"]
    pow2 = nc & (nc - 1) == 0
    e.stage("steering", ind)
    if v["steering"] == "modulo":
        if pow2:
            e.emit(f"cluster = (i // {v['fetch_width']}) & {nc - 1}", ind)
        else:
            e.emit(f"cluster = (i // {v['fetch_width']}) % {nc}", ind)
    else:  # round_robin
        if pow2:
            e.emit(f"cluster = i & {nc - 1}", ind)
        else:
            e.emit(f"cluster = i % {nc}", ind)
    e.emit("cluster_col[i] = cluster", ind)


def _emit_conv_grant(e: _Emitter, v: Dict[str, object], src: str, ind: int) -> None:
    """Lazy CONV bus grant for producer ``src`` (bandwidth/wb_lat folded)."""
    nc = v["n_clusters"]
    wb = v["writeback_latency"]
    bw = v["bandwidth"]
    e.emit(f"g = grant_col[{src}]", ind)
    e.emit("if g < 0:", ind)
    if wb:
        e.emit(f"g = complete_col[{src}] + {wb}", ind + 1)
    else:
        e.emit(f"g = complete_col[{src}]", ind + 1)
    e.emit(f"key = g * {nc} + pc", ind + 1)
    if bw == 1:
        e.emit("while key in bus_slots:", ind + 1)
        e.emit("g += 1", ind + 2)
        e.emit(f"key += {nc}", ind + 2)
        e.emit("bus_slots[key] = 1", ind + 1)
    else:
        e.emit("c = bslots_get(key, 0)", ind + 1)
        e.emit(f"while c >= {bw}:", ind + 1)
        e.emit("g += 1", ind + 2)
        e.emit(f"key += {nc}", ind + 2)
        e.emit("c = bslots_get(key, 0)", ind + 2)
        e.emit("bus_slots[key] = c + 1", ind + 1)
    if wb:
        e.emit(f"g += {wb}", ind + 1)
    e.emit(f"grant_col[{src}] = g", ind + 1)
    e.emit("communications += 1", ind + 1)


def _emit_operand(e: _Emitter, v: Dict[str, object], src: str, ind: int,
                  accum: str = "ready") -> None:
    """Availability of one source operand (``src`` is ``s1`` or ``s2``).

    The computed availability is max-folded into ``accum``.
    """
    nc = v["n_clusters"]
    pow2 = nc & (nc - 1) == 0
    hl = v["hop_latency"]
    e.emit(f"if {src} >= 0:", ind)
    if v["topology"] == Topology.RING.value:
        e.emit(f"hops = {_ring_hops(f'cluster_col[{src}]', nc, pow2)}", ind + 1)
        e.emit("hop_counts[hops] += 1", ind + 1)
        term = "hops" if hl == 1 else f"hops * {hl}"
        e.emit(f"avail = grant_col[{src}] + {term}", ind + 1)
    else:
        e.emit(f"pc = cluster_col[{src}]", ind + 1)
        e.emit("if cluster == pc:", ind + 1)
        e.emit(f"avail = complete_col[{src}]  # intra-cluster bypass", ind + 2)
        e.emit("else:", ind + 1)
        _emit_conv_grant(e, v, src, ind + 2)
        if nc == 2:
            # Two clusters: every remote producer is exactly one hop away.
            e.emit("hop_counts[1] += 1", ind + 2)
            e.emit(f"avail = g + {hl}", ind + 2)
        else:
            e.emit(f"d = _DN[{_conv_delta(nc)}]", ind + 2)
            e.emit("hop_counts[d] += 1", ind + 2)
            term = "d" if hl == 1 else f"d * {hl}"
            e.emit(f"avail = g + {term}", ind + 2)
    e.emit(f"if avail > {accum}:", ind + 1)
    e.emit(f"{accum} = avail", ind + 2)


def _emit_ring_critical(e: _Emitter, v: Dict[str, object], src: str,
                        ind: int) -> None:
    """RING availability of the *critical* source, which is one hop away.

    Dependence steering places the consumer one cluster ahead of its
    critical producer, so that source's ring distance is identically 1 —
    the specializer folds the whole hop computation away and tallies the
    histogram bucket in a plain int (``h1``) folded in after the loop.
    """
    hl = v["hop_latency"]
    nc = v["n_clusters"]
    pow2 = nc & (nc - 1) == 0
    e.emit(f"cluster = {_ring_next(f'cluster_col[{src}]', nc, pow2)}", ind)
    e.emit("h1 += 1", ind)
    e.emit(f"avail = grant_col[{src}] + {hl}", ind)


def _emit_conv_critical(e: _Emitter, v: Dict[str, object], src: str,
                        ind: int) -> None:
    """CONV availability of the *critical* source: the intra-cluster bypass.

    Dependence steering under CONV places the consumer on its critical
    producer's own cluster, so that source always bypasses locally — no
    distance computation, no lazy grant, no histogram entry.
    """
    e.emit(f"cluster = cluster_col[{src}]", ind)
    e.emit(f"avail = complete_col[{src}]  # intra-cluster bypass", ind)


def _emit_other_operand(e: _Emitter, v: Dict[str, object], src: str,
                        ind: int) -> None:
    """Availability of the non-critical source, max-folded into ``avail``.

    At most one source per instruction takes this path, so under CONV at
    most one lazy bus grant happens here and the generic loop's
    s1-before-s2 injection order is trivially preserved.
    """
    nc = v["n_clusters"]
    pow2 = nc & (nc - 1) == 0
    hl = v["hop_latency"]
    if v["topology"] == Topology.RING.value:
        e.emit(f"hops = {_ring_hops(f'cluster_col[{src}]', nc, pow2)}", ind)
        e.emit("hop_counts[hops] += 1", ind)
        term = "hops" if hl == 1 else f"hops * {hl}"
        e.emit(f"a = grant_col[{src}] + {term}", ind)
    else:
        e.emit(f"pc = cluster_col[{src}]", ind)
        e.emit("if cluster == pc:", ind)
        e.emit(f"a = complete_col[{src}]  # intra-cluster bypass", ind + 1)
        e.emit("else:", ind)
        _emit_conv_grant(e, v, src, ind + 1)
        if nc == 2:
            # Two clusters: every remote producer is exactly one hop away.
            e.emit("hop_counts[1] += 1", ind + 1)
            e.emit(f"a = g + {hl}", ind + 1)
        else:
            e.emit(f"d = _DN[{_conv_delta(nc)}]", ind + 1)
            e.emit("hop_counts[d] += 1", ind + 1)
            term = "d" if hl == 1 else f"d * {hl}"
            e.emit(f"a = g + {term}", ind + 1)
    e.emit("if a > avail:", ind)
    e.emit("avail = a", ind + 1)


def _emit_dependence_fused(e: _Emitter, v: Dict[str, object], ind: int) -> None:
    """Fused steering + operand availability for dependence steering.

    The generic loop first steers, then walks both sources again through the
    full topology-general availability code.  Specialized to dependence
    steering, the critical source's availability is known *by construction*
    (one ring hop / local bypass — see :func:`_emit_ring_critical` and
    :func:`_emit_conv_critical`), so the fused form computes it inline while
    steering and runs the general path for at most one remaining source.
    Hop-histogram increments commute and at most one CONV lazy grant occurs
    per instruction, so totals are bit-identical to the generic loop.
    """
    nc = v["n_clusters"]
    pow2 = nc & (nc - 1) == 0
    ring = v["topology"] == Topology.RING.value
    critical = _emit_ring_critical if ring else _emit_conv_critical
    e.stage("steering", ind)
    e.emit("if s1 >= 0:", ind)
    e.emit("if s2 >= 0 and complete_col[s2] > complete_col[s1]:", ind + 1)
    critical(e, v, "s2", ind + 2)
    _emit_other_operand(e, v, "s1", ind + 2)
    e.emit("else:", ind + 1)
    critical(e, v, "s1", ind + 2)
    e.emit("if s2 >= 0:", ind + 2)
    _emit_other_operand(e, v, "s2", ind + 3)
    e.emit("if avail > ready:", ind + 1)
    e.emit("ready = avail", ind + 2)
    e.stage("operands", ind)
    e.emit("elif s2 >= 0:", ind)
    critical(e, v, "s2", ind + 1)
    e.emit("if avail > ready:", ind + 1)
    e.emit("ready = avail", ind + 2)
    e.emit("else:", ind)
    # rr_counter is non-negative, so the mask is an exact modulo here.
    if pow2:
        e.emit(f"cluster = rr_counter & {nc - 1}", ind + 1)
    else:
        e.emit(f"cluster = rr_counter % {nc}", ind + 1)
    e.emit("rr_counter += 1", ind + 1)
    e.emit("cluster_col[i] = cluster", ind)


def _emit_body(e: _Emitter, v: Dict[str, object], ind: int,
               steady: bool, nop_free: bool) -> None:
    """One full per-instruction loop body.

    Emitted four times: {prologue, steady} x {has-NOPs, NOP-free}.  In the
    *prologue* (the first ``window_size`` instructions) the reorder window
    cannot be full, so the ROB check is provably dead; in the *steady
    state* ``i >= window_size`` always holds, so the index guard is dead
    instead.  ``nop_free`` bodies are selected at run time when the class
    tally shows no NOPs, compiling the per-instruction NOP test out.
    """
    nc: int = v["n_clusters"]  # type: ignore[assignment]
    is_ring = v["topology"] == Topology.RING.value
    fu_counts: List[int] = v["fu_counts"]  # type: ignore[assignment]
    single_fu = all(c <= 1 for c in fu_counts)
    iw: int = v["issue_width"]  # type: ignore[assignment]
    window: int = v["window_size"]  # type: ignore[assignment]
    wb: int = v["writeback_latency"]  # type: ignore[assignment]
    bw: int = v["bandwidth"]  # type: ignore[assignment]

    policy = get_policy(v["steering"])  # type: ignore[arg-type]
    e.emit("i += 1", ind)
    pow2_win = window & (window - 1) == 0
    fw: int = v["fetch_width"]  # type: ignore[assignment]
    # Power-of-two fetch widths fold (fetch_cycle, fetched_this_cycle) into
    # ONE token = fetch_cycle * fetch_width + slot: the fetch-group wrap is
    # implicit in the increment, and the stall comparisons become single
    # integer compares against pre-shifted values.  Equivalence: with
    # slot in [0, FW-1], `stall_cycle > fetch_cycle` holds iff
    # `stall_cycle * FW > token`, and a stall resets the pair to
    # (stall_cycle, 0) == stall_cycle * FW; redirect and the rob entries
    # are therefore kept pre-multiplied by FW (shifted) at their rare
    # update sites.
    ftoken = fw & (fw - 1) == 0
    shift = fw.bit_length() - 1
    depth: int = v["frontend_depth"]  # type: ignore[assignment]

    # ---- fetch ----------------------------------------------------------
    e.stage("fetch", ind)
    if not ftoken:
        e.emit(f"if fetched_this_cycle >= {fw}:", ind)
        e.emit("fetch_cycle += 1", ind + 1)
        e.emit("fetched_this_cycle = 0", ind + 1)
        e.emit("if redirect > fetch_cycle:", ind)
        e.emit("fetch_cycle = redirect", ind + 1)
        e.emit("fetched_this_cycle = 0", ind + 1)
    else:
        e.emit("if redirect > ftoken:", ind)
        e.emit("ftoken = redirect", ind + 1)
    if steady:
        # i >= window_size always holds here: the guard is folded away, and
        # for power-of-two windows the ROB cursor is just the masked index.
        if window == 1:
            rob_slot = "0"
        elif pow2_win:
            e.emit(f"ri = i & {window - 1}", ind)
            rob_slot = "ri"
        else:
            rob_slot = "rob_idx"
        e.emit(f"slot_free = rob[{rob_slot}]", ind)
        if not ftoken:
            e.emit("if slot_free > fetch_cycle:", ind)
            e.emit("fetch_cycle = slot_free", ind + 1)
            e.emit("fetched_this_cycle = 0", ind + 1)
        else:
            # rob stores retire cycles pre-shifted by the token scale.
            e.emit("if slot_free > ftoken:", ind)
            e.emit("ftoken = slot_free", ind + 1)
    # In the prologue i < window_size, so the ROB can never stall fetch.
    track_energy = "energy" in v
    if not ftoken:
        e.emit("fetched_this_cycle += 1", ind)
        e.emit(f"ready = fetch_cycle + {depth}"
               if depth else "ready = fetch_cycle", ind)
    elif track_energy or policy.needs_retire:
        # The energy block at the end of the body (and any occupancy-aware
        # steering policy) needs the *unshifted* fetch cycle; ``ready`` is
        # clobbered by the operand stage and the token has already advanced
        # by then, so capture it here.
        e.emit(f"fc = ftoken >> {shift}", ind)
        e.emit(f"ready = fc + {depth}" if depth else "ready = fc", ind)
        e.emit("ftoken += 1", ind)
    else:
        e.emit(f"ready = (ftoken >> {shift}) + {depth}"
               if depth else f"ready = ftoken >> {shift}", ind)
        e.emit("ftoken += 1", ind)

    # ---- steering + operand availability --------------------------------
    # Emitted by the registered policy object: built-ins delegate to the
    # stage emitters above; plugins inline their own branch-free blocks.
    policy.emit_steering(e, v, ind)

    # ---- issue (NOPs occupy no slot or unit) ----------------------------
    # Issue-slot occupancy lives in a flat *sliding list* instead of a
    # dict: every probe is at a cycle >= fetch_cycle (monotonic), so the
    # window below fetch_cycle is dead and gets rebased away at chunk
    # boundaries, keeping the list small, cache-resident and
    # hash-free.  ``ibase``/``ilen`` are the current base key and length.
    e.stage("issue", ind)
    if not nop_free:
        e.emit(f"if k != {_NOP}:", ind)
        body = ind + 1
    else:
        body = ind
    if single_fu:
        e.emit(f"fi = cluster * {_N_FU} + _FU[k]", body)
        e.emit("uf = fu_free[fi]", body)
        e.emit("issue = uf if uf > ready else ready", body)
    else:
        e.emit(f"units = fu_free[cluster * {_N_FU} + _FU[k]]", body)
        e.emit("unit_idx = 0", body)
        e.emit("unit_free = units[0]", body)
        e.emit("for u in range(1, len(units)):", body)
        e.emit("if units[u] < unit_free:", body + 1)
        e.emit("unit_free = units[u]", body + 2)
        e.emit("unit_idx = u", body + 2)
        e.emit("issue = unit_free if unit_free > ready else ready", body)
    e.emit(f"key = issue * {nc} + cluster - ibase", body)
    e.emit("if key >= ilen:", body)
    e.emit(f"islots.extend([0] * (key + {_GROW} - ilen))", body + 1)
    e.emit("ilen = len(islots)", body + 1)
    e.emit("c = islots[key]", body)
    e.emit(f"while c >= {iw}:" if iw > 1 else "while c:", body)
    e.emit("issue += 1", body + 1)
    e.emit(f"key += {nc}", body + 1)
    e.emit("if key >= ilen:", body + 1)
    e.emit(f"islots.extend([0] * (key + {_GROW} - ilen))", body + 2)
    e.emit("ilen = len(islots)", body + 2)
    e.emit("c = islots[key]", body + 1)
    e.emit("islots[key] = c + 1", body)
    if single_fu:
        e.emit("fu_free[fi] = issue + _OCC[k]", body)
    else:
        e.emit("units[unit_idx] = issue + _OCC[k]", body)
    if not nop_free:
        # With NOPs around, the per-cluster issue tally must be kept
        # inline; NOP-free bodies recover it from cluster_col afterwards
        # with one vectorized bincount (every instruction issues).
        e.emit("issued_per_cluster[cluster] += 1", body)
        e.emit("else:", ind)
        e.emit("issue = ready", ind + 1)

    # ---- execute --------------------------------------------------------
    # Effective latencies (base + cache-miss penalties) and the
    # mispredict/miss totals were vectorized out of the loop; ``lat`` rides
    # in on the zip.
    e.stage("execute", ind)
    e.emit("complete = issue + lat", ind)
    e.emit("complete_col[i] = complete", ind)

    # ---- writeback / interconnect ---------------------------------------
    # RING injects eagerly at a cycle >= fetch_cycle, so its bus occupancy
    # uses the same sliding-list structure as the issue slots.  The
    # mispredict flag is read lazily from the flags column — it is the only
    # remaining use of the flag word in the loop, and only branches
    # (a small minority) ever reach the read.
    e.stage("writeback", ind)
    if is_ring:
        e.emit("if _DST[k]:", ind)
        e.emit("g = complete", ind + 1)
        e.emit(f"key = g * {nc} + cluster - bbase", ind + 1)
        e.emit("if key >= blen:", ind + 1)
        e.emit(f"bslots.extend([0] * (key + {_GROW} - blen))", ind + 2)
        e.emit("blen = len(bslots)", ind + 2)
        e.emit("c = bslots[key]", ind + 1)
        e.emit(f"while c >= {bw}:" if bw > 1 else "while c:", ind + 1)
        e.emit("g += 1", ind + 2)
        e.emit(f"key += {nc}", ind + 2)
        e.emit("if key >= blen:", ind + 2)
        e.emit(f"bslots.extend([0] * (key + {_GROW} - blen))", ind + 3)
        e.emit("blen = len(bslots)", ind + 3)
        e.emit("c = bslots[key]", ind + 2)
        e.emit("bslots[key] = c + 1", ind + 1)
        e.emit(f"grant_col[i] = g + {wb}" if wb else "grant_col[i] = g", ind + 1)
        # Under RING every value producer injects exactly once, so the
        # communications total is derived from class_counts after the loop.
        # Value-producing classes never carry the mispredict flag, so the
        # redirect check lives on the else-path exactly as in the generic loop.
        e.emit(f"elif k == {_BRANCH} and flags[i] & {_FLAG_MISPREDICT}:", ind)
    else:
        # CONV grants lazily on first remote consume (operands stage);
        # branches never produce a register value, so _DST is dead here.
        e.emit(f"if k == {_BRANCH} and flags[i] & {_FLAG_MISPREDICT}:", ind)
    if ftoken:
        # ``redirect`` is kept pre-shifted to the token scale so the fetch
        # stage compares it against ftoken directly.
        e.emit(f"r = (complete + {v['mispredict_penalty']}) << {shift}",
               ind + 1)
    else:
        e.emit(f"r = complete + {v['mispredict_penalty']}", ind + 1)
    e.emit("if r > redirect:", ind + 1)
    e.emit("redirect = r", ind + 2)

    # ---- in-order retire ------------------------------------------------
    e.stage("retire", ind)
    e.emit("if complete > last_retire:", ind)
    e.emit("last_retire = complete", ind + 1)
    # Under the fetch token, rob entries are pre-shifted to the token scale.
    retire_val = f"last_retire << {shift}" if ftoken else "last_retire"
    if window == 1:
        e.emit(f"rob[0] = {retire_val}", ind)
    elif not steady:
        # Prologue: the cursor is the instruction index itself.
        e.emit(f"rob[i] = {retire_val}", ind)
    elif pow2_win:
        e.emit(f"rob[ri] = {retire_val}", ind)
    else:
        e.emit(f"rob[rob_idx] = {retire_val}", ind)
        e.emit("rob_idx += 1", ind)
        e.emit(f"if rob_idx == {window}:", ind)
        e.emit("rob_idx = 0", ind + 1)
    policy.emit_retire(e, v, ind)

    if track_energy:
        # Per-event energy state the aggregate counters cannot reconstruct:
        # reorder-window occupancy at this instruction's fetch cycle (see
        # repro.energy).  retire_col is a running max, so the pointer only
        # ever moves forward; `fc` is the unshifted fetch cycle captured in
        # the fetch stage.  All other components fold over loop-maintained
        # counters in the epilogue, with the costs as literals.
        fc_name = _fetch_cycle_local(v)
        e.emit(f"while rp < i and retire_col[rp] <= {fc_name}:", ind)
        e.emit("rp += 1", ind + 1)
        e.emit("wakeup_units += i - rp + 1", ind)
        e.emit("retire_col[i] = last_retire", ind)


def emit_kernel_source(cfg: ProcessorConfig) -> str:
    """Return the Python source of the specialized kernel for ``cfg``.

    The emitted function is named ``specialized_kernel`` and has the same
    contract as :func:`repro.engine.kernel.simulate` with the config bound:
    ``specialized_kernel(trace) -> KernelResult``.
    """
    v = _spec_values(cfg)
    policy = get_policy(cfg.steering)
    nc: int = v["n_clusters"]  # type: ignore[assignment]
    fu_counts: List[int] = v["fu_counts"]  # type: ignore[assignment]
    single_fu = all(c <= 1 for c in fu_counts)
    iw: int = v["issue_width"]  # type: ignore[assignment]
    window: int = v["window_size"]  # type: ignore[assignment]
    bw: int = v["bandwidth"]  # type: ignore[assignment]
    lat_t = tuple(v["latency"])  # type: ignore[arg-type]
    occ_t = tuple(v["occupancy"])  # type: ignore[arg-type]
    fu_t = tuple(v["fu_for"])  # type: ignore[arg-type]
    dst_t = tuple(v["has_dst"])  # type: ignore[arg-type]

    e = _Emitter()
    e.emit(f"# Specialized kernel for key {specialization_key(cfg)}")
    e.emit(f"# {cfg.describe()!r}")
    # Constant tuples ride in as default arguments: local loads in the loop,
    # no cell/global lookups.
    defaults = "_OCC=%r, _FU=%r, _DST=%r" % (occ_t, fu_t, dst_t)
    if v["topology"] == Topology.CONV.value:
        defaults += ", _DN=%r" % (_conv_distance_table(nc),)
    e.emit(f"def specialized_kernel(trace, {defaults}):")
    # The immutable trace columns are consumed directly: opclass/src1/src2
    # are only ever unpacked by the zip (never indexed), flags is probed on
    # the rare mispredicted branch, and the vectorized pre-pass reads
    # zero-copy numpy views of the array-module storage.  Only the three
    # mutable pipeline columns are allocated per run.
    e.emit("opclass = trace.opclass; src1 = trace.src1; src2 = trace.src2", 1)
    e.emit("flags = trace.flags", 1)
    e.emit("n = len(opclass)", 1)
    e.emit("cluster_col = [0] * n", 1)
    e.emit("complete_col = [0] * n", 1)
    if v["topology"] == Topology.RING.value:
        # RING grants eagerly at writeback, always before any consumer
        # reads grant_col, so the -1 "ungranted" sentinel is never needed.
        e.emit("grant_col = [0] * n", 1)
    else:
        e.emit("grant_col = [-1] * n", 1)
    # Vectorized pre-pass: class tally (bincount beats a Counter by ~20x),
    # per-instruction effective latencies with cache-miss penalties folded
    # in, and the mispredict/miss totals, so the scalar loop never touches
    # the flag word for timing.
    e.emit("op = _np.frombuffer(trace.opclass, dtype=_np.int8)", 1)
    e.emit("fl = _np.frombuffer(trace.flags, dtype=_np.int8)", 1)
    e.emit(f"class_counts = _np.bincount(op, minlength={_N_CLASSES}).tolist()",
           1)
    e.emit("_check_fu(trace.name, class_counts)", 1)
    e.emit(f"l1 = (fl & {_FLAG_L1_MISS}) != 0", 1)
    e.emit(f"l2 = l1 & ((fl & {_FLAG_L2_MISS}) != 0)", 1)
    e.emit(f"ml = l1 & ((op == {_LOAD}) | (op == {_FP_LOAD}))  # missing loads",
           1)
    e.emit(f"mispredicts = int(((fl & {_FLAG_MISPREDICT}) != 0).sum())", 1)
    e.emit("l1_misses = int(l1.sum())", 1)
    e.emit("l2_misses = int(l2.sum())", 1)
    lat_expr = "_LAT_NP[op]"
    if v["l1_miss_penalty"]:
        lat_expr += f" + ml * {v['l1_miss_penalty']}"
    if v["l2_miss_penalty"]:
        lat_expr += f" + (ml & l2) * {v['l2_miss_penalty']}"
    e.emit(f"lat_col = ({lat_expr}).tolist()", 1)
    if single_fu:
        e.emit(f"fu_free = [0] * {nc * _N_FU}", 1)
    else:
        e.emit(f"fu_free = [[0] * _FU_COUNTS[t] for _c in range({nc}) "
               f"for t in range({_N_FU})]", 1)
    e.emit("islots = []  # sliding issue-slot scoreboard", 1)
    e.emit("ibase = 0", 1)
    e.emit("ilen = 0", 1)
    if v["topology"] == Topology.RING.value:
        e.emit("bslots = []  # sliding bus scoreboard (eager RING injection)", 1)
        e.emit("bbase = 0", 1)
        e.emit("blen = 0", 1)
    else:
        e.emit("bus_slots = {}  # lazy CONV grants probe old cycles: dict", 1)
        if bw > 1:
            e.emit("bslots_get = bus_slots.get", 1)
    en = v.get("energy")
    if en:
        # Energy model: the present-source-operand count is exact from the
        # immutable trace columns, so it is vectorized with the rest of the
        # pre-pass; occupancy tracking state rides in the loop.
        e.emit("s1v = _np.frombuffer(trace.src1, dtype=_np.int64)", 1)
        e.emit("s2v = _np.frombuffer(trace.src2, dtype=_np.int64)", 1)
        e.emit("operand_reads = int((s1v >= 0).sum()) + int((s2v >= 0).sum())",
               1)
        e.emit("retire_col = [0] * n", 1)
        e.emit("rp = 0", 1)
        e.emit("wakeup_units = 0", 1)
    e.emit(f"rob = [0] * {window}", 1)
    e.emit(f"issued_per_cluster = [0] * {nc}", 1)
    e.emit(f"hop_counts = [0] * {nc + 1}", 1)
    fw: int = v["fetch_width"]  # type: ignore[assignment]
    if fw & (fw - 1) == 0:
        e.emit("ftoken = 0  # fetch_cycle * fetch_width + slot-in-group", 1)
    else:
        e.emit("fetch_cycle = 0", 1)
        e.emit("fetched_this_cycle = 0", 1)
    e.emit("redirect = 0", 1)
    e.emit("last_retire = 0", 1)
    e.emit("rr_counter = 0", 1)
    e.emit("h1 = 0", 1)
    policy.emit_setup(e, v)
    e.emit("communications = 0", 1)
    e.emit("i = -1", 1)
    pow2_win = window & (window - 1) == 0
    body_stages: List[Tuple[str, ...]] = []

    def emit_loops(base: int, nop_free: bool) -> None:
        """Prologue + steady-state loop pair at indent ``base``.

        Prologue: the first window_size instructions cannot be stalled by
        the reorder window, so their body omits the ROB check entirely;
        the steady-state body omits the `i >= window_size` guard instead.
        Steady state runs in PRUNE_INTERVAL-sized chunks: at each chunk
        boundary the sliding scoreboards are rebased to fetch_cycle.
        Every probe is at a cycle >= fetch_cycle and fetch_cycle never
        decreases, so the rebased-away prefix is unreachable.
        """
        e.emit("it = zip(opclass, src1, src2, lat_col)", base)
        e.emit(f"for k, s1, s2, lat in _islice(it, {window}):", base)
        e.stages_emitted = []
        _emit_body(e, v, base + 1, steady=False, nop_free=nop_free)
        body_stages.append(tuple(e.stages_emitted))
        e.stages_emitted = []
        if window > 1 and not pow2_win:
            e.emit("rob_idx = 0  # == i mod window at steady-state entry",
                   base)
        e.emit("while True:", base)
        e.emit(f"stop = i + {PRUNE_INTERVAL}", base + 1)
        e.emit(f"for k, s1, s2, lat in _islice(it, {PRUNE_INTERVAL}):",
               base + 1)
        _emit_body(e, v, base + 2, steady=True, nop_free=nop_free)
        body_stages.append(tuple(e.stages_emitted))
        e.stages_emitted = []
        e.emit("if i != stop:", base + 1)
        e.emit("break  # trace exhausted mid-chunk", base + 2)
        if fw & (fw - 1) == 0:
            shift = fw.bit_length() - 1
            e.emit(f"fetch_cycle = ftoken >> {shift}", base + 1)
        e.emit(f"cut = fetch_cycle * {nc} - ibase", base + 1)
        e.emit("if cut > 0:", base + 1)
        e.emit("del islots[:cut]  # slice clamps when cut > ilen", base + 2)
        e.emit("ibase += cut", base + 2)
        e.emit("ilen = len(islots)", base + 2)
        if v["topology"] == Topology.RING.value:
            e.emit(f"cut = fetch_cycle * {nc} - bbase", base + 1)
            e.emit("if cut > 0:", base + 1)
            e.emit("del bslots[:cut]", base + 2)
            e.emit("bbase += cut", base + 2)
            e.emit("blen = len(bslots)", base + 2)

    # NOP-freedom is a property of the trace, not the config, so both loop
    # pairs are emitted and the cheap tally check picks one per run.
    e.emit(f"if class_counts[{_NOP}]:", 1)
    emit_loops(2, nop_free=False)
    e.emit("else:", 1)
    emit_loops(2, nop_free=True)
    e.emit("issued_per_cluster = _np.bincount(", 2)
    e.emit(f"_np.array(cluster_col, dtype=_np.int64), minlength={nc}",
           3)
    e.emit(").tolist()", 2)

    # Epilogue.
    policy.emit_epilogue(e, v)
    if v["topology"] == Topology.RING.value:
        dst_terms = " + ".join(
            f"class_counts[{k}]" for k, d in enumerate(dst_t) if d
        )
        e.emit(f"communications = {dst_terms}", 1)
    if en:
        # Fold the breakdown from the loop-maintained counters with every
        # cost constant-folded in as a literal (mirrors repro.energy.
        # fold_breakdown; the differential fuzz tests pin the agreement).
        fu_costs: List[int] = en["fu"]  # type: ignore[assignment]
        fu_terms = " + ".join(
            f"{cost} * class_counts[{k}]"
            for k, cost in enumerate(fu_costs) if cost
        ) or "0"
        write_terms = " + ".join(
            f"class_counts[{k}]" for k in DST_CLASS_INDICES
        )
        mem_terms = " + ".join(
            f"class_counts[{k}]" for k in MEM_CLASS_INDICES
        )
        e.emit("weighted_hops = 0", 1)
        e.emit(f"for _d in range(1, {nc + 1}):", 1)
        e.emit("weighted_hops += _d * hop_counts[_d]", 2)
        e.emit("energy = {", 1)
        e.emit(f"\"fetch\": {en['fetch']} * n,", 2)
        e.emit(f"\"steer\": {en['steer']} * n,", 2)
        e.emit(f"\"issue\": {en['issue']} * (n - class_counts[{_NOP}]),", 2)
        e.emit(f"\"operand\": {en['operand_read']} * operand_reads"
               f" + {en['result_write']} * ({write_terms}),", 2)
        e.emit(f"\"fu\": {fu_terms},", 2)
        e.emit(f"\"bus\": {en['bus_hop']} * weighted_hops,", 2)
        e.emit(f"\"cache\": {en['l1_hit']} * ({mem_terms} - l1_misses)"
               f" + {en['l1_miss']} * l1_misses"
               f" + {en['l2_miss']} * l2_misses,", 2)
        e.emit(f"\"wakeup\": {en['wakeup']} * wakeup_units,", 2)
        e.emit("}", 1)
        e.emit("energy[\"total\"] = sum(energy.values())", 1)
    e.emit("hop_histogram = {d: c for d, c in enumerate(hop_counts) if c}", 1)
    e.emit("return _KernelResult(", 1)
    e.emit("n_instructions=n,", 2)
    e.emit("cycles=last_retire + 1 if n else 0,", 2)
    e.emit("mispredicts=mispredicts,", 2)
    e.emit("l1_misses=l1_misses,", 2)
    e.emit("l2_misses=l2_misses,", 2)
    e.emit("communications=communications,", 2)
    e.emit("hop_histogram=hop_histogram,", 2)
    e.emit("issued_per_cluster=issued_per_cluster,", 2)
    e.emit("class_counts=class_counts,", 2)
    if en:
        e.emit("energy=energy,", 2)
    e.emit(")", 1)

    for emitted in body_stages:
        assert emitted == STAGES, (
            f"codegen stage structure drifted from kernel.STAGES: "
            f"{list(emitted)} != {list(STAGES)}"
        )
    return e.source()


def compile_kernel(cfg: ProcessorConfig) -> Callable[[Trace], KernelResult]:
    """Emit, ``exec`` and return the specialized kernel for ``cfg`` (uncached).

    The returned function carries its own source as ``__source__`` and its
    registry key as ``__specialization_key__`` for debugging.
    """
    source = emit_kernel_source(cfg)
    key = specialization_key(cfg)
    latency, _occupancy, fu_for, _has_dst = build_tables(cfg)
    fu_counts = tuple(cfg.cluster.fu_counts)

    def _check_fu(trace_name: str, class_counts: List[int]) -> None:
        check_fu_coverage(trace_name, class_counts, fu_counts, fu_for)

    namespace: Dict[str, object] = {
        "_KernelResult": KernelResult,
        "_check_fu": _check_fu,
        "_FU_COUNTS": fu_counts,
        "_islice": islice,
        "_np": np,
        "_LAT_NP": np.asarray(latency, dtype=np.int64),
    }
    code = compile(source, f"<repro.engine.codegen {key}>", "exec")
    exec(code, namespace)
    fn = namespace["specialized_kernel"]
    fn.__source__ = source  # type: ignore[attr-defined]
    fn.__specialization_key__ = key  # type: ignore[attr-defined]
    return fn  # type: ignore[return-value]


def get_kernel(cfg: ProcessorConfig) -> Callable[[Trace], KernelResult]:
    """Compiled kernel for ``cfg``, from the registry (compiling on miss)."""
    key = specialization_key(cfg)
    fn = _REGISTRY.get(key)
    if fn is None:
        fn = compile_kernel(cfg)
        _REGISTRY[key] = fn
    return fn


def simulate_specialized(trace: Trace, cfg: ProcessorConfig) -> KernelResult:
    """Drop-in for :func:`repro.engine.kernel.simulate` using codegen."""
    return get_kernel(cfg)(trace)


def registry_size() -> int:
    """Number of compiled variants cached in this process."""
    return len(_REGISTRY)


def clear_registry() -> None:
    """Drop all cached variants (tests and memory-sensitive embedders)."""
    _REGISTRY.clear()


__all__ = [
    "PRUNE_INTERVAL",
    "clear_registry",
    "compile_kernel",
    "emit_kernel_source",
    "get_kernel",
    "registry_size",
    "simulate_specialized",
    "specialization_key",
]
