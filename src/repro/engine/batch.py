"""Lane-vectorized batch kernel: B traces through one machine, in lock-step.

The sweep grid's natural unit is thousands of :class:`ExperimentPoint`s, and
the per-instruction Python interpreter overhead of the generic/specialized
kernels is paid once per point.  This module amortizes it across a *batch*:
``simulate_batch`` runs B traces that share one structural specialization
key (:func:`repro.engine.codegen.specialization_key`) through a single
instruction-indexed loop whose every stage is a numpy operation over the B
lanes.  Sequential dependences (operand availability, the reorder window,
bus grants) prevent vectorizing *across instructions*; sharing the timing
tables lets us vectorize *across points* instead.

Layout: every per-instruction column of the scalar kernel becomes a flat
array of ``N * B`` entries (``N = max(len(trace))`` over the batch, row
``i`` at offset ``i * B``), so producer lookups are single flat ``take``
gathers at precomputed indices; state scalars (fetch cycle, redirect, the
retire high-water mark) become ``(B,)`` arrays; the per-cluster FU
scoreboard is flat over ``(cluster, fu_type, unit, lane)`` with absent
units pinned at a huge sentinel so the first-minimum unit scan matches the
scalar loop.  Shorter lanes are padded with flagless ``NOP`` rows — a NOP
issues at its ready cycle, occupies no slot, unit, or bus, and only
advances the padded lane's private clock.  The issue and writeback stages
run mask-style rather than compressing lane subsets: lanes excluded by the
mask read their scoreboard slots and write the *unchanged* values back, so
no per-step index compression is needed; each lane's cycle count is
snapshotted the step its real instructions end.

The slot scoreboards (issue slots, ring injection, conventional-bus grants)
are per-lane dense count arrays keyed ``cycle * n_clusters + cluster``
relative to a per-lane base.  Issue and ring probes only ever look at or
above the lane's current fetch frontier, so those two tables are
periodically rebased to keep their width bounded; the conventional bus
grants lazily at past cycles and stays anchored at key 0.

Equivalence contract: for every lane, the returned :class:`KernelResult`
(cycles, all counters, the full integer energy breakdown) is **identical**
to :func:`repro.engine.kernel.simulate` on that lane alone — enforced by
the differential fuzz suite across all four kernel variants.  Per-lane
configs may differ in digest-relevant but timing-irrelevant fields; only
the specialization key must be shared.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError, SteeringError
from repro.common.types import Topology
from repro.energy import fold_breakdown
from repro.engine.codegen import specialization_key
from repro.engine.kernel import (
    _BRANCH,
    _FP_LOAD,
    _LOAD,
    _N_CLASSES,
    _N_FU,
    _NOP,
    KernelResult,
    build_tables,
    check_fu_coverage,
)
from repro.engine.trace import (
    FLAG_L1_MISS,
    FLAG_L2_MISS,
    FLAG_MISPREDICT,
    Trace,
)
from repro.steering import BatchSteeringContext, BUILTIN_POLICIES, get_policy

#: Next-free sentinel for functional units a cluster does not have: large
#: enough that the first-minimum unit scan never picks one, small enough
#: that ``sentinel + occupancy`` cannot overflow int64.
_FU_SENTINEL = np.int64(1) << 60

#: Steps between rebases of the frontier-anchored slot tables.  Rebasing
#: is one vectorized table shift, so a tight interval is cheap and keeps
#: the live key band (and with it the table's cache footprint) small.
_REBASE_EVERY = 256


class _SlotTable:
    """Per-lane slot-occupancy counters keyed ``cycle * stride + cluster``.

    ``counts[key - base, lane]`` holds the occupancy of that slot.  The
    layout is key-major/lane-minor on purpose: lanes run at similar cycles,
    so a step's probes land in a narrow band of *adjacent* rows (lane-major
    rows would put each lane's slot a power-of-two stride apart — a
    cache-set massacre at fleet widths).  It also makes ``take``'s own
    bounds check exact: a flat address ``local * n_lanes + lane`` is out of
    range iff ``local >= width``, for every lane, so the hot path carries
    no explicit bound and growth rides the (rare) IndexError.

    ``base`` is a scalar shared by all lanes.  All probes must be at keys
    ``>= base`` (callers only probe at or above the slowest lane's fetch
    frontier, which is where :meth:`rebase` moves the base); the CONV
    grant table is simply never rebased.
    """

    __slots__ = ("counts", "flat", "lanes", "off", "base", "stride",
                 "width", "n_lanes", "nl_s", "jump")

    def __init__(
        self, n_lanes: int, stride: int, cap: int, width: int = 512
    ) -> None:
        # Slot caps are tiny (issue width, bus bandwidth), so the counts fit
        # int8 — the live key band is gathered every step, and a narrow
        # dtype keeps it cache-resident.  An implausibly large cap falls
        # back to int16 (the count only ever reaches cap + 1).
        dtype = np.int8 if cap <= 100 else np.int16
        self.counts = np.zeros((width, n_lanes), dtype=dtype)
        self.flat = self.counts.reshape(-1)
        self.lanes = np.arange(n_lanes, dtype=np.int64)
        self.base = 0
        self.stride = stride
        self.width = width
        self.n_lanes = n_lanes
        self.nl_s = np.int64(n_lanes)
        #: Flat-address advance for one stride (= one cycle) of retry.
        self.jump = np.int64(stride * n_lanes)
        self.off = self.lanes - self.base * self.nl_s

    def _grow(self, need: int) -> None:
        width = self.width
        new_width = max(need, 2 * width)
        grown = np.zeros((new_width, self.n_lanes), dtype=self.counts.dtype)
        grown[:width] = self.counts
        self.counts = grown
        self.flat = grown.reshape(-1)
        self.width = new_width

    def _refit(self, keys, extra):
        """Slow path: grow so every ``keys + extra`` probe fits, and
        return the refreshed flat addresses."""
        local = keys - self.base + extra
        need = int(local.max()) + 1
        if need > self.width:
            self._grow(need)
        return local * self.nl_s + self.lanes

    def acquire_masked(self, keys, cap: int, mask):
        """First-fit slot scan over all lanes; only ``mask`` lanes advance
        or consume a slot.  Returns per-lane cycles advanced (0 outside
        the mask; a plain ``0`` when no lane advanced).  Excluded lanes
        read a slot and write the unchanged count back, so they perturb
        nothing.
        """
        flat = self.flat
        fidx = keys * self.nl_s + self.off
        delta = 0
        jump = self.jump
        while True:
            try:
                cnt = flat.take(fidx)
            except IndexError:
                fidx = self._refit(keys, delta * self.stride)
                flat = self.flat
                continue
            unsat = (cnt >= cap) & mask
            if not np.count_nonzero(unsat):
                break
            fidx = fidx + unsat * jump
            delta = delta + unsat
        flat[fidx] = cnt + mask
        return delta

    def acquire_subset(self, lane_idx, keys, cap: int):
        """First-fit slot scan for the listed lanes only (all consume)."""
        flat = self.flat
        fidx = keys * self.nl_s + self.off[lane_idx]
        delta = 0
        jump = self.jump
        while True:
            try:
                cnt = flat.take(fidx)
            except IndexError:
                local = keys - self.base + delta * self.stride
                need = int(local.max()) + 1
                if need > self.width:
                    self._grow(need)
                fidx = local * self.nl_s + self.lanes[lane_idx]
                flat = self.flat
                continue
            unsat = cnt >= cap
            if not np.count_nonzero(unsat):
                break
            fidx = fidx + unsat * jump
            delta = delta + unsat
        flat[fidx] = cnt + 1
        return delta

    def rebase(self, new_base: int) -> None:
        cut = new_base - self.base
        if cut <= 0:
            return
        width = self.width
        counts = self.counts
        if cut >= width:
            counts[:] = 0
        else:
            counts[: width - cut] = counts[cut:].copy()
            counts[width - cut:] = 0
        self.base = new_base
        self.off = self.lanes - new_base * self.nl_s


def _empty_result(cfg: ProcessorConfig, class_counts: List[int]) -> KernelResult:
    energy = None
    if cfg.energy.enabled:
        energy = fold_breakdown(
            cfg.energy,
            n=0,
            class_counts=class_counts,
            operand_reads=0,
            weighted_hops=0,
            l1_misses=0,
            l2_misses=0,
            wakeup_units=0,
        )
    return KernelResult(
        n_instructions=0,
        cycles=0,
        mispredicts=0,
        l1_misses=0,
        l2_misses=0,
        communications=0,
        hop_histogram={},
        issued_per_cluster=[0] * cfg.n_clusters,
        class_counts=class_counts,
        energy=energy,
    )


def simulate_batch(
    traces: Sequence[Trace],
    cfg: Union[ProcessorConfig, Sequence[ProcessorConfig]],
) -> List[KernelResult]:
    """Simulate ``traces`` as lock-step lanes of one vectorized machine.

    ``cfg`` is either one config shared by every lane or a per-lane
    sequence; all configs must share one structural specialization key
    (same timing-folded values), which is what makes lock-step valid.
    Returns one :class:`KernelResult` per lane, in order, each identical
    to what :func:`repro.engine.kernel.simulate` returns for that lane.
    """
    if isinstance(cfg, ProcessorConfig):
        cfgs: List[ProcessorConfig] = [cfg] * len(traces)
    else:
        cfgs = list(cfg)
        if len(cfgs) != len(traces):
            raise ConfigurationError(
                f"simulate_batch got {len(traces)} traces but "
                f"{len(cfgs)} configs"
            )
    n_lanes = len(traces)
    if n_lanes == 0:
        return []
    # Dedupe by object identity first: the common case is one shared
    # config object, and hashing it per lane would dominate short runs.
    spec_keys = {
        specialization_key(c) for c in {id(c): c for c in cfgs}.values()
    }
    if len(spec_keys) > 1:
        raise ConfigurationError(
            f"simulate_batch requires every lane to share one structural "
            f"specialization key; got {len(spec_keys)} distinct keys "
            f"({', '.join(sorted(spec_keys))})"
        )
    cfg0 = cfgs[0]

    latency, occupancy, fu_for, has_dst = build_tables(cfg0)
    fu_counts = cfg0.cluster.fu_counts

    lens = np.array([len(t) for t in traces], dtype=np.int64)
    n_steps = int(lens.max())
    if n_steps == 0:
        zeros = [0] * _N_CLASSES
        return [_empty_result(cfgs[b], list(zeros)) for b in range(n_lanes)]

    nc = cfg0.n_clusters
    is_ring = cfg0.topology is Topology.RING
    fetch_width = cfg0.fetch_width
    window_size = cfg0.window_size
    frontend_depth = cfg0.frontend_depth
    issue_width = cfg0.cluster.issue_width
    hop_lat = cfg0.bus.hop_latency
    bus_bw = cfg0.bus.bandwidth
    wb_lat = cfg0.bus.writeback_latency
    mispredict_pen = cfg0.branch.mispredict_penalty
    l1_miss_pen = cfg0.memory.l1d.miss_penalty
    l2_miss_pen = cfg0.memory.l2_miss_penalty
    track_energy = cfg0.energy.enabled

    policy = get_policy(cfg0.steering)
    validate_steer = cfg0.steering not in BUILTIN_POLICIES
    track_retire = track_energy or policy.needs_retire

    # ---- lane-stacked trace columns (shorter lanes padded with NOPs) ----
    # Built lane-major (contiguous per-lane writes), then transposed once
    # into the step-major layout the loop reads.
    B = n_lanes
    if n_steps * B >= np.iinfo(np.int32).max:
        raise ConfigurationError(
            f"simulate_batch: {n_steps} steps x {B} lanes exceeds the flat "
            f"int32 address space; split the batch"
        )
    # Narrow dtypes keep the transpose and the prepass bandwidth-bound
    # phases small; source indices fit int32 (bounded by n_steps), flags
    # fit int8.
    op_bn = np.full((B, n_steps), _NOP, dtype=np.int16)
    s1_bn = np.full((B, n_steps), -1, dtype=np.int32)
    s2_bn = np.full((B, n_steps), -1, dtype=np.int32)
    fl_bn = np.zeros((B, n_steps), dtype=np.int8)
    for b, t in enumerate(traces):
        n = len(t)
        if n:
            op_bn[b, :n] = np.frombuffer(t.opclass, dtype=np.int8)
            s1_bn[b, :n] = np.frombuffer(t.src1, dtype=np.int64)
            s2_bn[b, :n] = np.frombuffer(t.src2, dtype=np.int64)
            fl_bn[b, :n] = np.frombuffer(t.flags, dtype=np.int8)
    op = np.ascontiguousarray(op_bn.T)
    s1c = np.ascontiguousarray(s1_bn.T)
    s2c = np.ascontiguousarray(s2_bn.T)
    flc = np.ascontiguousarray(fl_bn.T)
    del op_bn, s1_bn, s2_bn, fl_bn

    # Per-lane class tallies in one bincount: offset each lane's opclass
    # values into its own bin range, then peel the NOP padding back off.
    lanes = np.arange(B, dtype=np.int64)
    counts_all = np.bincount(
        (op + (lanes * _N_CLASSES)[None, :]).ravel(),
        minlength=B * _N_CLASSES,
    ).reshape(B, _N_CLASSES)
    counts_all[:, _NOP] -= n_steps - lens
    class_counts_by_lane = [
        [int(x) for x in counts_all[b]] for b in range(B)
    ]
    for b, t in enumerate(traces):
        check_fu_coverage(t.name, class_counts_by_lane[b], fu_counts, fu_for)

    # Narrow table dtypes flow into the derived (n_steps, B) columns,
    # keeping the bandwidth-bound prepass small; loop arithmetic upcasts.
    LAT = np.array(latency, dtype=np.int32)
    OCC = np.array(occupancy, dtype=np.int16)
    FU = np.array(fu_for, dtype=np.int64)
    DST = np.array(has_dst, dtype=bool)

    # ---- prepass: everything derivable from the trace alone -------------
    l1f = (flc & FLAG_L1_MISS) != 0
    l2f = l1f & ((flc & FLAG_L2_MISS) != 0)  # L2 counts only under an L1 miss
    load_stall = l1f & ((op == _LOAD) | (op == _FP_LOAD))
    lat_col = LAT[op]
    if l1_miss_pen:
        lat_col = lat_col + load_stall * np.int32(l1_miss_pen)
    if l2_miss_pen:
        lat_col = lat_col + (load_stall & l2f) * np.int32(l2_miss_pen)
    mispredicts = ((flc & FLAG_MISPREDICT) != 0).sum(axis=0)
    l1_misses = l1f.sum(axis=0)
    l2_misses = l2f.sum(axis=0)
    redirect_col = (
        (~DST[op]) & (op == _BRANCH) & ((flc & FLAG_MISPREDICT) != 0)
    )
    redirect_any = redirect_col.any(axis=1)

    nonnop_col = op != _NOP
    dst_col = DST[op]
    occ_col = OCC[op]
    # Source-present masks and flat producer addresses (row * B + lane for
    # the clipped source index), stacked (n_steps, 2, B) so the operand
    # stage reads both sources as one contiguous (2, B) row per step; the
    # per-source (n_steps, B) views are what the steering context and the
    # fold-up see.
    p12_col = np.empty((n_steps, 2, B), dtype=bool)
    np.greater_equal(s1c, 0, out=p12_col[:, 0, :])
    np.greater_equal(s2c, 0, out=p12_col[:, 1, :])
    j12f_col = np.empty((n_steps, 2, B), dtype=np.int64)
    j12f_col[:, 0, :] = np.maximum(s1c, 0) * B + lanes
    j12f_col[:, 1, :] = np.maximum(s2c, 0) * B + lanes
    present1_col = p12_col[:, 0, :]
    present2_col = p12_col[:, 1, :]
    j1f_col = j12f_col[:, 0, :]
    j2f_col = j12f_col[:, 1, :]

    # ---- machine state, one entry per lane ------------------------------
    fetch_cycle = np.zeros(B, dtype=np.int64)
    fetched = np.zeros(B, dtype=np.int64)
    redirect = np.zeros(B, dtype=np.int64)
    last_retire = np.zeros(B, dtype=np.int64)
    final_retire = np.zeros(B, dtype=np.int64)
    rob = np.zeros((window_size, B), dtype=np.int64)

    # Cycle-valued history columns are gathered at random producer rows
    # every step, so their dtype sets the cache band the gathers walk:
    # int32 unless a (very conservative) whole-run cycle bound overflows
    # it.  Every instruction advances any clock by at most one latency
    # plus every fixed penalty, so n_steps times that bounds all cycles;
    # in-loop arithmetic stays int64 (the (B,) state side), only the
    # stored history narrows.
    per_step_bound = (
        int(LAT.max()) + l1_miss_pen + l2_miss_pen
        + frontend_depth
        + mispredict_pen
        + 2 * wb_lat
        + (nc + 1) * max(hop_lat, 1)
        + issue_width
        + 4
    )
    cdtype = (
        np.int32
        if (n_steps + 2) * per_step_bound * 4 < np.iinfo(np.int32).max
        else np.int64
    )
    # Cluster ids also live in the gathered band; int8 covers any sane
    # cluster count (the post-loop hop arithmetic stays in range because
    # |cluster - pc| - 1 >= -nc >= -128).
    cluster_col = np.zeros(
        (n_steps, B), dtype=np.int8 if nc <= 127 else np.int16
    )
    complete_col = np.zeros((n_steps, B), dtype=cdtype)
    grant_col = np.full((n_steps, B), -1, dtype=cdtype)
    retire_col = (
        np.zeros((n_steps, B), dtype=cdtype)
        if track_retire
        else np.zeros((0, B), dtype=cdtype)
    )
    fc_col = (
        np.zeros((n_steps, B), dtype=cdtype) if track_energy else None
    )
    cluster_flat = cluster_col.reshape(-1)
    complete_flat = complete_col.reshape(-1)
    grant_flat = grant_col.reshape(-1)

    # FU scoreboard, flat over (cluster, fu_type, unit, lane).  The
    # per-step address is ``cluster * (4 * U * B) + fu_type * (U * B) +
    # unit * B + lane``; the fu_type/lane part is a prepass column.
    n_units = max(1, max(fu_counts))
    fu_free = np.zeros((nc * _N_FU, n_units, B), dtype=np.int64)
    for fu_type in range(_N_FU):
        if fu_counts[fu_type] < n_units:
            for c in range(nc):
                fu_free[c * _N_FU + fu_type, fu_counts[fu_type]:, :] = (
                    _FU_SENTINEL
                )
    fu_flat = fu_free.reshape(-1)
    fu_addr_col = FU[op] * (n_units * B) + lanes
    fu_cluster_scale = _N_FU * n_units * B

    issue_slots = _SlotTable(B, nc, issue_width)
    bus_slots = _SlotTable(B, nc, bus_bw)

    steer = policy.make_batch(
        BatchSteeringContext(
            n_clusters=nc,
            is_ring=is_ring,
            window_size=window_size,
            fetch_width=fetch_width,
            n_lanes=B,
            lane_index=lanes,
            cluster_col=cluster_col,
            complete_col=complete_col,
            retire_col=retire_col,
            j1f_col=j1f_col,
            j2f_col=j2f_col,
            present1_col=present1_col,
            present2_col=present2_col,
        )
    )

    end_steps = {int(x) for x in lens}
    # Power-of-two cluster counts take the bitmask path: & equals % for
    # two's-complement negatives, and % is one of the costliest ufuncs in
    # the loop.
    nc_mask = nc - 1 if nc & (nc - 1) == 0 else 0
    # Pre-boxed numpy scalars: `array * python_int` re-boxes the scalar on
    # every call, which is measurable at this call rate.
    nc_s = np.int64(nc)
    fu_scale_s = np.int64(fu_cluster_scale)
    wb_lat_s = np.int64(wb_lat)
    mispredict_pen_s = np.int64(mispredict_pen)
    hop_lat_s = np.int64(hop_lat)

    for i in range(n_steps):
        nonnop = nonnop_col[i]

        # ---- fetch -------------------------------------------------------
        # The scalar loop applies wrap, redirect and window stalls in
        # sequence, zeroing the intra-cycle count whenever the cycle moves;
        # the net effect is a running max, with the count reset iff it
        # moved at all.
        new_fc = np.maximum(fetch_cycle + (fetched >= fetch_width), redirect)
        if i >= window_size:
            new_fc = np.maximum(new_fc, rob[i % window_size])
        fetched = fetched * (new_fc == fetch_cycle) + 1
        fetch_cycle = new_fc
        ready = fetch_cycle + frontend_depth
        if fc_col is not None:
            fc_col[i] = fetch_cycle

        # ---- steering ----------------------------------------------------
        cluster = steer(i, s1c[i], s2c[i], fetch_cycle)
        if validate_steer:
            cluster = np.asarray(cluster)
            bad = (cluster < 0) | (cluster >= nc)
            if bad.any():
                lane = int(np.nonzero(bad)[0][0])
                raise SteeringError(
                    f"steering policy {cfg0.steering!r} returned cluster "
                    f"{int(cluster[lane])!r} for instruction {i} "
                    f"(valid: 0..{nc - 1})"
                )
        cluster_col[i] = cluster

        # ---- operand availability (both sources as one (2, B) row) ------
        # ``avail * present`` masks an absent source to 0, which can never
        # raise ``ready`` (>= 0); a present source's avail enters the max
        # untouched, negative or not — exactly the scalar ``if avail >
        # ready`` guard.
        j12 = j12f_col[i]
        p12 = p12_col[i]
        pc = cluster_flat.take(j12)
        if is_ring:
            if nc_mask:
                hops = ((cluster - pc - 1) & nc_mask) + 1
            else:
                hops = (cluster - pc - 1) % nc + 1
            if hop_lat != 1:
                hops = hops * hop_lat_s
            avail = (grant_flat.take(j12) + hops) * p12
            ready = np.maximum(ready, avail[0])
            ready = np.maximum(ready, avail[1])
        else:
            remote = (pc != cluster) & p12
            grants = grant_flat.take(j12)
            if np.count_nonzero(remote & (grants < 0)):
                # Lazy first-consumer grants are sparse: compress, and keep
                # the two sources in scalar order (src1's grant can both
                # satisfy src2 and contend for its bus slot).
                for s in (0, 1):
                    jf = j12[s]
                    gs = grant_flat.take(jf) if s else grants[s]
                    need_grant = remote[s] & (gs < 0)
                    if np.count_nonzero(need_grant):
                        li = np.nonzero(need_grant)[0]
                        jf_li = jf[li]
                        g = complete_flat.take(jf_li) + wb_lat
                        g = g + bus_slots.acquire_subset(
                            li, g * nc_s + pc[s][li], bus_bw
                        )
                        grant_flat[jf_li] = g + wb_lat
                grants = grant_flat.take(j12)
            d = np.abs(cluster - pc)
            d = np.minimum(d, nc - d)
            if hop_lat != 1:
                d = d * hop_lat_s
            # A remote grant is never earlier than its producer's complete
            # (grant = complete + non-negative delays), so feeding both the
            # local and the granted availability through the running max
            # replaces the per-source where().
            loc = complete_flat.take(j12) * p12
            rem = (grants + d) * remote
            ready = np.maximum(ready, loc[0])
            ready = np.maximum(ready, loc[1])
            ready = np.maximum(ready, rem[0])
            ready = np.maximum(ready, rem[1])

        # ---- issue (NOPs occupy no slot or unit) ------------------------
        # Masked, not compressed: NOP lanes address their real (cluster,
        # fu_type) units and slots but are excluded from every comparison
        # and write back unchanged values, so they consume nothing.
        fu_base = cluster * fu_scale_s + fu_addr_col[i]
        unit_free = fu_flat.take(fu_base)
        sel = fu_base
        for u in range(1, n_units):
            cand = fu_flat.take(fu_base + u * B)
            better = cand < unit_free  # strict: first-minimum tie-break
            unit_free = np.where(better, cand, unit_free)
            sel = np.where(better, fu_base + u * B, sel)
        issue = np.maximum(unit_free * nonnop, ready)
        issue = issue + issue_slots.acquire_masked(
            issue * nc_s + cluster, issue_width, nonnop
        )
        fu_flat[sel] = np.where(nonnop, issue + occ_col[i], unit_free)

        # ---- execute -----------------------------------------------------
        complete = issue + lat_col[i]
        complete_col[i] = complete

        # ---- writeback / interconnect -----------------------------------
        if is_ring:
            need = dst_col[i]
            g = complete + bus_slots.acquire_masked(
                complete * nc_s + cluster, bus_bw, need
            )
            grant_col[i] = np.where(need, g + wb_lat_s, -1)
        # CONV grants lazily, on first remote consumer (see operands).
        if redirect_any[i]:
            r = complete + mispredict_pen_s
            redirect = np.maximum(redirect, r * redirect_col[i])

        # ---- in-order retire --------------------------------------------
        last_retire = np.maximum(last_retire, complete)
        rob[i % window_size] = last_retire
        if track_retire:
            retire_col[i] = last_retire
        if (i + 1) in end_steps:
            ending = lens == (i + 1)
            final_retire[ending] = last_retire[ending]

        if (i + 1) % _REBASE_EVERY == 0:
            # Every lane's probes sit at or above its own fetch frontier,
            # so the slowest lane's frontier is a safe shared base.
            frontier = int(fetch_cycle.min()) * nc
            issue_slots.rebase(frontier)
            if is_ring:
                bus_slots.rebase(frontier)

    # ---- hop tallies, recomputed vectorized from the final columns ------
    pc1 = cluster_flat.take(j1f_col).reshape(n_steps, B)
    pc2 = cluster_flat.take(j2f_col).reshape(n_steps, B)
    if is_ring:
        if nc_mask:
            h1_col = (((cluster_col - pc1 - 1) & nc_mask) + 1) * present1_col
            h2_col = (((cluster_col - pc2 - 1) & nc_mask) + 1) * present2_col
        else:
            h1_col = ((cluster_col - pc1 - 1) % nc + 1) * present1_col
            h2_col = ((cluster_col - pc2 - 1) % nc + 1) * present2_col
    else:
        d1 = np.abs(cluster_col - pc1)
        d2 = np.abs(cluster_col - pc2)
        h1_col = np.minimum(d1, nc - d1) * (present1_col & (pc1 != cluster_col))
        h2_col = np.minimum(d2, nc - d2) * (present2_col & (pc2 != cluster_col))

    # ---- per-lane fold-up -----------------------------------------------
    # All per-lane tallies come out of whole-batch bincounts/sums: rows at
    # or past each lane's own length contribute only to discarded bins
    # (absent sources hop 0, padding is NOP, padded grants stay -1).
    hop_k = nc + 1
    lane_hop_off = (lanes * hop_k)[None, :]
    hop_counts_all = (
        np.bincount((h1_col + lane_hop_off).ravel(), minlength=B * hop_k)
        + np.bincount((h2_col + lane_hop_off).ravel(), minlength=B * hop_k)
    ).reshape(B, hop_k)
    issued_all = np.bincount(
        ((cluster_col + (lanes * nc)[None, :] + 1) * nonnop_col).ravel(),
        minlength=B * nc + 1,
    )[1:].reshape(B, nc)
    if is_ring:
        dst_classes = [k for k in range(_N_CLASSES) if has_dst[k]]
    else:
        comm_all = (grant_col >= 0).sum(axis=0)
    if track_energy:
        reads_all = present1_col.sum(axis=0) + present2_col.sum(axis=0)
        wh_all = hop_counts_all @ np.arange(hop_k, dtype=np.int64)

    results: List[KernelResult] = []
    step_index = np.arange(n_steps, dtype=np.int64)
    for b in range(B):
        n = int(lens[b])
        class_counts = class_counts_by_lane[b]
        if n == 0:
            results.append(_empty_result(cfgs[b], class_counts))
            continue
        hop_counts = hop_counts_all[b]
        hop_histogram = {
            d: int(hop_counts[d]) for d in range(1, nc + 1) if hop_counts[d]
        }
        issued = issued_all[b]
        if is_ring:
            communications = sum(class_counts[kk] for kk in dst_classes)
        else:
            communications = int(comm_all[b])
        energy = None
        if track_energy:
            operand_reads = int(reads_all[b])
            weighted_hops = int(wh_all[b])
            # The scalar kernel's monotone retire pointer at step i is
            # min(i, #{j : retire[j] <= fetch_cycle[i]}); both columns are
            # nondecreasing, so one searchsorted recovers every pointer.
            retired_before = np.searchsorted(
                retire_col[:n, b], fc_col[:n, b], side="right"
            )
            ptr = np.minimum(retired_before, step_index[:n])
            wakeup_units = int((step_index[:n] - ptr + 1).sum())
            energy = fold_breakdown(
                cfgs[b].energy,
                n=n,
                class_counts=class_counts,
                operand_reads=operand_reads,
                weighted_hops=weighted_hops,
                l1_misses=int(l1_misses[b]),
                l2_misses=int(l2_misses[b]),
                wakeup_units=wakeup_units,
            )
        results.append(
            KernelResult(
                n_instructions=n,
                cycles=int(final_retire[b]) + 1,
                mispredicts=int(mispredicts[b]),
                l1_misses=int(l1_misses[b]),
                l2_misses=int(l2_misses[b]),
                communications=communications,
                hop_histogram=hop_histogram,
                issued_per_cluster=[int(x) for x in issued],
                class_counts=class_counts,
                energy=energy,
            )
        )
    return results


__all__ = ["simulate_batch"]
