"""Deterministic random-number helpers.

Every stochastic component of the library (workload generation, profile
sampling, tie-breaking that the paper describes as "random") draws from a
:class:`numpy.random.Generator` created through these helpers so that runs
are reproducible given a seed, and independent components get independent
streams derived from the same master seed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default master seed used across the library when the caller does not
#: provide one.  Chosen arbitrarily; fixed for reproducibility.
DEFAULT_SEED = 0x5EED_2005


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (use :data:`DEFAULT_SEED`), an integer, or an
    existing generator (returned unchanged so callers can thread a single
    stream through several layers).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def spawn_rng(seed: SeedLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a sequence of keys.

    The same ``(seed, keys)`` pair always yields the same stream, and
    different key tuples yield streams that are statistically independent.
    String keys are hashed with a stable (non-randomised) scheme so results
    do not depend on ``PYTHONHASHSEED``.
    """
    if isinstance(seed, np.random.Generator):
        # Derive from the generator's own bit stream deterministically.
        base = int(seed.integers(0, 2**31 - 1))
    elif seed is None:
        base = DEFAULT_SEED
    else:
        base = int(seed)
    material = [base & 0xFFFF_FFFF]
    for key in keys:
        material.append(_stable_key(key))
    ss = np.random.SeedSequence(material)
    return np.random.default_rng(ss)


def _stable_key(key: Union[int, str]) -> int:
    """Map a key to a 32-bit integer in a platform-independent way."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFF_FFFF
    acc = 2166136261  # FNV-1a offset basis
    for byte in str(key).encode("utf-8"):
        acc ^= byte
        acc = (acc * 16777619) & 0xFFFF_FFFF
    return acc


def choice_index(rng: np.random.Generator, weights: Iterable[float]) -> int:
    """Sample an index proportionally to ``weights``.

    A tiny convenience wrapper used by the workload generator; ``weights``
    need not be normalised but must contain at least one positive entry.
    """
    w = np.asarray(list(weights), dtype=float)
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must contain at least one positive entry")
    return int(rng.choice(len(w), p=w / total))


def deterministic_hash(*keys: Union[int, str], bits: int = 32) -> int:
    """Stable hash of a key tuple, independent of ``PYTHONHASHSEED``."""
    acc = 1469598103934665603  # FNV-1a 64-bit offset basis
    for key in keys:
        for byte in str(key).encode("utf-8"):
            acc ^= byte
            acc = (acc * 1099511628211) & 0xFFFF_FFFF_FFFF_FFFF
        acc ^= 0xFF
        acc = (acc * 1099511628211) & 0xFFFF_FFFF_FFFF_FFFF
    return acc & ((1 << bits) - 1)


__all__ = [
    "DEFAULT_SEED",
    "SeedLike",
    "make_rng",
    "spawn_rng",
    "choice_index",
    "deterministic_hash",
]
