"""Canonical JSON and content digests.

Cache keys (:meth:`ProcessorConfig.config_digest`,
:meth:`ExperimentPoint.key`) and the sweep store's byte-identity guarantee
all depend on one byte-exact serialization of the same value.  This module
is the single definition of that canonical form; keep every content-hash
and store-write path on these helpers, because two drifting copies of the
``json.dumps`` options would silently stop cache keys from matching.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to the canonical form: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(obj: Any, hex_chars: int) -> str:
    """First ``hex_chars`` hex digits of the sha256 of ``canonical_json(obj)``."""
    payload = canonical_json(obj).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:hex_chars]


__all__ = ["canonical_json", "content_digest"]
