"""Processor configuration dataclasses.

These dataclasses encode the machine parameters of the paper's evaluation
(Table 2 and Section 4): functional-unit latencies, per-cluster resources,
the inter-cluster bus, the memory hierarchy and the branch predictor.  Every
dataclass validates itself in ``__post_init__`` and raises
:class:`~repro.common.errors.ConfigurationError` on inconsistent values so a
bad configuration fails fast instead of corrupting a multi-hour sweep.

The defaults model the 4-cluster machine of the paper: one integer ALU, one
integer mul/div unit, one FP adder and one FP mul/div unit per cluster
(Section 4.2), a one-cycle-per-hop inter-cluster bus, and the latencies of
Table 2.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type, TypeVar

from repro.common.errors import ConfigurationError
from repro.common.jsonutil import content_digest
from repro.common.types import FuType, InstrClass, Topology
from repro.energy import EnergyConfig
from repro.steering import BUILTIN_POLICIES, STEERING_REGISTRY, list_policies

#: Backwards-compatible alias: the three policies of the original frozen
#: tuple.  Validation consults the live :data:`repro.steering.STEERING_REGISTRY`
#: — policies added via :func:`repro.steering.register_policy` are accepted
#: without touching this module.
STEERING_POLICIES = BUILTIN_POLICIES

_T = TypeVar("_T")

#: Shared default-equality probe for :meth:`ProcessorConfig.to_dict` — a
#: module-level constant so the hot serialization path (config digests,
#: sweep-point keys) does not rebuild and re-validate an EnergyConfig per
#: call.
_DEFAULT_ENERGY = EnergyConfig()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _check_keys(cls: Type[Any], data: Mapping[str, Any]) -> None:
    """Reject mappings with keys that are not fields of ``cls``."""
    _require(
        isinstance(data, Mapping),
        f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}",
    )
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - allowed)
    _require(
        not unknown,
        f"{cls.__name__}.from_dict: unknown key(s) {unknown}; "
        f"valid keys: {sorted(allowed)}",
    )


def _flat_from_dict(cls: Type[_T], data: Mapping[str, Any]) -> _T:
    """Construct a flat (non-nested) config dataclass from a mapping."""
    _check_keys(cls, data)
    return cls(**dict(data))


def _positive(name: str, value: int) -> None:
    _require(isinstance(value, int) and value >= 1, f"{name} must be a positive integer, got {value!r}")


def _non_negative(name: str, value: int) -> None:
    _require(isinstance(value, int) and value >= 0, f"{name} must be a non-negative integer, got {value!r}")


@dataclass(frozen=True)
class FuLatencies:
    """Execution latencies in cycles per instruction class (Table 2).

    ``int_div`` and ``fp_div`` are executed on non-pipelined units; every
    other class issues back-to-back on a fully pipelined unit.
    """

    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 20
    fp_add: int = 2
    fp_mul: int = 4
    fp_div: int = 12
    load: int = 2  # L1 hit latency; misses add the cache miss penalty
    store: int = 1
    branch: int = 1

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            _positive(f"FuLatencies.{f.name}", getattr(self, f.name))

    def table(self) -> List[int]:
        """Flat latency table indexed by ``int(InstrClass)`` for the hot loop."""
        t = [1] * len(InstrClass)
        t[InstrClass.INT_ALU] = self.int_alu
        t[InstrClass.INT_MUL] = self.int_mul
        t[InstrClass.INT_DIV] = self.int_div
        t[InstrClass.FP_ADD] = self.fp_add
        t[InstrClass.FP_MUL] = self.fp_mul
        t[InstrClass.FP_DIV] = self.fp_div
        t[InstrClass.LOAD] = self.load
        t[InstrClass.FP_LOAD] = self.load
        t[InstrClass.STORE] = self.store
        t[InstrClass.FP_STORE] = self.store
        t[InstrClass.BRANCH] = self.branch
        t[InstrClass.NOP] = 1
        return t

    def pipelined_table(self) -> List[bool]:
        """Whether the unit for each class accepts a new op every cycle."""
        t = [True] * len(InstrClass)
        t[InstrClass.INT_DIV] = False
        t[InstrClass.FP_DIV] = False
        return t

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuLatencies":
        return _flat_from_dict(cls, data)


@dataclass(frozen=True)
class ClusterConfig:
    """Resources of a single cluster (Section 4.2)."""

    issue_width: int = 2
    fu_counts: Tuple[int, int, int, int] = (1, 1, 1, 1)  # indexed by FuType
    int_regs: int = 32
    fp_regs: int = 32

    def __post_init__(self) -> None:
        _positive("ClusterConfig.issue_width", self.issue_width)
        _require(
            len(self.fu_counts) == len(FuType),
            f"ClusterConfig.fu_counts must have {len(FuType)} entries "
            f"(one per FuType), got {len(self.fu_counts)}",
        )
        for fu in FuType:
            _non_negative(f"ClusterConfig.fu_counts[{fu.name}]", self.fu_counts[fu])
        _require(
            any(self.fu_counts[fu] > 0 for fu in FuType if fu.is_integer),
            "each cluster needs at least one integer unit (loads/stores/branches "
            "compute their address on the integer datapath)",
        )
        _positive("ClusterConfig.int_regs", self.int_regs)
        _positive("ClusterConfig.fp_regs", self.fp_regs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "issue_width": self.issue_width,
            "fu_counts": list(self.fu_counts),
            "int_regs": self.int_regs,
            "fp_regs": self.fp_regs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterConfig":
        _check_keys(cls, data)
        kwargs = dict(data)
        if "fu_counts" in kwargs:
            kwargs["fu_counts"] = tuple(kwargs["fu_counts"])
        return cls(**kwargs)


@dataclass(frozen=True)
class BusConfig:
    """Inter-cluster interconnect parameters.

    ``RING`` uses unidirectional buses following the ring; ``CONV`` has one
    bus per direction so a value travels the shorter way around.
    ``hop_latency`` is the cycles a value takes to advance one cluster;
    ``bandwidth`` is the number of results a cluster can inject per cycle.
    """

    hop_latency: int = 1
    bandwidth: int = 1
    writeback_latency: int = 1

    def __post_init__(self) -> None:
        _positive("BusConfig.hop_latency", self.hop_latency)
        _positive("BusConfig.bandwidth", self.bandwidth)
        _non_negative("BusConfig.writeback_latency", self.writeback_latency)

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BusConfig":
        return _flat_from_dict(cls, data)


@dataclass(frozen=True)
class CacheConfig:
    """A single cache level."""

    size_kb: int = 32
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 2
    miss_penalty: int = 10

    def __post_init__(self) -> None:
        _positive("CacheConfig.size_kb", self.size_kb)
        _positive("CacheConfig.line_bytes", self.line_bytes)
        _require(
            self.line_bytes & (self.line_bytes - 1) == 0,
            f"CacheConfig.line_bytes must be a power of two, got {self.line_bytes}",
        )
        _positive("CacheConfig.associativity", self.associativity)
        _positive("CacheConfig.hit_latency", self.hit_latency)
        _non_negative("CacheConfig.miss_penalty", self.miss_penalty)
        lines = self.size_kb * 1024 // self.line_bytes
        _require(
            lines % self.associativity == 0,
            "CacheConfig: line count must be divisible by associativity "
            f"({lines} lines, {self.associativity}-way)",
        )

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheConfig":
        return _flat_from_dict(cls, data)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Data-side memory hierarchy: L1D plus a flat penalty beyond it."""

    l1d: CacheConfig = field(default_factory=CacheConfig)
    l2_miss_penalty: int = 100

    def __post_init__(self) -> None:
        _non_negative("MemoryHierarchyConfig.l2_miss_penalty", self.l2_miss_penalty)

    def to_dict(self) -> Dict[str, Any]:
        return {"l1d": self.l1d.to_dict(), "l2_miss_penalty": self.l2_miss_penalty}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MemoryHierarchyConfig":
        _check_keys(cls, data)
        kwargs: Dict[str, Any] = dict(data)
        if "l1d" in kwargs:
            kwargs["l1d"] = CacheConfig.from_dict(kwargs["l1d"])
        return cls(**kwargs)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Front-end branch handling.

    The simulator does not model predictor tables; workloads carry a
    per-branch mispredict flag drawn from a configured rate, and this config
    sets the redirect penalty charged when a flagged branch resolves.
    """

    mispredict_penalty: int = 7

    def __post_init__(self) -> None:
        _positive("BranchPredictorConfig.mispredict_penalty", self.mispredict_penalty)

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BranchPredictorConfig":
        return _flat_from_dict(cls, data)


@dataclass(frozen=True)
class ProcessorConfig:
    """Top-level machine description handed to :class:`repro.engine.Pipeline`."""

    n_clusters: int = 4
    topology: Topology = Topology.RING
    fetch_width: int = 4
    window_size: int = 128
    frontend_depth: int = 4
    steering: str = "dependence"
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    latencies: FuLatencies = field(default_factory=FuLatencies)
    bus: BusConfig = field(default_factory=BusConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)

    def __post_init__(self) -> None:
        _positive("ProcessorConfig.n_clusters", self.n_clusters)
        _require(
            isinstance(self.topology, Topology),
            f"ProcessorConfig.topology must be a Topology, got {self.topology!r}",
        )
        _positive("ProcessorConfig.fetch_width", self.fetch_width)
        _positive("ProcessorConfig.window_size", self.window_size)
        _non_negative("ProcessorConfig.frontend_depth", self.frontend_depth)
        _require(
            self.window_size >= self.fetch_width,
            "ProcessorConfig.window_size must be at least fetch_width "
            f"({self.window_size} < {self.fetch_width})",
        )
        _require(
            self.steering in STEERING_REGISTRY,
            f"ProcessorConfig.steering must be a registered steering policy, "
            f"one of {list(list_policies())}; got {self.steering!r}",
        )

    def with_(self, **overrides: object) -> "ProcessorConfig":
        """Return a copy with ``overrides`` applied (sweeps build configs this way)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Full nested, JSON-serializable description; exact inverse of
        :meth:`from_dict` (``from_dict(cfg.to_dict()) == cfg``).

        The ``energy`` block is omitted while it equals the all-default
        (disabled) :class:`~repro.energy.EnergyConfig`: a disabled energy
        model cannot influence any simulation result, so serialized configs
        — and therefore :meth:`config_digest` and every sweep-store cache
        key derived from it — are byte-identical to what they were before
        the energy model existed.  Enabling (or otherwise customising) the
        model serializes it and deliberately changes the digest.
        """
        out = {
            "n_clusters": self.n_clusters,
            "topology": self.topology.value,
            "fetch_width": self.fetch_width,
            "window_size": self.window_size,
            "frontend_depth": self.frontend_depth,
            "steering": self.steering,
            "cluster": self.cluster.to_dict(),
            "latencies": self.latencies.to_dict(),
            "bus": self.bus.to_dict(),
            "branch": self.branch.to_dict(),
            "memory": self.memory.to_dict(),
        }
        if self.energy != _DEFAULT_ENERGY:
            out["energy"] = self.energy.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProcessorConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys — at any nesting level — raise
        :class:`~repro.common.errors.ConfigurationError` so a typo in a sweep
        spec fails loudly instead of silently falling back to a default.
        """
        _check_keys(cls, data)
        kwargs: Dict[str, Any] = dict(data)
        if "topology" in kwargs and not isinstance(kwargs["topology"], Topology):
            try:
                kwargs["topology"] = Topology(kwargs["topology"])
            except ValueError:
                valid = [t.value for t in Topology]
                raise ConfigurationError(
                    f"unknown topology {kwargs['topology']!r}; valid: {valid}"
                ) from None
        nested = {
            "cluster": ClusterConfig,
            "latencies": FuLatencies,
            "bus": BusConfig,
            "branch": BranchPredictorConfig,
            "memory": MemoryHierarchyConfig,
            "energy": EnergyConfig,
        }
        for name, sub_cls in nested.items():
            if name in kwargs and not isinstance(kwargs[name], sub_cls):
                kwargs[name] = sub_cls.from_dict(kwargs[name])
        return cls(**kwargs)

    def config_digest(self) -> str:
        """Stable 16-hex-char content hash of the full configuration.

        Two configs have equal digests iff their :meth:`to_dict` forms are
        equal; the JSON canonicalisation (sorted keys, no whitespace) keeps
        the digest independent of Python version and dict insertion order.
        Used as (part of) the cache key of the sweep result store.
        """
        return content_digest(self.to_dict(), 16)

    def describe(self) -> Dict[str, object]:
        """A flat, JSON-friendly summary used by benchmark/report output.

        The ``energy`` marker appears only when the model is enabled:
        ``describe()`` is embedded verbatim in the header comment of every
        codegen-emitted kernel, and an energy-off config must emit source
        byte-identical to a build without the energy model.
        """
        out: Dict[str, object] = {
            "n_clusters": self.n_clusters,
            "topology": self.topology.value,
            "fetch_width": self.fetch_width,
            "window_size": self.window_size,
            "issue_width_per_cluster": self.cluster.issue_width,
            "steering": self.steering,
            "bus_hop_latency": self.bus.hop_latency,
            "bus_bandwidth": self.bus.bandwidth,
            "mispredict_penalty": self.branch.mispredict_penalty,
            "l1d_miss_penalty": self.memory.l1d.miss_penalty,
        }
        if self.energy.enabled:
            out["energy"] = True
        return out


__all__ = [
    "STEERING_POLICIES",
    "BranchPredictorConfig",
    "BusConfig",
    "CacheConfig",
    "ClusterConfig",
    "EnergyConfig",
    "FuLatencies",
    "MemoryHierarchyConfig",
    "ProcessorConfig",
]
