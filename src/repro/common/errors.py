"""Exception hierarchy for the reproduction library.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch simulator problems without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent processor/workload configuration."""


class TraceError(ReproError):
    """A malformed instruction trace (bad operands, dangling dependences...)."""


class SteeringError(ReproError):
    """A steering policy returned an illegal cluster or violated its contract."""


class StoreError(ReproError):
    """A sweep result store is corrupt or used inconsistently.

    A *truncated last line* (interrupted append) is not a :class:`StoreError`
    — the store detects and recovers it; this exception is reserved for
    damage that cannot be repaired safely, such as corrupt interior records.
    """


class StoreConflictError(StoreError):
    """Two records claim the same content key with different bytes.

    Content keys hash the full experiment point and engine version, so two
    *honest* computations of one key serialize to identical canonical JSON.
    A conflict therefore means corruption or a defective/lying producer
    (a bad peer, a tampered store file) — merging either side silently
    would poison the byte-identity guarantee, so the merge refuses.
    """


class FabricError(ReproError):
    """The distributed sweep fabric could not complete a run.

    Raised when a shard exhausts its requeue budget across every available
    backend, or the fabric is configured without any backend at all.  The
    coordinator's store keeps its flushed expansion-order prefix, so a
    re-run resumes from where the failure stopped it.

    When the failure happened mid-run, :attr:`summary` carries the partial
    ``FabricSummary`` (same failure schema as the sweep's summary:
    per-point ``failures`` plus ``n_discarded``) so callers can report
    what was saved — mirroring how ``SweepInterrupted`` carries its
    partial ``SweepSummary``.
    """

    def __init__(self, message: str, summary: object = None) -> None:
        super().__init__(message)
        self.summary = summary


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state.

    This usually indicates a deadlock (no forward progress for a long time)
    or an internal invariant violation; it is a bug either in the simulator
    or in a user-provided policy, never an expected runtime condition.
    """
