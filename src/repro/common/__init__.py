"""Shared building blocks used by every other subpackage.

The :mod:`repro.common` package holds the pieces that do not belong to any
particular pipeline stage: the instruction/functional-unit taxonomy
(:mod:`repro.common.types`), the processor configuration dataclasses that
encode Table 2 of the paper (:mod:`repro.common.config`), deterministic random
number helpers (:mod:`repro.common.rng`), statistic counters and histograms
(:mod:`repro.common.counters`) and the exception hierarchy
(:mod:`repro.common.errors`).
"""

from repro.common.types import (
    InstrClass,
    FuType,
    RegClass,
    Topology,
    INT_CLASSES,
    FP_CLASSES,
    MEM_CLASSES,
)
from repro.common.config import (
    BranchPredictorConfig,
    BusConfig,
    CacheConfig,
    ClusterConfig,
    FuLatencies,
    MemoryHierarchyConfig,
    ProcessorConfig,
)
from repro.common.counters import (
    Counter,
    Histogram,
    RunningMean,
    StatGroup,
    format_stats,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    SteeringError,
    TraceError,
)
from repro.common.rng import make_rng, spawn_rng

__all__ = [
    "InstrClass",
    "FuType",
    "RegClass",
    "Topology",
    "INT_CLASSES",
    "FP_CLASSES",
    "MEM_CLASSES",
    "BranchPredictorConfig",
    "BusConfig",
    "CacheConfig",
    "ClusterConfig",
    "FuLatencies",
    "MemoryHierarchyConfig",
    "ProcessorConfig",
    "Counter",
    "Histogram",
    "RunningMean",
    "StatGroup",
    "format_stats",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SteeringError",
    "TraceError",
    "make_rng",
    "spawn_rng",
]
