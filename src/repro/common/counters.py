"""Lightweight statistics primitives used throughout the simulator.

The cycle-level model increments many counters in its inner loop, so these
classes are intentionally simple: plain attributes, no locking, no callbacks.
:class:`StatGroup` provides a hierarchical namespace that can be rendered as
a flat ``dict`` for reporting and comparison in tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Optional, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = int(value)

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"Counter {self.name!r} is monotonic; cannot add negative amount {amount}"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class RunningMean:
    """Accumulates a sum and a count; reports the mean lazily.

    Used for per-communication and per-cycle averages (Figures 8, 9 and 10
    all report this kind of quantity).
    """

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0

    def add(self, value: float, weight: int = 1) -> None:
        self.total += value
        self.count += weight

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningMean({self.name!r}, mean={self.mean:.4f}, n={self.count})"


class Histogram:
    """A sparse integer-keyed histogram (e.g. communication distance in hops).

    The running total and weighted sum are maintained incrementally so that
    :meth:`total` and :meth:`mean` are O(1); only :meth:`items`/:meth:`as_dict`
    (explicit bin enumeration) pay for sorting.
    """

    __slots__ = ("name", "_bins", "_total", "_weighted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._bins: Dict[int, int] = defaultdict(int)
        self._total = 0
        self._weighted = 0

    def add(self, key: int, amount: int = 1) -> None:
        key = int(key)
        self._bins[key] += amount
        self._total += amount
        self._weighted += key * amount

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._bins.items()))

    def total(self) -> int:
        return self._total

    def mean(self) -> float:
        if self._total == 0:
            return 0.0
        return self._weighted / self._total

    def as_dict(self) -> Dict[int, int]:
        return dict(sorted(self._bins.items()))

    def reset(self) -> None:
        self._bins.clear()
        self._total = 0
        self._weighted = 0

    def __getitem__(self, key: int) -> int:
        return self._bins.get(int(key), 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, {self.as_dict()})"


class StatGroup:
    """A named collection of counters, means and histograms.

    The group creates members on first access so pipeline code can write
    ``stats.counter("commits").add()`` without a central registration step.
    """

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._means: Dict[str, RunningMean] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._scalars: Dict[str, float] = {}

    # -- member factories -------------------------------------------------
    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def mean(self, name: str) -> RunningMean:
        if name not in self._means:
            self._means[name] = RunningMean(name)
        return self._means[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def set_scalar(self, name: str, value: float) -> None:
        self._scalars[name] = float(value)

    def get_scalar(self, name: str, default: Optional[float] = None) -> Optional[float]:
        return self._scalars.get(name, default)

    # -- reporting --------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """Flatten the group into ``{name: value}`` for reporting.

        O(members): histogram means/totals are cached incrementally, so no
        bins are walked or re-sorted here.  Raises :class:`ValueError` when
        two members flatten to the same key (e.g. a scalar literally named
        ``"foo.mean"`` next to a :class:`RunningMean` called ``"foo"``)
        instead of silently letting one overwrite the other.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, mean in self._means.items():
            out[f"{name}.mean"] = mean.mean
            out[f"{name}.count"] = mean.count
        for name, hist in self._histograms.items():
            out[f"{name}.mean"] = hist.mean()
            out[f"{name}.total"] = hist.total()
        expected = len(self._counters) + 2 * len(self._means) + 2 * len(self._histograms)
        if len(out) != expected:
            raise ValueError(
                f"StatGroup {self.name!r}: flattened member names collide "
                "(a counter/mean/histogram name clashes with another member's "
                "derived '.mean'/'.count'/'.total' key)"
            )
        for name, value in self._scalars.items():
            if name in out:
                raise ValueError(
                    f"StatGroup {self.name!r}: scalar {name!r} collides with a "
                    "flattened counter/mean/histogram key"
                )
            out[name] = value
        return out

    def merge(self, other: "StatGroup") -> None:
        """Accumulate another group's raw totals into this one."""
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)
        for name, mean in other._means.items():
            mine = self.mean(name)
            mine.total += mean.total
            mine.count += mean.count
        for name, hist in other._histograms.items():
            mine_h = self.histogram(name)
            for key, val in hist.items():
                mine_h.add(key, val)
        # Scalars are not merged automatically: they are usually derived
        # quantities (IPC, speedup) that must be recomputed from totals.

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for mean in self._means.values():
            mean.reset()
        for hist in self._histograms.values():
            hist.reset()
        self._scalars.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {len(self.as_dict())} entries)"


def format_stats(stats: Mapping[str, float], indent: str = "  ") -> str:
    """Render a flat stats mapping as an aligned, sorted text block."""
    if not stats:
        return f"{indent}(empty)"
    width = max(len(key) for key in stats)
    lines = []
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, float) and not value.is_integer():
            lines.append(f"{indent}{key:<{width}} {value:.4f}")
        else:
            lines.append(f"{indent}{key:<{width}} {value:.0f}")
    return "\n".join(lines)


__all__ = ["Counter", "RunningMean", "Histogram", "StatGroup", "format_stats"]
