"""Core taxonomies shared across the simulator.

The enumerations in this module classify dynamic instructions, functional
units, register files and interconnect topologies.  They mirror the
vocabulary of the paper:

* instruction classes follow the latency table of Table 2 (integer ALU,
  integer multiply/divide, FP add, FP multiply/divide, loads, stores,
  branches);
* functional-unit types follow Section 4.2 ("1 unit of each type per
  cluster" for the 1 INT + 1 FP configuration);
* :class:`Topology` distinguishes the proposed ring clustered processor
  (``RING``) from the conventional clustered baseline (``CONV``).
"""

from __future__ import annotations

import enum


class InstrClass(enum.IntEnum):
    """Dynamic instruction classes recognised by the pipeline.

    The integer values are stable and compact so they can be used to index
    small lookup tables in the hot simulation loop.
    """

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    FP_LOAD = 7
    STORE = 8
    FP_STORE = 9
    BRANCH = 10
    NOP = 11

    @property
    def is_memory(self) -> bool:
        """Whether the instruction accesses the data cache."""
        return self in MEM_CLASSES

    @property
    def is_load(self) -> bool:
        return self in (InstrClass.LOAD, InstrClass.FP_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (InstrClass.STORE, InstrClass.FP_STORE)

    @property
    def is_branch(self) -> bool:
        return self is InstrClass.BRANCH

    @property
    def is_fp_compute(self) -> bool:
        """FP arithmetic executed on the FP datapath of a cluster."""
        return self in (InstrClass.FP_ADD, InstrClass.FP_MUL, InstrClass.FP_DIV)

    @property
    def uses_int_pipeline(self) -> bool:
        """Whether the instruction occupies an integer issue slot.

        Loads, stores and branches perform their address/condition
        computation on the integer datapath (Section 3.2: "the address
        calculation of these instructions is sent to the integer ring").
        """
        return not self.is_fp_compute and self is not InstrClass.NOP


class FuType(enum.IntEnum):
    """Functional-unit types available inside one cluster."""

    INT_ALU = 0
    INT_MULDIV = 1
    FP_ALU = 2
    FP_MULDIV = 3

    @property
    def is_integer(self) -> bool:
        return self in (FuType.INT_ALU, FuType.INT_MULDIV)


class RegClass(enum.IntEnum):
    """Architectural/physical register file classes."""

    INT = 0
    FP = 1


class Topology(enum.Enum):
    """Inter-cluster organisation of the processor.

    ``RING``
        The proposed organisation: results of cluster *i* are written into
        the register file of cluster *(i+1) mod N*; there are no
        intra-cluster bypasses and the buses are unidirectional, following
        the ring.

    ``CONV``
        The conventional clustered baseline: results stay in the producing
        cluster, intra-cluster bypasses allow back-to-back issue inside a
        cluster, and with two buses one runs in each direction.
    """

    RING = "ring"
    CONV = "conv"

    @property
    def is_ring(self) -> bool:
        return self is Topology.RING


#: Instruction classes executed on the integer datapath.
INT_CLASSES = frozenset(
    {
        InstrClass.INT_ALU,
        InstrClass.INT_MUL,
        InstrClass.INT_DIV,
        InstrClass.LOAD,
        InstrClass.FP_LOAD,
        InstrClass.STORE,
        InstrClass.FP_STORE,
        InstrClass.BRANCH,
    }
)

#: Instruction classes executed on the floating-point datapath.
FP_CLASSES = frozenset({InstrClass.FP_ADD, InstrClass.FP_MUL, InstrClass.FP_DIV})

#: Instruction classes that access the data cache.
MEM_CLASSES = frozenset(
    {InstrClass.LOAD, InstrClass.FP_LOAD, InstrClass.STORE, InstrClass.FP_STORE}
)

#: Mapping from instruction class to the functional-unit type that executes it.
FU_FOR_CLASS = {
    InstrClass.INT_ALU: FuType.INT_ALU,
    InstrClass.INT_MUL: FuType.INT_MULDIV,
    InstrClass.INT_DIV: FuType.INT_MULDIV,
    InstrClass.FP_ADD: FuType.FP_ALU,
    InstrClass.FP_MUL: FuType.FP_MULDIV,
    InstrClass.FP_DIV: FuType.FP_MULDIV,
    InstrClass.LOAD: FuType.INT_ALU,
    InstrClass.FP_LOAD: FuType.INT_ALU,
    InstrClass.STORE: FuType.INT_ALU,
    InstrClass.FP_STORE: FuType.INT_ALU,
    InstrClass.BRANCH: FuType.INT_ALU,
    InstrClass.NOP: FuType.INT_ALU,
}

#: Register class written by each instruction class (``None`` when the
#: instruction produces no register result).
DEST_REGCLASS_FOR_CLASS = {
    InstrClass.INT_ALU: RegClass.INT,
    InstrClass.INT_MUL: RegClass.INT,
    InstrClass.INT_DIV: RegClass.INT,
    InstrClass.FP_ADD: RegClass.FP,
    InstrClass.FP_MUL: RegClass.FP,
    InstrClass.FP_DIV: RegClass.FP,
    InstrClass.LOAD: RegClass.INT,
    InstrClass.FP_LOAD: RegClass.FP,
    InstrClass.STORE: None,
    InstrClass.FP_STORE: None,
    InstrClass.BRANCH: None,
    InstrClass.NOP: None,
}
