"""Steering-policy plugin registry.

The paper's central knob is *how instructions are steered to clusters*: its
evaluation compares steering heuristics across the ring and conventional
interconnects.  This module makes that knob extensible — steering policies
are objects registered in :data:`STEERING_REGISTRY` (the same API shape as
the workload ``MIX_REGISTRY``), and every dispatch site consults the
registry instead of a frozen tuple:

* the **generic kernel** (:func:`repro.engine.kernel.simulate`) asks the
  policy for a per-run steering closure via :meth:`SteeringPolicy.make_generic`;
* the **naive oracle** (``bench/naive_ref.py``) does the same through
  :meth:`SteeringPolicy.make_naive` over its object-per-instruction state;
* the **batch kernel** (:func:`repro.engine.batch.simulate_batch`) asks for
  a lane-vectorized closure via :meth:`SteeringPolicy.make_batch` — same
  per-instruction call shape, but every argument and the returned cluster
  are numpy arrays over the batch lanes;
* the **codegen specializer** (:mod:`repro.engine.codegen`) calls the
  policy's stage emitters (:meth:`SteeringPolicy.emit_setup`,
  :meth:`SteeringPolicy.emit_steering`, :meth:`SteeringPolicy.emit_retire`)
  to inline the policy branch-free into the emitted source;
* ``ProcessorConfig.steering`` validation and the sweep grid enumerate
  :func:`list_policies`.

The three policies of the original tuple — ``dependence``, ``modulo``,
``round_robin`` — are the built-in registrations (:data:`BUILTIN_POLICIES`).
The generic kernel and the naive oracle keep dedicated fast paths for those
three names (the generic loop is performance-gated), and their codegen
emitters delegate to the specializer's original stage emitters, so routing
them through the registry changes neither results nor a single byte of
emitted source.

Two further policies ship registered through the plugin path only:

* ``load_balance`` — steer to the least-occupied cluster, tie-break by
  lowest cluster index;
* ``criticality`` — dependence steering (follow the critical producer),
  falling back to the least-occupied cluster when the preferred cluster
  has no free window slot.

**Occupancy model** (shared by both): the occupancy of cluster ``c`` at
instruction ``i`` is the number of earlier instructions steered to ``c``
that have not retired by ``i``'s fetch cycle — ``retire_cycle(j) >
fetch_cycle(i)``, where ``retire_cycle(j)`` is the running maximum of
completion cycles after ``j`` (the cycle ``j``'s reorder-window entry
frees).  Retirement is in order, so the retired set is always a
program-order prefix and occupancy is maintained with one monotone pointer
plus a per-cluster counter, O(1) amortized per instruction, identically in
all three kernels.  ``criticality`` considers the preferred cluster full
when its occupancy reaches its share of the reorder window,
``max(1, window_size // n_clusters)``.

Registering a policy makes it valid in ``ProcessorConfig``, steerable by
the generic/specialized/naive kernels, sweepable from the grid, and a
first-class row in the comm-by-steering and EPI report tables::

    from repro.steering import SteeringPolicy, register_policy

    class MyPolicy(SteeringPolicy):
        name = "my_policy"
        ...

    register_policy(MyPolicy())

Policy names identify semantics: the codegen specialization key folds in
the *name*, so re-registering a name with different behaviour must only be
done in a fresh process (mirror of the workload-mix contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

#: Names of the three original (tuple-era) policies.  The generic kernel and
#: the naive oracle fast-path these names inline; everything else goes
#: through the policy closures.
BUILTIN_POLICIES = ("dependence", "modulo", "round_robin")

#: Registry of steering policies, keyed by name.  ``ProcessorConfig``
#: validation, the sweep grid and all three kernels enumerate this via
#: :func:`list_policies`; new policies are added through
#: :func:`register_policy` without touching any dispatch site.
STEERING_REGISTRY: Dict[str, "SteeringPolicy"] = {}


def list_policies() -> Tuple[str, ...]:
    """Names of all registered steering policies, sorted."""
    return tuple(sorted(STEERING_REGISTRY))


# Everything ``repro.common.config`` pulls from this module is now defined:
# importing ``repro.steering`` first triggers ``repro.common`` package init
# below, which imports config, which imports back into this module while it
# is partially initialised — anything config needs must precede this line.
from repro.common.errors import ConfigurationError  # noqa: E402


@dataclass
class SteeringContext:
    """Per-run state the generic kernel exposes to a steering closure.

    ``cluster_col``/``complete_col`` are the kernel's live SoA columns:
    entries for instructions before the one being steered are final.
    ``retire_col`` is populated (per retired-by contract above) only when
    the policy sets :attr:`SteeringPolicy.needs_retire`.
    """

    n_clusters: int
    is_ring: bool
    window_size: int
    fetch_width: int
    cluster_col: List[int]
    complete_col: List[int]
    retire_col: List[int]


@dataclass
class NaiveSteeringContext:
    """Object-per-instruction twin of :class:`SteeringContext`.

    ``instructions`` is the naive pipeline's materialised instruction list
    (earlier entries carry final ``cluster``/``complete_cycle``);
    ``retire_cycles`` is appended to after each instruction retires and has
    exactly ``instr.index`` entries when ``instr`` is being steered.
    """

    n_clusters: int
    is_ring: bool
    window_size: int
    fetch_width: int
    instructions: List[object]
    retire_cycles: List[int]


@dataclass
class BatchSteeringContext:
    """Lane-vectorized twin of :class:`SteeringContext`.

    The batch kernel simulates ``n_lanes`` traces in lock-step over a shared
    instruction index; all columns are ``(N, n_lanes)`` numpy arrays whose
    rows for instructions before the one being steered are final.
    ``lane_index`` is ``arange(n_lanes)`` (for gather convenience);
    ``retire_col`` is populated only when the policy sets
    :attr:`SteeringPolicy.needs_retire` (or the energy model is active) and
    is a zero-row array otherwise.  ``j1f_col``/``j2f_col`` are the
    kernel's precomputed flat producer addresses ``max(src, 0) * n_lanes +
    lane`` per step — row ``i`` indexes the flat view of any ``(N,
    n_lanes)`` column at the step's (clipped) source-1/source-2 producers,
    so gather-heavy policies need not recompute them.
    ``present1_col``/``present2_col`` are the matching precomputed
    source-present bool columns (``src >= 0``), sparing policies the
    per-step comparisons.
    """

    n_clusters: int
    is_ring: bool
    window_size: int
    fetch_width: int
    n_lanes: int
    lane_index: "object"
    cluster_col: "object"
    complete_col: "object"
    retire_col: "object"
    j1f_col: "object" = None
    j2f_col: "object" = None
    present1_col: "object" = None
    present2_col: "object" = None


class SteeringPolicy:
    """One steering heuristic, pluggable into all three kernels.

    Subclasses set :attr:`name` and implement the three backends:

    * :meth:`make_generic` / :meth:`make_naive` return per-run closures
      ``steer(i, s1, s2, fetch_cycle) -> cluster`` and
      ``steer(instr, fetch_cycle) -> cluster`` respectively; a fresh
      closure is requested for every simulation, so per-run state lives in
      the closure, never on the policy object.
    * :meth:`emit_steering` emits the policy's steering (and operands)
      stage into the specialized-kernel source; :meth:`emit_setup` /
      :meth:`emit_retire` contribute per-run state initialisation and the
      retire-stage bookkeeping.  Emitters receive the specializer's folded
      value dict ``v`` (see ``repro.engine.codegen._spec_values``) and must
      emit deterministic source — the specialization key contains the
      policy *name*, so the same name must always emit the same code.

    :attr:`needs_retire` asks the kernels to maintain the per-instruction
    retire-cycle column (monotone running max of completion) that the
    occupancy model reads; policies that do not track occupancy leave it
    ``False`` and the kernels skip that bookkeeping entirely.
    """

    name: str = ""
    needs_retire: bool = False

    # -- interpreted backends --------------------------------------------
    def make_generic(
        self, ctx: SteeringContext
    ) -> Callable[[int, int, int, int], int]:
        raise NotImplementedError

    def make_naive(
        self, ctx: NaiveSteeringContext
    ) -> Callable[[object, int], int]:
        raise NotImplementedError

    # -- batch backend -----------------------------------------------------
    def make_batch(
        self, ctx: BatchSteeringContext
    ) -> Callable[[int, object, object, object], object]:
        """Return a lane-vectorized ``steer(i, s1, s2, fetch_cycle)``.

        ``s1``/``s2``/``fetch_cycle`` are ``(n_lanes,)`` int arrays and the
        closure must return the chosen cluster per lane as an int array.
        The default raises: a policy without a vectorized backend runs
        under ``kernel_variant="generic"`` (per lane), but cannot batch.
        """
        raise ConfigurationError(
            f"steering policy {self.name!r} does not implement a "
            f"lane-vectorized backend (make_batch), so it cannot run "
            f"under the batch kernel; use kernel_variant='generic' (or "
            f"REPRO_KERNEL_VARIANT=generic), or implement make_batch"
        )

    # -- codegen backend --------------------------------------------------
    def emit_setup(self, e, v) -> None:
        """Emit per-run state initialisation lines (indent 1)."""

    def emit_steering(self, e, v, ind: int) -> None:
        """Emit the ``steering`` and ``operands`` stages of the loop body.

        Must mark both stages via ``e.stage(...)`` (a fused emitter marks
        them around its combined block) — the specializer asserts the
        emitted stage sequence matches ``kernel.STAGES``.

        The default raises: an interpreted-only policy (closures but no
        emitters) runs under ``kernel_variant="generic"`` and the naive
        oracle, but cannot be compiled.
        """
        raise ConfigurationError(
            f"steering policy {self.name!r} does not implement codegen "
            f"(emit_steering), so it cannot run under the specialized "
            f"kernel; use kernel_variant='generic' (or "
            f"REPRO_KERNEL_VARIANT=generic), or implement the policy's "
            f"stage emitters"
        )

    def emit_retire(self, e, v, ind: int) -> None:
        """Emit retire-stage bookkeeping (after the ROB update)."""

    def emit_epilogue(self, e, v) -> None:
        """Emit post-loop fold-up lines (indent 1), before the result."""


# ---------------------------------------------------------------------------
# Built-in policies (fast-pathed inline by the interpreted kernels; codegen
# delegates to the specializer's original emitters, byte for byte).
# ---------------------------------------------------------------------------


class DependencePolicy(SteeringPolicy):
    """Follow the critical producer (latest-completing source operand).

    Under ``RING`` the consumer is placed one cluster *ahead* of the
    producer — where the result arrives first; under ``CONV`` it shares the
    producer's cluster and takes the intra-cluster bypass.  Source-free
    instructions round-robin over the clusters.
    """

    name = "dependence"

    def make_generic(self, ctx):
        nc = ctx.n_clusters
        is_ring = ctx.is_ring
        cluster_col = ctx.cluster_col
        complete_col = ctx.complete_col
        rr = [0]

        def steer(i, s1, s2, fetch_cycle):
            if s1 >= 0:
                if s2 >= 0 and complete_col[s2] > complete_col[s1]:
                    base = cluster_col[s2]
                else:
                    base = cluster_col[s1]
            elif s2 >= 0:
                base = cluster_col[s2]
            else:
                cluster = rr[0] % nc
                rr[0] += 1
                return cluster
            return (base + 1) % nc if is_ring else base

        return steer

    def make_naive(self, ctx):
        nc = ctx.n_clusters
        is_ring = ctx.is_ring
        rr = [0]

        def steer(instr, fetch_cycle):
            critical = instr.src1
            if critical is not None:
                if (
                    instr.src2 is not None
                    and instr.src2.complete_cycle > instr.src1.complete_cycle
                ):
                    critical = instr.src2
            else:
                critical = instr.src2
            if critical is None:
                cluster = rr[0] % nc
                rr[0] += 1
                return cluster
            base = critical.cluster
            return (base + 1) % nc if is_ring else base

        return steer

    def make_batch(self, ctx):
        import numpy as np

        nc = ctx.n_clusters
        is_ring = ctx.is_ring
        nc_mask = nc - 1 if nc & (nc - 1) == 0 else 0
        # Flat views + take() gathers: measurably cheaper than 2-D
        # advanced indexing in the per-step hot path.
        cluster_flat = ctx.cluster_col.reshape(-1)
        complete_flat = ctx.complete_col.reshape(-1)
        j1f_col = ctx.j1f_col
        j2f_col = ctx.j2f_col
        present1_col = ctx.present1_col
        present2_col = ctx.present2_col
        rr = np.zeros(ctx.n_lanes, dtype=np.int64)

        def steer(i, s1, s2, fetch_cycle):
            j1f = j1f_col[i]
            j2f = j2f_col[i]
            p1 = present1_col[i]
            p2 = present2_col[i]
            # Lanes where a source is absent gather row 0 garbage, but the
            # masks below never select those values.  The critical source
            # is s2 iff s1 is absent or s2 completes strictly later.
            use2 = p2 & (
                ~p1 | (complete_flat.take(j2f) > complete_flat.take(j1f))
            )
            jcrit = j1f + (j2f - j1f) * use2
            has_src = p1 | p2
            base = cluster_flat.take(jcrit)
            if is_ring:
                steered = (base + 1) & nc_mask if nc_mask else (base + 1) % nc
            else:
                steered = base
            fill = rr & nc_mask if nc_mask else rr % nc
            cluster = np.where(has_src, steered, fill)
            np.add(rr, ~has_src, out=rr, casting="unsafe")
            return cluster

        return steer

    def emit_steering(self, e, v, ind):
        from repro.engine import codegen

        codegen._emit_dependence_fused(e, v, ind)

    def emit_epilogue(self, e, v):
        # The fused RING emitter tallies the critical source's (always-1)
        # hop distance in a plain int; fold it into the histogram here.
        if v["topology"] == "ring":
            e.emit("hop_counts[1] += h1", 1)


class _SplitSteeringPolicy(SteeringPolicy):
    """Shared codegen shape: a steering block, then the standard operands."""

    def emit_steering(self, e, v, ind):
        from repro.engine import codegen

        self._emit_cluster_choice(e, v, ind)
        e.stage("operands", ind)
        codegen._emit_operand(e, v, "s1", ind)
        codegen._emit_operand(e, v, "s2", ind)

    def _emit_cluster_choice(self, e, v, ind) -> None:
        raise NotImplementedError


class ModuloPolicy(_SplitSteeringPolicy):
    """Fetch-group modulo: group ``i // fetch_width`` maps round-robin."""

    name = "modulo"

    def make_generic(self, ctx):
        nc = ctx.n_clusters
        fw = ctx.fetch_width

        def steer(i, s1, s2, fetch_cycle):
            return (i // fw) % nc

        return steer

    def make_naive(self, ctx):
        nc = ctx.n_clusters
        fw = ctx.fetch_width

        def steer(instr, fetch_cycle):
            return (instr.index // fw) % nc

        return steer

    def make_batch(self, ctx):
        import numpy as np

        nc = ctx.n_clusters
        fw = ctx.fetch_width
        n_lanes = ctx.n_lanes

        def steer(i, s1, s2, fetch_cycle):
            return np.full(n_lanes, (i // fw) % nc, dtype=np.int64)

        return steer

    def _emit_cluster_choice(self, e, v, ind):
        from repro.engine import codegen

        codegen._emit_steering(e, v, ind)


class RoundRobinPolicy(_SplitSteeringPolicy):
    """Pure per-instruction round-robin."""

    name = "round_robin"

    def make_generic(self, ctx):
        nc = ctx.n_clusters

        def steer(i, s1, s2, fetch_cycle):
            return i % nc

        return steer

    def make_naive(self, ctx):
        nc = ctx.n_clusters

        def steer(instr, fetch_cycle):
            return instr.index % nc

        return steer

    def make_batch(self, ctx):
        import numpy as np

        nc = ctx.n_clusters
        n_lanes = ctx.n_lanes

        def steer(i, s1, s2, fetch_cycle):
            return np.full(n_lanes, i % nc, dtype=np.int64)

        return steer

    def _emit_cluster_choice(self, e, v, ind):
        from repro.engine import codegen

        codegen._emit_steering(e, v, ind)


# ---------------------------------------------------------------------------
# Occupancy-tracking policies (registered through the plugin path only).
# ---------------------------------------------------------------------------


def _emit_occupancy_state(e, v) -> None:
    """Per-run occupancy state; ``retire_col`` is shared with the energy
    model when both are active (the energy block allocates it first)."""
    if "energy" not in v:
        e.emit("retire_col = [0] * n", 1)
    e.emit(f"cluster_load = [0] * {v['n_clusters']}", 1)
    e.emit("sp = 0", 1)


def _emit_occupancy_advance(e, v, ind) -> None:
    """Retire the program-order prefix whose window entries have freed."""
    from repro.engine.codegen import _fetch_cycle_local

    fc = _fetch_cycle_local(v)
    e.emit(f"while sp < i and retire_col[sp] <= {fc}:", ind)
    e.emit("cluster_load[cluster_col[sp]] -= 1", ind + 1)
    e.emit("sp += 1", ind + 1)


def _emit_argmin_load(e, v, ind) -> None:
    """``cluster`` = least-occupied cluster, lowest index on ties."""
    nc = v["n_clusters"]
    e.emit("cluster = 0", ind)
    e.emit("best = cluster_load[0]", ind)
    e.emit(f"for cc in range(1, {nc}):", ind)
    e.emit("if cluster_load[cc] < best:", ind + 1)
    e.emit("best = cluster_load[cc]", ind + 2)
    e.emit("cluster = cc", ind + 2)


class _OccupancyPolicy(_SplitSteeringPolicy):
    """Shared machinery of the occupancy-tracking policies."""

    needs_retire = True

    def emit_setup(self, e, v):
        _emit_occupancy_state(e, v)

    def emit_retire(self, e, v, ind):
        # With the energy model on, its accounting block (emitted after the
        # retire stage) already records the retire cycle.
        if "energy" not in v:
            e.emit("retire_col[i] = last_retire", ind)

    @staticmethod
    def _make_tracker(nc, cluster_of, retire_col):
        """(advance, load) pair over ``retire_col``/``cluster_of``."""
        load = [0] * nc
        state = [0]

        def advance(upto, fetch_cycle):
            sp = state[0]
            while sp < upto and retire_col[sp] <= fetch_cycle:
                load[cluster_of(sp)] -= 1
                sp += 1
            state[0] = sp

        return advance, load

    @staticmethod
    def _argmin(load, nc):
        cluster = 0
        best = load[0]
        for c in range(1, nc):
            if load[c] < best:
                best = load[c]
                cluster = c
        return cluster

    @staticmethod
    def _make_batch_tracker(ctx):
        """(advance, load, load_flat, lane_off) over the batch lanes.

        ``load`` is ``(n_lanes, n_clusters)`` with ``load_flat`` its flat
        view and ``lane_off`` the per-lane flat row offsets; ``advance``
        moves every lane's retire pointer independently.  Each vectorized
        sweep advances each lane by at most one slot, so total work stays
        the amortized O(n) of the scalar tracker times the lane count.
        Lanes the mask rejects write their load counts back unchanged.
        """
        import numpy as np

        B = ctx.n_lanes
        lanes = ctx.lane_index
        cluster_flat = ctx.cluster_col.reshape(-1)
        retire_flat = ctx.retire_col.reshape(-1)
        load = np.zeros((B, ctx.n_clusters), dtype=np.int64)
        load_flat = load.reshape(-1)
        lane_off = lanes * ctx.n_clusters
        sp = np.zeros(B, dtype=np.int64)

        def advance(upto, fetch_cycle):
            while True:
                # sp <= upto <= N-1 during steering, so the gathers are
                # in-bounds even for lanes the mask rejects.
                spf = sp * B + lanes
                adv = (sp < upto) & (retire_flat.take(spf) <= fetch_cycle)
                if not adv.any():
                    break
                idx = lane_off + cluster_flat.take(spf)
                load_flat[idx] = load_flat.take(idx) - adv
                np.add(sp, adv, out=sp, casting="unsafe")

        return advance, load, load_flat, lane_off


class LoadBalancePolicy(_OccupancyPolicy):
    """Steer to the least-occupied cluster, tie-break by lowest index."""

    name = "load_balance"

    def make_generic(self, ctx):
        nc = ctx.n_clusters
        cluster_col = ctx.cluster_col
        advance, load = self._make_tracker(
            nc, cluster_col.__getitem__, ctx.retire_col
        )
        argmin = self._argmin

        def steer(i, s1, s2, fetch_cycle):
            advance(i, fetch_cycle)
            cluster = argmin(load, nc)
            load[cluster] += 1
            return cluster

        return steer

    def make_naive(self, ctx):
        nc = ctx.n_clusters
        instructions = ctx.instructions
        advance, load = self._make_tracker(
            nc, lambda j: instructions[j].cluster, ctx.retire_cycles
        )
        argmin = self._argmin

        def steer(instr, fetch_cycle):
            advance(instr.index, fetch_cycle)
            cluster = argmin(load, nc)
            load[cluster] += 1
            return cluster

        return steer

    def make_batch(self, ctx):
        import numpy as np

        advance, load, load_flat, lane_off = self._make_batch_tracker(ctx)

        def steer(i, s1, s2, fetch_cycle):
            advance(i, fetch_cycle)
            # np.argmin returns the first minimum — same lowest-index
            # tie-break as the scalar _argmin scan.
            cluster = np.argmin(load, axis=1)
            idx = lane_off + cluster
            load_flat[idx] = load_flat.take(idx) + 1
            return cluster

        return steer

    def _emit_cluster_choice(self, e, v, ind):
        e.stage("steering", ind)
        _emit_occupancy_advance(e, v, ind)
        _emit_argmin_load(e, v, ind)
        e.emit("cluster_load[cluster] += 1", ind)
        e.emit("cluster_col[i] = cluster", ind)


class CriticalityPolicy(_OccupancyPolicy):
    """Dependence steering with a load-aware fallback.

    Prefer the critical producer's target cluster (one ahead under RING,
    the producer's own under CONV — exactly as ``dependence``); when that
    cluster's occupancy has reached its reorder-window share
    (``max(1, window_size // n_clusters)``), or the instruction has no
    source operands, steer to the least-occupied cluster instead.
    """

    name = "criticality"

    @staticmethod
    def window_share(window_size: int, n_clusters: int) -> int:
        """Per-cluster window capacity used by the fallback test."""
        return max(1, window_size // n_clusters)

    def make_generic(self, ctx):
        nc = ctx.n_clusters
        is_ring = ctx.is_ring
        cap = self.window_share(ctx.window_size, nc)
        cluster_col = ctx.cluster_col
        complete_col = ctx.complete_col
        advance, load = self._make_tracker(
            nc, cluster_col.__getitem__, ctx.retire_col
        )
        argmin = self._argmin

        def steer(i, s1, s2, fetch_cycle):
            advance(i, fetch_cycle)
            if s1 >= 0:
                if s2 >= 0 and complete_col[s2] > complete_col[s1]:
                    base = cluster_col[s2]
                else:
                    base = cluster_col[s1]
            elif s2 >= 0:
                base = cluster_col[s2]
            else:
                base = -1
            if base >= 0:
                cluster = (base + 1) % nc if is_ring else base
                if load[cluster] >= cap:
                    cluster = argmin(load, nc)
            else:
                cluster = argmin(load, nc)
            load[cluster] += 1
            return cluster

        return steer

    def make_naive(self, ctx):
        nc = ctx.n_clusters
        is_ring = ctx.is_ring
        cap = self.window_share(ctx.window_size, nc)
        instructions = ctx.instructions
        advance, load = self._make_tracker(
            nc, lambda j: instructions[j].cluster, ctx.retire_cycles
        )
        argmin = self._argmin

        def steer(instr, fetch_cycle):
            advance(instr.index, fetch_cycle)
            critical = instr.src1
            if critical is not None:
                if (
                    instr.src2 is not None
                    and instr.src2.complete_cycle > instr.src1.complete_cycle
                ):
                    critical = instr.src2
            else:
                critical = instr.src2
            if critical is not None:
                base = critical.cluster
                cluster = (base + 1) % nc if is_ring else base
                if load[cluster] >= cap:
                    cluster = argmin(load, nc)
            else:
                cluster = argmin(load, nc)
            load[cluster] += 1
            return cluster

        return steer

    def make_batch(self, ctx):
        import numpy as np

        nc = ctx.n_clusters
        is_ring = ctx.is_ring
        cap = self.window_share(ctx.window_size, nc)
        cluster_flat = ctx.cluster_col.reshape(-1)
        complete_flat = ctx.complete_col.reshape(-1)
        j1f_col = ctx.j1f_col
        j2f_col = ctx.j2f_col
        advance, load, load_flat, lane_off = self._make_batch_tracker(ctx)

        def steer(i, s1, s2, fetch_cycle):
            advance(i, fetch_cycle)
            j1f = j1f_col[i]
            j2f = j2f_col[i]
            use2 = (s2 >= 0) & (
                (s1 < 0) | (complete_flat.take(j2f) > complete_flat.take(j1f))
            )
            jcrit = j1f + (j2f - j1f) * use2
            has_src = (s1 >= 0) | (s2 >= 0)
            base = cluster_flat.take(jcrit)
            preferred = (base + 1) % nc if is_ring else base
            fallback = np.argmin(load, axis=1)
            over_cap = load_flat.take(lane_off + preferred) >= cap
            cluster = np.where(has_src & ~over_cap, preferred, fallback)
            idx = lane_off + cluster
            load_flat[idx] = load_flat.take(idx) + 1
            return cluster

        return steer

    def _emit_cluster_choice(self, e, v, ind):
        from repro.engine.codegen import _ring_next

        nc = v["n_clusters"]
        pow2 = nc & (nc - 1) == 0
        ring = v["topology"] == "ring"
        cap = self.window_share(v["window_size"], nc)
        e.stage("steering", ind)
        _emit_occupancy_advance(e, v, ind)
        e.emit("if s1 >= 0:", ind)
        e.emit("if s2 >= 0 and complete_col[s2] > complete_col[s1]:", ind + 1)
        e.emit("base = cluster_col[s2]", ind + 2)
        e.emit("else:", ind + 1)
        e.emit("base = cluster_col[s1]", ind + 2)
        e.emit("elif s2 >= 0:", ind)
        e.emit("base = cluster_col[s2]", ind + 1)
        e.emit("else:", ind)
        e.emit("base = -1", ind + 1)
        e.emit("if base >= 0:", ind)
        if ring:
            e.emit(f"cluster = {_ring_next('base', nc, pow2)}", ind + 1)
        else:
            e.emit("cluster = base", ind + 1)
        e.emit(f"if cluster_load[cluster] >= {cap}:", ind + 1)
        _emit_argmin_load(e, v, ind + 2)
        e.emit("else:", ind)
        _emit_argmin_load(e, v, ind + 1)
        e.emit("cluster_load[cluster] += 1", ind)
        e.emit("cluster_col[i] = cluster", ind)


# ---------------------------------------------------------------------------
# Registry (API mirrors repro.workloads.MIX_REGISTRY; the registry dict and
# list_policies live at the top of the module, before the first
# repro.common import).
# ---------------------------------------------------------------------------


def get_policy(name: str) -> SteeringPolicy:
    """Look up a registered policy; unknown names list the valid ones."""
    try:
        return STEERING_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown steering policy {name!r}; "
            f"available: {', '.join(list_policies())}"
        ) from None


def register_policy(
    policy: SteeringPolicy, overwrite: bool = False
) -> SteeringPolicy:
    """Add ``policy`` to the registry (e.g. from a plugin or a test).

    Registering a name that already exists raises
    :class:`~repro.common.errors.ConfigurationError` unless
    ``overwrite=True``, so two plugins cannot silently shadow each other.
    Returns ``policy`` so the call can be used as a one-liner.
    """
    if not isinstance(policy, SteeringPolicy):
        raise ConfigurationError(
            f"register_policy expects a SteeringPolicy, "
            f"got {type(policy).__name__}"
        )
    if not policy.name or not isinstance(policy.name, str):
        raise ConfigurationError(
            f"steering policy {policy!r} has no usable name "
            f"({policy.name!r})"
        )
    if not overwrite and policy.name in STEERING_REGISTRY:
        raise ConfigurationError(
            f"steering policy {policy.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    STEERING_REGISTRY[policy.name] = policy
    return policy


for _policy in (
    DependencePolicy(),
    ModuloPolicy(),
    RoundRobinPolicy(),
    LoadBalancePolicy(),
    CriticalityPolicy(),
):
    register_policy(_policy)
del _policy


__all__ = [
    "BUILTIN_POLICIES",
    "BatchSteeringContext",
    "CriticalityPolicy",
    "DependencePolicy",
    "LoadBalancePolicy",
    "ModuloPolicy",
    "NaiveSteeringContext",
    "RoundRobinPolicy",
    "STEERING_REGISTRY",
    "SteeringContext",
    "SteeringPolicy",
    "get_policy",
    "list_policies",
    "register_policy",
]
