"""Workload generation for the simulation engine.

Currently one backend: the deterministic synthetic generator in
:mod:`repro.workloads.synthetic`.  Real-trace readers (e.g. SimpleScalar
EIO or textual traces) plug in here later behind the same
:class:`~repro.engine.trace.Trace` product type.
"""

from repro.workloads.synthetic import (
    MIXES,
    MIX_REGISTRY,
    WorkloadMix,
    available_mixes,
    generate_trace,
    get_mix,
    list_mixes,
    register_mix,
)

__all__ = [
    "MIXES",
    "MIX_REGISTRY",
    "WorkloadMix",
    "available_mixes",
    "generate_trace",
    "get_mix",
    "list_mixes",
    "register_mix",
]
