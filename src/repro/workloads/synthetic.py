"""Synthetic instruction-trace generator.

The paper evaluates on SPEC-like benchmarks; this reproduction ships a
deterministic synthetic generator whose mixes stress the same machine
behaviours: ``int_heavy`` (ALU pressure, short dependence chains),
``fp_heavy`` (long-latency FP chains), ``memory_bound`` (high load/store
share and cache-miss rates) and ``branchy`` (frequent, poorly predicted
branches).  All randomness flows through :func:`repro.common.rng.spawn_rng`,
so ``(mix, n, seed)`` fully determines the trace.

Dependences are drawn as backward distances over the stream of prior
*value-producing* instructions of the matching register class (FP consumers
read FP producers, integer-pipeline consumers read integer producers), which
yields the clustered, chain-like dependence structure steering policies care
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import SeedLike, spawn_rng
from repro.common.types import DEST_REGCLASS_FOR_CLASS, InstrClass, RegClass
from repro.engine.trace import (
    FLAG_L1_MISS,
    FLAG_L2_MISS,
    FLAG_MISPREDICT,
    Trace,
)

_N_CLASSES = len(InstrClass)


@dataclass(frozen=True)
class WorkloadMix:
    """Parameters of one synthetic workload family."""

    name: str
    class_weights: Dict[InstrClass, float]
    dep_prob: float = 0.8  # probability a source operand exists
    second_src_prob: float = 0.4
    dep_distance_mean: float = 4.0  # geometric mean backward distance
    mispredict_rate: float = 0.05
    l1_miss_rate: float = 0.05
    l2_miss_rate: float = 0.2  # conditional on an L1 miss
    n_arch_regs: int = 64

    def __post_init__(self) -> None:
        if not self.class_weights:
            raise ConfigurationError(f"mix {self.name!r}: empty class weights")
        for klass, weight in self.class_weights.items():
            if weight < 0:
                raise ConfigurationError(
                    f"mix {self.name!r}: negative weight for {klass.name}"
                )
        if sum(self.class_weights.values()) <= 0:
            raise ConfigurationError(f"mix {self.name!r}: weights sum to zero")
        for field_name in ("dep_prob", "second_src_prob", "mispredict_rate",
                           "l1_miss_rate", "l2_miss_rate"):
            v = getattr(self, field_name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(
                    f"mix {self.name!r}: {field_name}={v} outside [0, 1]"
                )
        if self.dep_distance_mean < 1.0:
            raise ConfigurationError(
                f"mix {self.name!r}: dep_distance_mean must be >= 1"
            )

    def weight_vector(self) -> np.ndarray:
        w = np.zeros(_N_CLASSES)
        for klass, weight in self.class_weights.items():
            w[int(klass)] = weight
        return w / w.sum()


#: Registry of workload mixes, keyed by name.  The sweep grid and the CLI
#: enumerate this via :func:`list_mixes`; new mixes are added through
#: :func:`register_mix` (or by shipping them in the tuple below) without
#: touching any dispatch site.
MIX_REGISTRY: Dict[str, WorkloadMix] = {
    mix.name: mix
    for mix in (
        WorkloadMix(
            name="int_heavy",
            class_weights={
                InstrClass.INT_ALU: 0.50,
                InstrClass.INT_MUL: 0.05,
                InstrClass.INT_DIV: 0.01,
                InstrClass.LOAD: 0.20,
                InstrClass.STORE: 0.10,
                InstrClass.BRANCH: 0.14,
            },
            dep_distance_mean=3.0,
            mispredict_rate=0.04,
            l1_miss_rate=0.03,
        ),
        WorkloadMix(
            name="fp_heavy",
            class_weights={
                InstrClass.INT_ALU: 0.15,
                InstrClass.FP_ADD: 0.25,
                InstrClass.FP_MUL: 0.20,
                InstrClass.FP_DIV: 0.03,
                InstrClass.FP_LOAD: 0.20,
                InstrClass.FP_STORE: 0.10,
                InstrClass.BRANCH: 0.07,
            },
            dep_distance_mean=5.0,
            mispredict_rate=0.02,
            l1_miss_rate=0.04,
        ),
        WorkloadMix(
            name="memory_bound",
            class_weights={
                InstrClass.INT_ALU: 0.25,
                InstrClass.LOAD: 0.35,
                InstrClass.STORE: 0.20,
                InstrClass.FP_LOAD: 0.05,
                InstrClass.BRANCH: 0.15,
            },
            dep_distance_mean=4.0,
            mispredict_rate=0.05,
            l1_miss_rate=0.15,
            l2_miss_rate=0.3,
        ),
        WorkloadMix(
            name="branchy",
            class_weights={
                InstrClass.INT_ALU: 0.45,
                InstrClass.LOAD: 0.15,
                InstrClass.STORE: 0.08,
                InstrClass.BRANCH: 0.30,
                InstrClass.NOP: 0.02,
            },
            dep_distance_mean=2.5,
            mispredict_rate=0.12,
            l1_miss_rate=0.04,
        ),
    )
}


#: Backwards-compatible alias (pre-registry name).
MIXES = MIX_REGISTRY


def list_mixes() -> Tuple[str, ...]:
    """Names of all registered workload mixes, sorted."""
    return tuple(sorted(MIX_REGISTRY))


#: Backwards-compatible alias for :func:`list_mixes`.
available_mixes = list_mixes


def get_mix(name: str) -> WorkloadMix:
    """Look up a registered mix; unknown names list the valid ones."""
    try:
        return MIX_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload mix {name!r}; available: {', '.join(list_mixes())}"
        ) from None


def register_mix(mix: WorkloadMix, overwrite: bool = False) -> WorkloadMix:
    """Add ``mix`` to the registry (e.g. from a sweep spec or a plugin).

    Registering a name that already exists raises
    :class:`~repro.common.errors.ConfigurationError` unless ``overwrite=True``,
    so two plugins cannot silently shadow each other.  Returns ``mix`` so the
    call can be used as a decorator-style one-liner.
    """
    if not overwrite and mix.name in MIX_REGISTRY:
        raise ConfigurationError(
            f"workload mix {mix.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    MIX_REGISTRY[mix.name] = mix
    return mix


def generate_trace(
    mix: "str | WorkloadMix",
    n: int,
    seed: SeedLike = None,
    validate: bool = False,
) -> Trace:
    """Generate ``n`` dynamic instructions of ``mix`` deterministically.

    ``validate=False`` by default: the generator only emits structurally
    valid traces (covered by the test suite), and validation is an O(n)
    pass the benchmark harness should not pay for.
    """
    if isinstance(mix, str):
        mix = get_mix(mix)
    if n < 0:
        raise ConfigurationError(f"trace length must be non-negative, got {n}")

    rng = spawn_rng(seed, "workload", mix.name, n)

    opclass = rng.choice(_N_CLASSES, size=n, p=mix.weight_vector())
    want_src1 = rng.random(n) < mix.dep_prob
    want_src2 = rng.random(n) < mix.second_src_prob
    # Geometric backward distances over the per-regclass producer streams.
    p_geo = min(1.0, 1.0 / mix.dep_distance_mean)
    dist1 = rng.geometric(p_geo, size=n)
    dist2 = rng.geometric(p_geo, size=n)
    mispredict_draw = rng.random(n) < mix.mispredict_rate
    l1_draw = rng.random(n) < mix.l1_miss_rate
    l2_draw = rng.random(n) < mix.l2_miss_rate
    dst_regs = rng.integers(0, mix.n_arch_regs, size=n)

    # Per-regclass streams of producer indices (grown append-only).
    producers: List[List[int]] = [[], []]  # RegClass.INT, RegClass.FP
    src_class_for = [0] * _N_CLASSES
    dst_class_for = [-1] * _N_CLASSES
    for klass in InstrClass:
        src_class_for[klass] = int(RegClass.FP) if klass.is_fp_compute else int(RegClass.INT)
        dst = DEST_REGCLASS_FOR_CLASS[klass]
        dst_class_for[klass] = int(dst) if dst is not None else -1
    # FP stores read the FP value they write to memory.
    src_class_for[InstrClass.FP_STORE] = int(RegClass.FP)

    src1: List[int] = [0] * n
    src2: List[int] = [0] * n
    dst: List[int] = [0] * n
    flags: List[int] = [0] * n

    opclass_l = opclass.tolist()
    want_src1_l = want_src1.tolist()
    want_src2_l = want_src2.tolist()
    dist1_l = dist1.tolist()
    dist2_l = dist2.tolist()
    mis_l = mispredict_draw.tolist()
    l1_l = l1_draw.tolist()
    l2_l = l2_draw.tolist()
    dst_regs_l = dst_regs.tolist()

    for i in range(n):
        k = opclass_l[i]
        klass = InstrClass(k)
        pool = producers[src_class_for[k]]
        n_pool = len(pool)
        is_nop = klass is InstrClass.NOP
        if n_pool and want_src1_l[i] and not is_nop:
            src1[i] = pool[-min(dist1_l[i], n_pool)]
        else:
            src1[i] = -1
        if n_pool and want_src2_l[i] and not is_nop:
            src2[i] = pool[-min(dist2_l[i], n_pool)]
        else:
            src2[i] = -1
        f = 0
        if klass.is_branch and mis_l[i]:
            f = FLAG_MISPREDICT
        elif klass.is_memory and l1_l[i]:
            f = FLAG_L1_MISS
            if l2_l[i]:
                f |= FLAG_L2_MISS
        flags[i] = f
        if dst_class_for[k] >= 0:
            producers[dst_class_for[k]].append(i)
            dst[i] = dst_regs_l[i]
        else:
            dst[i] = -1

    return Trace(f"{mix.name}-{n}", opclass_l, src1, src2, dst, flags,
                 validate=validate)


__all__ = [
    "MIXES",
    "MIX_REGISTRY",
    "WorkloadMix",
    "available_mixes",
    "generate_trace",
    "get_mix",
    "list_mixes",
    "register_mix",
]
