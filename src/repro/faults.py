"""Deterministic fault injection for sweep execution.

The fault-tolerant runner in :mod:`repro.sweep.runner` promises that the
result store ends up byte-identical to a fault-free run no matter which
workers crash, hang, or raise along the way.  That promise is only worth
anything if it is *tested* against real failure modes, so this module gives
tests and the CI chaos job a way to inject the three that matter — worker
exceptions, hung workers, and hard worker death — deterministically:

* A :class:`FaultPlan` decides, per ``(point key, attempt)``, whether to
  inject and what.  Decisions are pure functions of the plan's ``seed`` and
  the point key (sha256-derived, not Python's randomized ``hash``), so the
  same plan injects the same faults in every process, at every worker
  count, on every platform — the precondition for asserting byte-identical
  stores under chaos.
* :func:`maybe_inject` is the single hook the runner's
  :func:`~repro.sweep.runner.execute_point` calls before doing any real
  work.  It is a no-op unless a plan is active.
* A plan is activated either in-process via :func:`install_plan` (tests) or
  through the :data:`ENV_VAR` environment variable holding the plan as JSON
  (the CI chaos job; inherited by pool workers under both the ``fork`` and
  ``spawn`` start methods).

Fatal faults (``hang``, ``death``) only manifest literally inside pool
worker processes.  When the runner executes a point in the orchestrating
process — single-worker runs, small inline shards, or the final
graceful-degradation attempt — they are demoted to an
:class:`InjectedFault` exception: killing or stalling the orchestrator is
not a *worker* fault, and would take the flush frontier down with it.

Every injected fault consumes one attempt, so a plan whose
``max_faults_per_point`` is below the runner's retry budget is guaranteed
to let every point eventually succeed — which is how the chaos CI job can
demand a byte-identical final store.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Environment variable read by :func:`active_plan`: a JSON object with
#: :meth:`FaultPlan.from_dict` keys.  Environment wiring is what lets the
#: CI chaos job inject faults into ``python -m repro.sweep run`` without a
#: dedicated CLI flag, and what carries the plan into pool workers.
ENV_VAR = "REPRO_FAULTS"

#: Injection actions, in the priority order :meth:`FaultPlan.decide` maps
#: its uniform draw onto.  ``FAULT_OK`` is only meaningful inside scripted
#: action lists ("this attempt succeeds").
FAULT_EXCEPTION = "exception"
FAULT_HANG = "hang"
FAULT_DEATH = "death"
FAULT_OK = "ok"
_ACTIONS = (FAULT_EXCEPTION, FAULT_HANG, FAULT_DEATH, FAULT_OK)

#: Exit status used for injected hard worker death — distinctive enough to
#: recognise in CI logs and process tables.
DEATH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """Raised by an injected ``exception`` fault (or a demoted fatal one).

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: injected
    faults stand in for arbitrary defects in user code and plugins, which
    the retry layer must survive without special-casing the library's own
    exception hierarchy.
    """


def _unit(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one (point, attempt)."""
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults to inject.

    ``*_rate`` values are per-attempt probabilities (their sum must not
    exceed 1).  ``max_faults_per_point`` caps how many *attempts* of one
    point may be sabotaged: attempts beyond the cap always run clean, so a
    runner allowed ``max_faults_per_point + 1`` attempts is guaranteed to
    finish every point.  ``scripted`` pins exact per-attempt actions for
    chosen point keys (tests targeting "kill attempt 1 of point X"), taking
    precedence over the seeded draw; attempts past the end of a script run
    clean.
    """

    seed: int = 0
    exception_rate: float = 0.0
    hang_rate: float = 0.0
    death_rate: float = 0.0
    max_faults_per_point: int = 2
    hang_s: float = 30.0
    scripted: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.scripted, Mapping):
            normalized = tuple(
                (key, tuple(actions)) for key, actions in self.scripted.items()
            )
        else:
            normalized = tuple(
                (key, tuple(actions)) for key, actions in self.scripted
            )
        object.__setattr__(self, "scripted", normalized)
        for rate_name in ("exception_rate", "hang_rate", "death_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"FaultPlan.{rate_name} must be in [0, 1], got {rate!r}"
                )
        total = self.exception_rate + self.hang_rate + self.death_rate
        if total > 1.0:
            raise ConfigurationError(
                f"FaultPlan rates must sum to at most 1, got {total}"
            )
        if self.max_faults_per_point < 0:
            raise ConfigurationError(
                "FaultPlan.max_faults_per_point must be non-negative, "
                f"got {self.max_faults_per_point}"
            )
        if self.hang_s < 0:
            raise ConfigurationError(
                f"FaultPlan.hang_s must be non-negative, got {self.hang_s}"
            )
        for key, actions in self.scripted:
            for action in actions:
                if action not in _ACTIONS:
                    raise ConfigurationError(
                        f"FaultPlan.scripted[{key!r}]: unknown action "
                        f"{action!r}; valid: {list(_ACTIONS)}"
                    )

    # -- decisions --------------------------------------------------------
    def decide(self, key: str, attempt: int) -> Optional[str]:
        """Action to inject for ``attempt`` (1-based) of point ``key``.

        Returns one of :data:`FAULT_EXCEPTION` / :data:`FAULT_HANG` /
        :data:`FAULT_DEATH`, or ``None`` for a clean attempt.  Pure and
        process-independent: the runner, the workers, and the tests all see
        the same schedule.
        """
        if attempt < 1:
            raise ConfigurationError(
                f"FaultPlan.decide: attempt is 1-based, got {attempt}"
            )
        for scripted_key, actions in self.scripted:
            if scripted_key == key:
                if attempt <= len(actions) and actions[attempt - 1] != FAULT_OK:
                    return actions[attempt - 1]
                return None
        if attempt > self.max_faults_per_point:
            return None
        draw = _unit(self.seed, key, attempt)
        if draw < self.death_rate:
            return FAULT_DEATH
        if draw < self.death_rate + self.hang_rate:
            return FAULT_HANG
        if draw < self.death_rate + self.hang_rate + self.exception_rate:
            return FAULT_EXCEPTION
        return None

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "exception_rate": self.exception_rate,
            "hang_rate": self.hang_rate,
            "death_rate": self.death_rate,
            "max_faults_per_point": self.max_faults_per_point,
            "hang_s": self.hang_s,
            "scripted": {key: list(actions) for key, actions in self.scripted},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"FaultPlan.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        return cls(**dict(data))

    def to_env(self) -> str:
        """JSON form for the :data:`ENV_VAR` environment variable."""
        return json.dumps(self.to_dict(), sort_keys=True)


# -- activation -----------------------------------------------------------
#: Plan installed in-process (takes precedence over the environment).
_installed: Optional[FaultPlan] = None
#: Memoized parse of the env var: ``(raw string, parsed plan)``.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process (and ``fork`` children created
    afterwards).  Use :data:`ENV_VAR` instead to reach ``spawn`` workers."""
    global _installed
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(
            f"install_plan expects a FaultPlan, got {type(plan).__name__}"
        )
    _installed = plan


def clear_plan() -> None:
    """Deactivate any in-process plan (the environment still applies)."""
    global _installed
    _installed = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect: installed one first, then :data:`ENV_VAR`.

    A malformed environment value raises :class:`ConfigurationError` — a
    chaos harness that silently fails to arm would let a broken runner pass
    its determinism gate.
    """
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _env_cache
    if _env_cache[0] == raw:
        return _env_cache[1]
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{ENV_VAR} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{ENV_VAR} must be a JSON object, got {type(data).__name__}"
        )
    plan = FaultPlan.from_dict(data)
    _env_cache = (raw, plan)
    return plan


def maybe_inject(
    key: str, attempt: int, fatal_ok: Optional[bool] = None
) -> Optional[str]:
    """Injection hook: act on the active plan's decision for this attempt.

    * ``exception`` — raise :class:`InjectedFault`.
    * ``hang`` — sleep ``hang_s`` seconds, then *continue normally* (a hung
      worker that eventually wakes; the runner's per-point timeout decides
      whether anyone is still listening).
    * ``death`` — ``os._exit(DEATH_EXIT_CODE)``: no cleanup, no exception
      propagation, exactly like an OOM kill or segfault.

    ``fatal_ok`` gates the two fatal actions; by default they are allowed
    only when running inside a child process (``multiprocessing``'s
    ``parent_process`` is set).  In the orchestrating process both are
    demoted to :class:`InjectedFault` so the frontier survives to handle
    them.  Returns the action taken-and-survived (``"hang"`` after its
    sleep) or ``None`` for a clean attempt.
    """
    plan = active_plan()
    if plan is None:
        return None
    action = plan.decide(key, attempt)
    if action is None:
        return None
    if fatal_ok is None:
        fatal_ok = multiprocessing.parent_process() is not None
    if action == FAULT_DEATH:
        if fatal_ok:
            os._exit(DEATH_EXIT_CODE)
            return FAULT_DEATH  # only reachable with a stubbed os._exit
        raise InjectedFault(
            f"injected worker death (demoted to exception in-process) "
            f"for point {key} attempt {attempt}"
        )
    if action == FAULT_HANG:
        if fatal_ok:
            time.sleep(plan.hang_s)
            return FAULT_HANG
        raise InjectedFault(
            f"injected hang (demoted to exception in-process) "
            f"for point {key} attempt {attempt}"
        )
    raise InjectedFault(
        f"injected exception for point {key} attempt {attempt}"
    )


__all__ = [
    "DEATH_EXIT_CODE",
    "ENV_VAR",
    "FAULT_DEATH",
    "FAULT_EXCEPTION",
    "FAULT_HANG",
    "FAULT_OK",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "install_plan",
    "maybe_inject",
]
