"""Deterministic fault injection for sweep execution.

The fault-tolerant runner in :mod:`repro.sweep.runner` promises that the
result store ends up byte-identical to a fault-free run no matter which
workers crash, hang, or raise along the way.  That promise is only worth
anything if it is *tested* against real failure modes, so this module gives
tests and the CI chaos job a way to inject the three that matter — worker
exceptions, hung workers, and hard worker death — deterministically:

Two independent plans live here:

* :class:`FaultPlan` sabotages *point execution* (worker exceptions, hangs,
  hard deaths) through :func:`maybe_inject`, hooked inside
  :func:`repro.sweep.runner.execute_point`.
* :class:`NetworkFaultPlan` sabotages *peer RPCs* (connection refused,
  mid-body disconnects, stalled responses, truncated/corrupted result
  bytes, flapping peers) through :func:`net_fault_action` /
  :func:`inject_net_fault`, hooked inside
  :class:`repro.service.client.ServiceClient` — which is how the
  distributed fabric's whole transport layer is chaos-tested the same way
  the pool runner already is.

The point-plan machinery:

* A :class:`FaultPlan` decides, per ``(point key, attempt)``, whether to
  inject and what.  Decisions are pure functions of the plan's ``seed`` and
  the point key (sha256-derived, not Python's randomized ``hash``), so the
  same plan injects the same faults in every process, at every worker
  count, on every platform — the precondition for asserting byte-identical
  stores under chaos.
* :func:`maybe_inject` is the single hook the runner's
  :func:`~repro.sweep.runner.execute_point` calls before doing any real
  work.  It is a no-op unless a plan is active.
* A plan is activated either in-process via :func:`install_plan` (tests) or
  through the :data:`ENV_VAR` environment variable holding the plan as JSON
  (the CI chaos job; inherited by pool workers under both the ``fork`` and
  ``spawn`` start methods).

Fatal faults (``hang``, ``death``) only manifest literally inside pool
worker processes.  When the runner executes a point in the orchestrating
process — single-worker runs, small inline shards, or the final
graceful-degradation attempt — they are demoted to an
:class:`InjectedFault` exception: killing or stalling the orchestrator is
not a *worker* fault, and would take the flush frontier down with it.

Every injected fault consumes one attempt, so a plan whose
``max_faults_per_point`` is below the runner's retry budget is guaranteed
to let every point eventually succeed — which is how the chaos CI job can
demand a byte-identical final store.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Environment variable read by :func:`active_plan`: a JSON object with
#: :meth:`FaultPlan.from_dict` keys.  Environment wiring is what lets the
#: CI chaos job inject faults into ``python -m repro.sweep run`` without a
#: dedicated CLI flag, and what carries the plan into pool workers.
ENV_VAR = "REPRO_FAULTS"

#: Injection actions, in the priority order :meth:`FaultPlan.decide` maps
#: its uniform draw onto.  ``FAULT_OK`` is only meaningful inside scripted
#: action lists ("this attempt succeeds").
FAULT_EXCEPTION = "exception"
FAULT_HANG = "hang"
FAULT_DEATH = "death"
FAULT_OK = "ok"
_ACTIONS = (FAULT_EXCEPTION, FAULT_HANG, FAULT_DEATH, FAULT_OK)

#: Exit status used for injected hard worker death — distinctive enough to
#: recognise in CI logs and process tables.
DEATH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """Raised by an injected ``exception`` fault (or a demoted fatal one).

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: injected
    faults stand in for arbitrary defects in user code and plugins, which
    the retry layer must survive without special-casing the library's own
    exception hierarchy.
    """


def _unit(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one (point, attempt)."""
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults to inject.

    ``*_rate`` values are per-attempt probabilities (their sum must not
    exceed 1).  ``max_faults_per_point`` caps how many *attempts* of one
    point may be sabotaged: attempts beyond the cap always run clean, so a
    runner allowed ``max_faults_per_point + 1`` attempts is guaranteed to
    finish every point.  ``scripted`` pins exact per-attempt actions for
    chosen point keys (tests targeting "kill attempt 1 of point X"), taking
    precedence over the seeded draw; attempts past the end of a script run
    clean.
    """

    seed: int = 0
    exception_rate: float = 0.0
    hang_rate: float = 0.0
    death_rate: float = 0.0
    max_faults_per_point: int = 2
    hang_s: float = 30.0
    scripted: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.scripted, Mapping):
            normalized = tuple(
                (key, tuple(actions)) for key, actions in self.scripted.items()
            )
        else:
            normalized = tuple(
                (key, tuple(actions)) for key, actions in self.scripted
            )
        object.__setattr__(self, "scripted", normalized)
        for rate_name in ("exception_rate", "hang_rate", "death_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"FaultPlan.{rate_name} must be in [0, 1], got {rate!r}"
                )
        total = self.exception_rate + self.hang_rate + self.death_rate
        if total > 1.0:
            raise ConfigurationError(
                f"FaultPlan rates must sum to at most 1, got {total}"
            )
        if self.max_faults_per_point < 0:
            raise ConfigurationError(
                "FaultPlan.max_faults_per_point must be non-negative, "
                f"got {self.max_faults_per_point}"
            )
        if self.hang_s < 0:
            raise ConfigurationError(
                f"FaultPlan.hang_s must be non-negative, got {self.hang_s}"
            )
        for key, actions in self.scripted:
            for action in actions:
                if action not in _ACTIONS:
                    raise ConfigurationError(
                        f"FaultPlan.scripted[{key!r}]: unknown action "
                        f"{action!r}; valid: {list(_ACTIONS)}"
                    )

    # -- decisions --------------------------------------------------------
    def decide(self, key: str, attempt: int) -> Optional[str]:
        """Action to inject for ``attempt`` (1-based) of point ``key``.

        Returns one of :data:`FAULT_EXCEPTION` / :data:`FAULT_HANG` /
        :data:`FAULT_DEATH`, or ``None`` for a clean attempt.  Pure and
        process-independent: the runner, the workers, and the tests all see
        the same schedule.
        """
        if attempt < 1:
            raise ConfigurationError(
                f"FaultPlan.decide: attempt is 1-based, got {attempt}"
            )
        for scripted_key, actions in self.scripted:
            if scripted_key == key:
                if attempt <= len(actions) and actions[attempt - 1] != FAULT_OK:
                    return actions[attempt - 1]
                return None
        if attempt > self.max_faults_per_point:
            return None
        draw = _unit(self.seed, key, attempt)
        if draw < self.death_rate:
            return FAULT_DEATH
        if draw < self.death_rate + self.hang_rate:
            return FAULT_HANG
        if draw < self.death_rate + self.hang_rate + self.exception_rate:
            return FAULT_EXCEPTION
        return None

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "exception_rate": self.exception_rate,
            "hang_rate": self.hang_rate,
            "death_rate": self.death_rate,
            "max_faults_per_point": self.max_faults_per_point,
            "hang_s": self.hang_s,
            "scripted": {key: list(actions) for key, actions in self.scripted},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"FaultPlan.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        return cls(**dict(data))

    def to_env(self) -> str:
        """JSON form for the :data:`ENV_VAR` environment variable."""
        return json.dumps(self.to_dict(), sort_keys=True)


# -- activation -----------------------------------------------------------
#: Plan installed in-process (takes precedence over the environment).
_installed: Optional[FaultPlan] = None
#: Memoized parse of the env var: ``(raw string, parsed plan)``.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process (and ``fork`` children created
    afterwards).  Use :data:`ENV_VAR` instead to reach ``spawn`` workers."""
    global _installed
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(
            f"install_plan expects a FaultPlan, got {type(plan).__name__}"
        )
    _installed = plan


def clear_plan() -> None:
    """Deactivate any in-process plan (the environment still applies)."""
    global _installed
    _installed = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect: installed one first, then :data:`ENV_VAR`.

    A malformed environment value raises :class:`ConfigurationError` — a
    chaos harness that silently fails to arm would let a broken runner pass
    its determinism gate.
    """
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _env_cache
    if _env_cache[0] == raw:
        return _env_cache[1]
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{ENV_VAR} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{ENV_VAR} must be a JSON object, got {type(data).__name__}"
        )
    plan = FaultPlan.from_dict(data)
    _env_cache = (raw, plan)
    return plan


def maybe_inject(
    key: str, attempt: int, fatal_ok: Optional[bool] = None
) -> Optional[str]:
    """Injection hook: act on the active plan's decision for this attempt.

    * ``exception`` — raise :class:`InjectedFault`.
    * ``hang`` — sleep ``hang_s`` seconds, then *continue normally* (a hung
      worker that eventually wakes; the runner's per-point timeout decides
      whether anyone is still listening).
    * ``death`` — ``os._exit(DEATH_EXIT_CODE)``: no cleanup, no exception
      propagation, exactly like an OOM kill or segfault.

    ``fatal_ok`` gates the two fatal actions; by default they are allowed
    only when running inside a child process (``multiprocessing``'s
    ``parent_process`` is set).  In the orchestrating process both are
    demoted to :class:`InjectedFault` so the frontier survives to handle
    them.  Returns the action taken-and-survived (``"hang"`` after its
    sleep) or ``None`` for a clean attempt.
    """
    plan = active_plan()
    if plan is None:
        return None
    action = plan.decide(key, attempt)
    if action is None:
        return None
    if fatal_ok is None:
        fatal_ok = multiprocessing.parent_process() is not None
    if action == FAULT_DEATH:
        if fatal_ok:
            os._exit(DEATH_EXIT_CODE)
            return FAULT_DEATH  # only reachable with a stubbed os._exit
        raise InjectedFault(
            f"injected worker death (demoted to exception in-process) "
            f"for point {key} attempt {attempt}"
        )
    if action == FAULT_HANG:
        if fatal_ok:
            time.sleep(plan.hang_s)
            return FAULT_HANG
        raise InjectedFault(
            f"injected hang (demoted to exception in-process) "
            f"for point {key} attempt {attempt}"
        )
    raise InjectedFault(
        f"injected exception for point {key} attempt {attempt}"
    )


# -- network faults --------------------------------------------------------
#: Environment variable read by :func:`active_net_plan`: a JSON object with
#: :meth:`NetworkFaultPlan.from_dict` keys.  Like :data:`ENV_VAR`, it lets
#: the CI chaos job arm the fabric's transport without any CLI flag.
NET_ENV_VAR = "REPRO_NET_FAULTS"

#: Network injection actions.  ``refuse`` fails before anything is sent
#: (connection refused); ``disconnect`` kills the connection after the
#: request went out (mid-body reset — the caller cannot know whether the
#: server acted); ``stall`` blocks for ``stall_s`` and then times out;
#: ``corrupt`` delivers the response with truncated/flipped bytes (the
#: receiver's digest validation must catch it); ``flap`` is a peer that is
#: down across *every* sabotaged attempt of the operation, not just one —
#: transient retry cannot ride it out, only failover can.  ``ok`` is only
#: meaningful inside scripted action lists.
NET_REFUSE = "refuse"
NET_DISCONNECT = "disconnect"
NET_STALL = "stall"
NET_CORRUPT = "corrupt"
NET_FLAP = "flap"
NET_OK = "ok"
_NET_ACTIONS = (NET_REFUSE, NET_DISCONNECT, NET_STALL, NET_CORRUPT,
                NET_FLAP, NET_OK)


class InjectedNetworkFault(ConnectionError):
    """Raised for injected ``refuse``/``flap``/``disconnect`` faults.

    A :class:`ConnectionError` (hence :class:`OSError`) subclass on
    purpose: the client's transient-retry layer must treat injected faults
    exactly like the real network errors they stand in for, without any
    knowledge of this module.
    """


class InjectedNetworkTimeout(TimeoutError):
    """Raised after an injected ``stall`` fault's sleep elapses.

    A :class:`TimeoutError` (hence :class:`OSError`) subclass, matching
    what a socket timeout raises on a genuinely stalled response.
    """


@dataclass(frozen=True)
class NetworkFaultPlan:
    """A seeded, serializable schedule of peer-RPC faults.

    Decisions are pure functions of ``(seed, peer, op, attempt)`` — the
    same plan injects the same faults in every process and at every
    cluster shape, which is what lets chaos runs assert byte-identical
    merged stores.  ``*_rate`` values are per-attempt probabilities (sum
    at most 1); ``flap_rate`` is drawn once per ``(peer, op)`` and, when
    it fires, makes every attempt up to ``max_faults_per_op`` refuse.
    ``max_faults_per_op`` caps sabotaged attempts per operation, so any
    retry budget above it is guaranteed to converge.  ``scripted`` pins
    exact per-attempt actions for chosen ``"peer op"`` keys, taking
    precedence over the seeded draw.
    """

    seed: int = 0
    refuse_rate: float = 0.0
    disconnect_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    flap_rate: float = 0.0
    max_faults_per_op: int = 2
    stall_s: float = 5.0
    scripted: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.scripted, Mapping):
            normalized = tuple(
                (key, tuple(actions)) for key, actions in self.scripted.items()
            )
        else:
            normalized = tuple(
                (key, tuple(actions)) for key, actions in self.scripted
            )
        object.__setattr__(self, "scripted", normalized)
        rate_names = ("refuse_rate", "disconnect_rate", "stall_rate",
                      "corrupt_rate", "flap_rate")
        for rate_name in rate_names:
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"NetworkFaultPlan.{rate_name} must be in [0, 1], "
                    f"got {rate!r}"
                )
        total = (self.refuse_rate + self.disconnect_rate + self.stall_rate
                 + self.corrupt_rate)
        if total > 1.0:
            raise ConfigurationError(
                "NetworkFaultPlan per-attempt rates must sum to at most 1, "
                f"got {total}"
            )
        if self.max_faults_per_op < 0:
            raise ConfigurationError(
                "NetworkFaultPlan.max_faults_per_op must be non-negative, "
                f"got {self.max_faults_per_op}"
            )
        if self.stall_s < 0:
            raise ConfigurationError(
                f"NetworkFaultPlan.stall_s must be non-negative, "
                f"got {self.stall_s}"
            )
        for key, actions in self.scripted:
            for action in actions:
                if action not in _NET_ACTIONS:
                    raise ConfigurationError(
                        f"NetworkFaultPlan.scripted[{key!r}]: unknown action "
                        f"{action!r}; valid: {list(_NET_ACTIONS)}"
                    )

    # -- decisions --------------------------------------------------------
    def decide(self, peer: str, op: str, attempt: int) -> Optional[str]:
        """Action to inject for ``attempt`` (1-based) of ``op`` at ``peer``.

        Scripted entries are keyed ``"{peer} {op}"``.  Attempts beyond
        ``max_faults_per_op`` (or past the end of a script) always run
        clean.
        """
        if attempt < 1:
            raise ConfigurationError(
                f"NetworkFaultPlan.decide: attempt is 1-based, got {attempt}"
            )
        key = f"{peer} {op}"
        for scripted_key, actions in self.scripted:
            if scripted_key == key:
                if attempt <= len(actions) and actions[attempt - 1] != NET_OK:
                    return actions[attempt - 1]
                return None
        if attempt > self.max_faults_per_op:
            return None
        # Flap is an op-level condition: one draw decides whether the peer
        # is down for this operation's whole sabotage window, so retrying
        # the same op cannot succeed until the attempt cap lifts it —
        # forcing the caller to fail over instead of waiting it out.
        if self.flap_rate and _unit(self.seed, f"flap|{key}", 0) < self.flap_rate:
            return NET_FLAP
        draw = _unit(self.seed, f"net|{key}", attempt)
        if draw < self.refuse_rate:
            return NET_REFUSE
        if draw < self.refuse_rate + self.disconnect_rate:
            return NET_DISCONNECT
        if draw < self.refuse_rate + self.disconnect_rate + self.stall_rate:
            return NET_STALL
        if draw < (self.refuse_rate + self.disconnect_rate + self.stall_rate
                   + self.corrupt_rate):
            return NET_CORRUPT
        return None

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "refuse_rate": self.refuse_rate,
            "disconnect_rate": self.disconnect_rate,
            "stall_rate": self.stall_rate,
            "corrupt_rate": self.corrupt_rate,
            "flap_rate": self.flap_rate,
            "max_faults_per_op": self.max_faults_per_op,
            "stall_s": self.stall_s,
            "scripted": {key: list(actions) for key, actions in self.scripted},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkFaultPlan":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"NetworkFaultPlan.from_dict: unknown key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        return cls(**dict(data))

    def to_env(self) -> str:
        """JSON form for the :data:`NET_ENV_VAR` environment variable."""
        return json.dumps(self.to_dict(), sort_keys=True)


#: Network plan installed in-process (takes precedence over the env).
_net_installed: Optional[NetworkFaultPlan] = None
#: Memoized parse of the env var: ``(raw string, parsed plan)``.
_net_env_cache: Tuple[Optional[str], Optional[NetworkFaultPlan]] = (None, None)


def install_net_plan(plan: NetworkFaultPlan) -> None:
    """Activate a network fault plan in this process (tests)."""
    global _net_installed
    if not isinstance(plan, NetworkFaultPlan):
        raise ConfigurationError(
            f"install_net_plan expects a NetworkFaultPlan, "
            f"got {type(plan).__name__}"
        )
    _net_installed = plan


def clear_net_plan() -> None:
    """Deactivate any in-process network plan (the env still applies)."""
    global _net_installed
    _net_installed = None


def active_net_plan() -> Optional[NetworkFaultPlan]:
    """The network plan in effect: installed first, then :data:`NET_ENV_VAR`."""
    if _net_installed is not None:
        return _net_installed
    raw = os.environ.get(NET_ENV_VAR)
    if not raw:
        return None
    global _net_env_cache
    if _net_env_cache[0] == raw:
        return _net_env_cache[1]
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{NET_ENV_VAR} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{NET_ENV_VAR} must be a JSON object, got {type(data).__name__}"
        )
    plan = NetworkFaultPlan.from_dict(data)
    _net_env_cache = (raw, plan)
    return plan


def net_fault_action(peer: str, op: str, attempt: int) -> Optional[str]:
    """The active plan's decision for this RPC attempt (no side effects).

    The client asks *before* the request so pre-flight faults can fire,
    then applies post-flight actions itself: ``disconnect`` after the
    request went out, ``corrupt`` to the received bytes (see
    :func:`corrupt_bytes`).  Returns ``None`` when no plan is active.
    """
    plan = active_net_plan()
    if plan is None:
        return None
    return plan.decide(peer, op, attempt)


def inject_net_fault(action: str, peer: str, op: str, attempt: int) -> None:
    """Raise the exception an injected pre/mid-flight ``action`` stands for.

    ``refuse``/``flap`` → :class:`InjectedNetworkFault` (connection
    refused); ``disconnect`` → :class:`InjectedNetworkFault` (reset);
    ``stall`` → sleep the plan's ``stall_s``, then
    :class:`InjectedNetworkTimeout`.  ``corrupt`` is not raised here — the
    caller applies :func:`corrupt_bytes` to the payload instead, because a
    corruption that never reaches the validator tests nothing.
    """
    where = f"{op} at {peer} (attempt {attempt})"
    if action in (NET_REFUSE, NET_FLAP):
        raise InjectedNetworkFault(
            f"injected connection refused ({action}) for {where}"
        )
    if action == NET_DISCONNECT:
        raise InjectedNetworkFault(
            f"injected mid-body disconnect for {where}"
        )
    if action == NET_STALL:
        plan = active_net_plan()
        time.sleep(plan.stall_s if plan is not None else 0.0)
        raise InjectedNetworkTimeout(
            f"injected stalled response for {where}"
        )
    raise ConfigurationError(
        f"inject_net_fault cannot raise for action {action!r}"
    )


def corrupt_bytes(payload: bytes) -> bytes:
    """Deterministically damage ``payload`` the way a torn transfer would.

    Truncates the tail (the classic mid-stream cut) and flips the high bit
    of a middle byte (line noise / bad proxy).  Both damages are chosen to
    be *detectable* — truncation breaks JSON framing, the flipped byte
    breaks UTF-8 or the canonical-bytes round-trip — because the point of
    injecting corruption is to prove the receiver's validation catches it.
    """
    if not payload:
        return payload
    cut = max(1, len(payload) - 3)
    damaged = bytearray(payload[:cut])
    damaged[len(damaged) // 2] ^= 0x80
    return bytes(damaged)


__all__ = [
    "DEATH_EXIT_CODE",
    "ENV_VAR",
    "FAULT_DEATH",
    "FAULT_EXCEPTION",
    "FAULT_HANG",
    "FAULT_OK",
    "FaultPlan",
    "InjectedFault",
    "InjectedNetworkFault",
    "InjectedNetworkTimeout",
    "NET_CORRUPT",
    "NET_DISCONNECT",
    "NET_ENV_VAR",
    "NET_FLAP",
    "NET_OK",
    "NET_REFUSE",
    "NET_STALL",
    "NetworkFaultPlan",
    "active_net_plan",
    "active_plan",
    "clear_net_plan",
    "clear_plan",
    "corrupt_bytes",
    "inject_net_fault",
    "install_net_plan",
    "install_plan",
    "maybe_inject",
    "net_fault_action",
]
