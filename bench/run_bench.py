#!/usr/bin/env python
"""Engine benchmark: kernel-variant throughput, ring vs conv at 2/4/8 clusters.

The ring/conv x cluster-count matrix is declared as a
:class:`repro.sweep.SweepSpec` and computed through the sweep runner against
a persistent result store under ``.benchmarks/`` — so repeat benchmark runs
get their simulation results as cache hits and only re-measure wall-clock
throughput.  Throughput is timed for BOTH kernel variants on every matrix
cell (median of ``--repeats``): the ``generic`` table-driven loop
(:func:`repro.engine.simulate`) and the per-config compiled ``specialized``
kernel (:mod:`repro.engine.codegen`), and the harness asserts they produce
identical :class:`KernelResult` totals before reporting the speedup ratio.

The harness then races the deliberately naive object-per-instruction
reference (``bench/naive_ref.py``) on the same trace and configuration.  The
naive model is the correctness oracle — the harness asserts agreement on
every result field across all three models — and the acceptance bars are:

* ``generic``   >= ``--min-speedup`` x naive (default 3x, as before);
* ``specialized`` >= ``--min-specialized-speedup`` x generic (default 1.3x;
  the full-size run comfortably clears 1.5x — CI uses the lower bar because
  single-vCPU runners are noisy at smoke sizes);
* ``batch`` (:func:`repro.engine.simulate_batch`) >=
  ``--min-batch-speedup`` x specialized (default 3x) in AGGREGATE
  instructions/sec over the sweep-throughput matrix: each cell races one
  ``simulate_batch`` call over ``--batch-lanes`` traces against a
  specialized-kernel loop over the same traces, and the gate is the
  summed-time ratio across all six cells (per-cell ratios are reported but
  not individually gated — conv cells sit near 2.5x while ring cells clear
  3.5x; the aggregate is what the sweep runner's wall-clock sees).

Writes ``BENCH_engine.json`` at the repo root (override with ``--out``),
including both variants' instr/sec so the speedup ratio is tracked over time.

Usage::

    python bench/run_bench.py             # full run (~200k-instruction trace)
    python bench/run_bench.py --smoke     # CI-sized quick run
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import statistics
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.common.config import EnergyConfig, ProcessorConfig
from repro.common.types import Topology
from repro.engine import KernelResult, get_kernel, simulate, simulate_batch
from repro.sweep import ResultStore, RetryPolicy, SweepSpec, run_sweep
from repro.workloads import generate_trace

from naive_ref import NaivePipeline

CLUSTER_COUNTS = (2, 4, 8)
TOPOLOGIES = (Topology.RING, Topology.CONV)

#: KernelResult fields the naive oracle must reproduce exactly — derived
#: from the dataclass so a newly added field is checked automatically (a
#: KeyError on the naive side then means the oracle wasn't taught it).
AGREEMENT_FIELDS = tuple(f.name for f in dataclasses.fields(KernelResult))


def time_variants(fns, repeats: int):
    """Interleaved median timing of several competing callables.

    Rounds alternate across *all* variants so an ambient slowdown (noisy
    single-vCPU CI runners) degrades every variant's round, not just one.
    Returns ``(medians, pairwise)`` where ``medians[i]`` is variant ``i``'s
    median seconds and ``pairwise[i][j]`` is the median of the per-round
    ``fns[i]_seconds / fns[j]_seconds`` ratios — the robust speedup
    estimate used for gating.
    """
    samples = [[] for _ in fns]
    for _ in range(repeats):
        for idx, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            samples[idx].append(time.perf_counter() - t0)
    medians = [statistics.median(s) for s in samples]
    pairwise = [
        [
            statistics.median(a / b for a, b in zip(samples[i], samples[j]))
            for j in range(len(fns))
        ]
        for i in range(len(fns))
    ]
    return medians, pairwise


def assert_variants_agree(topology: Topology, naive_result, kernel_result) -> None:
    """Field-by-field naive-vs-kernel agreement; raises on any mismatch."""
    kernel_dict = dataclasses.asdict(kernel_result)
    for name in AGREEMENT_FIELDS:
        if naive_result[name] != kernel_dict[name]:
            raise AssertionError(
                f"model divergence ({topology.value}): field {name!r} "
                f"naive={naive_result[name]!r} kernel={kernel_dict[name]!r}"
            )


def energy_per_instr(trace, cfg: ProcessorConfig):
    """Joules-proxy per instruction from BOTH kernel variants.

    Runs the trace through the generic and the specialized kernel with the
    per-event energy model enabled (default costs), asserts the breakdowns
    agree to the unit, and returns ``(generic_epi, specialized_epi)``.
    These runs are untimed: the throughput numbers are measured with the
    model off, which the emitted-source identity guarantees is free.
    """
    cfg_energy = cfg.with_(energy=EnergyConfig(enabled=True))
    generic_result = simulate(trace, cfg_energy)
    specialized_result = get_kernel(cfg_energy)(trace)
    if generic_result.energy != specialized_result.energy:
        raise AssertionError(
            f"energy divergence ({cfg.topology.value} x{cfg.n_clusters}): "
            f"generic={generic_result.energy!r} "
            f"specialized={specialized_result.energy!r}"
        )
    return generic_result.energy_per_instr, specialized_result.energy_per_instr


def bench_matrix(trace, args, store_path: str):
    """Drive the ring/conv matrix through the sweep runner, then time it.

    Returns ``(matrix, sweep_meta, worst_spec_speedup)``: the per-config
    result/throughput matrix keyed ``[topology][n_clusters]`` with both
    variants' throughput, the sweep summary fields, and the worst
    specialized-over-generic ratio observed.
    """
    spec = SweepSpec(
        name="bench-matrix",
        topologies=tuple(t.value for t in TOPOLOGIES),
        cluster_counts=CLUSTER_COUNTS,
        steerings=("dependence",),
        mixes=(args.mix,),
        n_instructions=args.n,
        seeds=(args.seed,),
    )
    points = spec.expand()
    store = ResultStore(store_path)
    # Fail fast: a silent retry would fold a failed attempt's wall-clock
    # into the cell it gates, polluting the speedup ratios.
    summary = run_sweep(points, store, workers=1,
                        policy=RetryPolicy(max_attempts=1))

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    worst_spec_speedup = float("inf")
    n = len(trace)
    for point in points:
        record = store.get(point.key())
        assert record is not None, f"sweep runner left {point.label()} uncomputed"
        cycles = record["result"]["cycles"]
        ipc = n / cycles if cycles else 0.0
        cfg = point.config
        specialized = get_kernel(cfg)
        generic_result = simulate(trace, cfg)
        specialized_result = specialized(trace)
        if generic_result != specialized_result:
            raise AssertionError(
                f"kernel-variant divergence on {point.label()}: generic and "
                f"specialized KernelResult totals differ"
            )
        if generic_result.cycles != cycles:
            raise AssertionError(
                f"stored sweep record for {point.label()} disagrees with "
                f"generic kernel ({cycles} vs {generic_result.cycles} cycles)"
            )
        (generic_s, specialized_s), pairwise = time_variants(
            [lambda c=cfg: simulate(trace, c), lambda: specialized(trace)],
            args.repeats,
        )
        speedup = pairwise[0][1]
        worst_spec_speedup = min(worst_spec_speedup, speedup)
        generic_epi, specialized_epi = energy_per_instr(trace, cfg)
        topo_key = cfg.topology.value
        out.setdefault(topo_key, {})[str(cfg.n_clusters)] = {
            "instructions": n,
            "cycles": cycles,
            "ipc": round(ipc, 4),
            "generic_seconds": round(generic_s, 4),
            "generic_instr_per_sec": round(n / generic_s),
            "specialized_seconds": round(specialized_s, 4),
            "specialized_instr_per_sec": round(n / specialized_s),
            "specialized_speedup": round(speedup, 2),
            "generic_energy_per_instr": round(generic_epi, 4),
            "specialized_energy_per_instr": round(specialized_epi, 4),
        }
        print(
            f"  kern {topo_key:4s} x{cfg.n_clusters}: ipc={ipc:6.3f}  "
            f"generic {n / generic_s / 1e3:7.0f} kinstr/s  "
            f"specialized {n / specialized_s / 1e3:7.0f} kinstr/s  "
            f"-> {speedup:.2f}x  epi={specialized_epi:.2f}"
        )
    sweep_meta = {
        "store": store_path,
        "n_points": summary.n_points,
        "cache_hits": summary.n_cached,
        "computed": summary.n_computed,
    }
    return out, sweep_meta, worst_spec_speedup


def bench_batch_sweep(args):
    """Batched sweep throughput: one ``simulate_batch`` call per matrix cell.

    Mirrors what ``kernel_variant="batch"`` does inside the sweep runner —
    every cell of the ring/conv x 2/4/8 matrix gets ``--batch-lanes``
    same-key experiment points executed as one stacked kernel call — and
    races that against the specialized kernel looped over the identical
    traces.  Rounds are interleaved (spec loop, then batch call, repeated)
    and each variant keeps its best (minimum) time per cell: at ~40s total
    the dominant noise source is ambient machine load, which only ever adds
    time, so min is the stable estimator where a median would need many
    more rounds to settle.

    The trace set is generated once and shared by all six cells.  The
    lane count and trace length are NOT shrunk under ``--smoke``: the batch
    kernel's advantage comes from amortizing per-instruction Python
    dispatch across lanes, so small smoke shapes (e.g. 256 lanes x 1000
    instructions) measure a genuinely different regime that sits well under
    the 3x bar.  Instead the smoke budget is held by capping this section
    at best-of-2 rounds.

    Returns ``(cells, aggregate_speedup, repeats_used)``; per-lane result
    equality against the specialized kernel is asserted on every cell.
    """
    lanes, n = args.batch_lanes, args.batch_n
    repeats = max(1, min(args.repeats, 2))
    print(f"generating {lanes} batch-lane traces (n={n}, shared across cells)")
    traces = [generate_trace(args.mix, n, seed=args.seed + k)
              for k in range(lanes)]

    cells: Dict[str, Dict[str, Dict[str, float]]] = {}
    total_spec = total_batch = 0.0
    for topology in TOPOLOGIES:
        for n_clusters in CLUSTER_COUNTS:
            cfg = ProcessorConfig(
                topology=topology, n_clusters=n_clusters,
                steering="dependence",
            )
            specialized = get_kernel(cfg)
            best_spec = best_batch = float("inf")
            spec_results = batch_results = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                spec_results = [specialized(trace) for trace in traces]
                spec_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                batch_results = simulate_batch(traces, cfg)
                batch_s = time.perf_counter() - t0
                best_spec = min(best_spec, spec_s)
                best_batch = min(best_batch, batch_s)
            for lane, (spec_r, batch_r) in enumerate(
                    zip(spec_results, batch_results)):
                if spec_r != batch_r:
                    raise AssertionError(
                        f"batch-kernel divergence ({topology.value} "
                        f"x{n_clusters}) on lane {lane}: specialized and "
                        f"batch KernelResult totals differ"
                    )
            total_spec += best_spec
            total_batch += best_batch
            speedup = best_spec / best_batch
            total_instr = lanes * n
            cells.setdefault(topology.value, {})[str(n_clusters)] = {
                "lanes": lanes,
                "instructions_per_lane": n,
                "specialized_seconds": round(best_spec, 4),
                "specialized_instr_per_sec": round(total_instr / best_spec),
                "batch_seconds": round(best_batch, 4),
                "batch_instr_per_sec": round(total_instr / best_batch),
                "batch_speedup": round(speedup, 2),
            }
            print(
                f"  batch {topology.value:4s} x{n_clusters}: "
                f"specialized {total_instr / best_spec / 1e6:5.2f} Minstr/s  "
                f"batch {total_instr / best_batch / 1e6:5.2f} Minstr/s  "
                f"-> {speedup:.2f}x"
            )
    aggregate = total_spec / total_batch
    print(f"  batch aggregate over matrix: {aggregate:.2f}x "
          f"(sum specialized {total_spec:.1f}s / sum batch {total_batch:.1f}s)")
    return cells, aggregate, repeats


def bench_naive_comparison(trace, repeats: int, n_clusters: int = 4):
    """Race naive vs generic vs specialized on the same trace/config."""
    n = len(trace)
    comparison = {}
    for topology in TOPOLOGIES:
        cfg = ProcessorConfig(n_clusters=n_clusters, topology=topology)
        naive = NaivePipeline(cfg)
        specialized = get_kernel(cfg)
        naive_result = naive.run(trace)
        generic_result = simulate(trace, cfg)
        specialized_result = specialized(trace)
        if generic_result != specialized_result:
            raise AssertionError(
                f"kernel-variant divergence ({topology.value}): generic and "
                f"specialized KernelResult totals differ"
            )
        assert_variants_agree(topology, naive_result, generic_result)
        # Energy model on: all three models must agree on the breakdown too
        # (the naive oracle charges every cost at its event site).
        cfg_energy = cfg.with_(energy=EnergyConfig(enabled=True))
        naive_energy = NaivePipeline(cfg_energy).run(trace)
        generic_energy = simulate(trace, cfg_energy)
        specialized_energy = get_kernel(cfg_energy)(trace)
        if generic_energy != specialized_energy:
            raise AssertionError(
                f"kernel-variant divergence ({topology.value}): energy-model "
                f"KernelResult totals differ"
            )
        assert_variants_agree(topology, naive_energy, generic_energy)
        epi = generic_energy.energy_per_instr
        (naive_s, generic_s, specialized_s), pairwise = time_variants(
            [
                lambda: naive.run(trace),
                lambda: simulate(trace, cfg),
                lambda: specialized(trace),
            ],
            repeats,
        )
        speedup = pairwise[0][1]
        spec_vs_naive = pairwise[0][2]
        comparison[topology.value] = {
            "n_clusters": n_clusters,
            "instructions": n,
            "results_match": True,
            "naive_instr_per_sec": round(n / naive_s),
            "generic_instr_per_sec": round(n / generic_s),
            "specialized_instr_per_sec": round(n / specialized_s),
            "speedup": round(speedup, 2),
            "specialized_vs_naive_speedup": round(spec_vs_naive, 2),
            "energy_per_instr": round(epi, 4),
        }
        print(
            f"  ref  {topology.value:4s} x{n_clusters}: "
            f"naive {n / naive_s / 1e3:6.0f} vs generic "
            f"{n / generic_s / 1e3:6.0f} vs specialized "
            f"{n / specialized_s / 1e3:6.0f} kinstr/s  "
            f"-> {speedup:.2f}x / {spec_vs_naive:.2f}x"
        )
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200_000,
                        help="trace length for kernel throughput runs")
    parser.add_argument("--naive-n", type=int, default=50_000,
                        help="trace length for the naive-vs-kernel race")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; instr/sec numbers are the median")
    parser.add_argument("--mix", default="int_heavy")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required generic-over-naive speedup")
    parser.add_argument("--min-specialized-speedup", type=float, default=1.3,
                        help="required specialized-over-generic speedup on "
                             "every matrix cell")
    parser.add_argument("--batch-lanes", type=int, default=1536,
                        help="lanes per simulate_batch call in the batched "
                             "sweep race (not shrunk by --smoke)")
    parser.add_argument("--batch-n", type=int, default=2000,
                        help="instructions per lane in the batched sweep "
                             "race (not shrunk by --smoke)")
    parser.add_argument("--min-batch-speedup", type=float, default=3.0,
                        help="required batch-over-specialized aggregate "
                             "instr/s ratio across the matrix")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small traces)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: <repo>/BENCH_engine.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        # 50k instructions keeps the whole smoke run in CI-friendly time
        # while staying big enough that the specialized kernel's fixed
        # per-call cost (the vectorized pre-pass) does not distort the
        # variant speedup ratio the gate checks.
        args.n = min(args.n, 50_000)
        args.naive_n = min(args.naive_n, 10_000)
        # Short runs are noisier; more repeats keeps the median honest.
        args.repeats = max(args.repeats, 5)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_path = args.out or os.path.join(repo_root, "BENCH_engine.json")

    print(f"generating {args.mix!r} traces (n={args.n}, naive_n={args.naive_n}, "
          f"seed={args.seed})")
    trace = generate_trace(args.mix, args.n, seed=args.seed)
    naive_trace = generate_trace(args.mix, args.naive_n, seed=args.seed)

    store_path = os.path.join(repo_root, ".benchmarks", "bench_sweep_store.jsonl")
    print(f"kernel throughput via sweep runner (median of {args.repeats}):")
    matrix, sweep_meta, worst_spec = bench_matrix(trace, args, store_path)
    print(f"  sweep store: {sweep_meta['cache_hits']}/{sweep_meta['n_points']} "
          f"cache hits ({store_path})")
    print("batched sweep race (best-of interleaved rounds):")
    batch_cells, batch_aggregate, batch_repeats = bench_batch_sweep(args)
    print(f"naive object-per-instruction reference race (median of {args.repeats}):")
    comparison = bench_naive_comparison(naive_trace, args.repeats)

    worst_speedup = min(entry["speedup"] for entry in comparison.values())
    worst_spec_vs_naive = min(
        entry["specialized_vs_naive_speedup"] for entry in comparison.values()
    )
    report = {
        "meta": {
            "mix": args.mix,
            "seed": args.seed,
            "n_instructions": args.n,
            "naive_n_instructions": args.naive_n,
            "repeats": args.repeats,
            "smoke": args.smoke,
            "python": sys.version.split()[0],
        },
        "matrix": matrix,
        "sweep": sweep_meta,
        "batch_sweep": {
            "lanes": args.batch_lanes,
            "instructions_per_lane": args.batch_n,
            "repeats": batch_repeats,
            "cells": batch_cells,
            "aggregate_speedup": round(batch_aggregate, 2),
        },
        "naive_comparison": comparison,
        "min_speedup_required": args.min_speedup,
        "worst_speedup": worst_speedup,
        "min_specialized_speedup_required": args.min_specialized_speedup,
        "worst_specialized_speedup": round(worst_spec, 2),
        "worst_specialized_vs_naive_speedup": worst_spec_vs_naive,
        "min_batch_speedup_required": args.min_batch_speedup,
        "batch_aggregate_speedup": round(batch_aggregate, 2),
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")

    failed = False
    if worst_speedup < args.min_speedup:
        print(
            f"FAIL: generic kernel is only {worst_speedup:.2f}x faster than "
            f"the naive reference (required: {args.min_speedup:.1f}x)",
            file=sys.stderr,
        )
        failed = True
    if worst_spec < args.min_specialized_speedup:
        print(
            f"FAIL: specialized kernel is only {worst_spec:.2f}x faster than "
            f"the generic kernel on the worst matrix cell "
            f"(required: {args.min_specialized_speedup:.1f}x)",
            file=sys.stderr,
        )
        failed = True
    if batch_aggregate < args.min_batch_speedup:
        print(
            f"FAIL: batch kernel aggregate is only {batch_aggregate:.2f}x the "
            f"specialized kernel across the sweep matrix "
            f"(required: {args.min_batch_speedup:.1f}x)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(f"OK: generic >= {args.min_speedup:.1f}x naive "
          f"(worst {worst_speedup:.2f}x); specialized >= "
          f"{args.min_specialized_speedup:.1f}x generic "
          f"(worst {worst_spec:.2f}x, {worst_spec_vs_naive:.2f}x naive); "
          f"batch aggregate >= {args.min_batch_speedup:.1f}x specialized "
          f"({batch_aggregate:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
