#!/usr/bin/env python
"""Engine benchmark: SoA kernel throughput, ring vs conv at 2/4/8 clusters.

The ring/conv x cluster-count matrix is declared as a
:class:`repro.sweep.SweepSpec` and computed through the sweep runner against
a persistent result store under ``.benchmarks/`` — so repeat benchmark runs
get their simulation results as cache hits and only re-measure wall-clock
throughput.  Throughput itself is still timed against direct
:func:`repro.engine.simulate` calls (best of ``--repeats``).

The harness then races the deliberately naive object-per-instruction
reference (``bench/naive_ref.py``) on the same trace and configuration.  The
naive model is the correctness oracle — the harness asserts cycle-for-cycle
agreement before reporting the speedup — and the PR acceptance bar requires
the SoA kernel to be at least ``--min-speedup`` (default 3x) faster.

Writes ``BENCH_engine.json`` at the repo root (override with ``--out``).

Usage::

    python bench/run_bench.py             # full run (~200k-instruction trace)
    python bench/run_bench.py --smoke     # CI-sized quick run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.common.config import ProcessorConfig
from repro.common.types import Topology
from repro.engine import simulate
from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.workloads import generate_trace

from naive_ref import NaivePipeline

CLUSTER_COUNTS = (2, 4, 8)
TOPOLOGIES = (Topology.RING, Topology.CONV)


def time_best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def bench_soa(trace, args, store_path: str):
    """Drive the ring/conv matrix through the sweep runner, then time it.

    Returns ``(matrix, sweep_meta)``: the per-config result/throughput
    matrix keyed ``[topology][n_clusters]``, and the sweep summary fields
    (points, cache hits) showing what the store already knew.
    """
    spec = SweepSpec(
        name="bench-matrix",
        topologies=tuple(t.value for t in TOPOLOGIES),
        cluster_counts=CLUSTER_COUNTS,
        steerings=("dependence",),
        mixes=(args.mix,),
        n_instructions=args.n,
        seeds=(args.seed,),
    )
    points = spec.expand()
    store = ResultStore(store_path)
    summary = run_sweep(points, store, workers=1)

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    n = len(trace)
    for point in points:
        record = store.get(point.key())
        assert record is not None, f"sweep runner left {point.label()} uncomputed"
        cycles = record["result"]["cycles"]
        ipc = n / cycles if cycles else 0.0
        cfg = point.config
        elapsed = time_best_of(lambda c=cfg: simulate(trace, c), args.repeats)
        ips = n / elapsed
        topo_key = cfg.topology.value
        out.setdefault(topo_key, {})[str(cfg.n_clusters)] = {
            "instructions": n,
            "cycles": cycles,
            "ipc": round(ipc, 4),
            "seconds": round(elapsed, 4),
            "instr_per_sec": round(ips),
        }
        print(
            f"  soa  {topo_key:4s} x{cfg.n_clusters}: "
            f"ipc={ipc:6.3f}  {ips / 1e3:8.0f} kinstr/s"
        )
    sweep_meta = {
        "store": store_path,
        "n_points": summary.n_points,
        "cache_hits": summary.n_cached,
        "computed": summary.n_computed,
    }
    return out, sweep_meta


def bench_naive_comparison(trace, repeats: int, n_clusters: int = 4):
    """Race naive vs SoA on the same trace/config for both topologies."""
    n = len(trace)
    comparison = {}
    for topology in TOPOLOGIES:
        cfg = ProcessorConfig(n_clusters=n_clusters, topology=topology)
        naive = NaivePipeline(cfg)
        naive_result = naive.run(trace)
        soa_result = simulate(trace, cfg)
        if naive_result["cycles"] != soa_result.cycles:
            raise AssertionError(
                f"model divergence ({topology.value}): naive={naive_result['cycles']} "
                f"cycles, soa={soa_result.cycles} cycles"
            )
        if naive_result["communications"] != soa_result.communications:
            raise AssertionError(
                f"model divergence ({topology.value}): communication counts differ"
            )
        naive_s = time_best_of(lambda: naive.run(trace), repeats)
        soa_s = time_best_of(lambda: simulate(trace, cfg), repeats)
        speedup = naive_s / soa_s
        comparison[topology.value] = {
            "n_clusters": n_clusters,
            "instructions": n,
            "cycles_match": True,
            "naive_instr_per_sec": round(n / naive_s),
            "soa_instr_per_sec": round(n / soa_s),
            "speedup": round(speedup, 2),
        }
        print(
            f"  ref  {topology.value:4s} x{n_clusters}: naive {n / naive_s / 1e3:6.0f} "
            f"kinstr/s vs soa {n / soa_s / 1e3:6.0f} kinstr/s  -> {speedup:.2f}x"
        )
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200_000,
                        help="trace length for SoA throughput runs")
    parser.add_argument("--naive-n", type=int, default=50_000,
                        help="trace length for the naive-vs-SoA race")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--mix", default="int_heavy")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small traces, 1 repeat)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: <repo>/BENCH_engine.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = min(args.n, 20_000)
        args.naive_n = min(args.naive_n, 10_000)
        args.repeats = 1

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_path = args.out or os.path.join(repo_root, "BENCH_engine.json")

    print(f"generating {args.mix!r} traces (n={args.n}, naive_n={args.naive_n}, "
          f"seed={args.seed})")
    trace = generate_trace(args.mix, args.n, seed=args.seed)
    naive_trace = generate_trace(args.mix, args.naive_n, seed=args.seed)

    store_path = os.path.join(repo_root, ".benchmarks", "bench_sweep_store.jsonl")
    print(f"SoA kernel throughput via sweep runner (best of {args.repeats}):")
    soa, sweep_meta = bench_soa(trace, args, store_path)
    print(f"  sweep store: {sweep_meta['cache_hits']}/{sweep_meta['n_points']} "
          f"cache hits ({store_path})")
    print(f"naive object-per-instruction reference race (best of {args.repeats}):")
    comparison = bench_naive_comparison(naive_trace, args.repeats)

    worst_speedup = min(entry["speedup"] for entry in comparison.values())
    report = {
        "meta": {
            "mix": args.mix,
            "seed": args.seed,
            "n_instructions": args.n,
            "naive_n_instructions": args.naive_n,
            "repeats": args.repeats,
            "smoke": args.smoke,
            "python": sys.version.split()[0],
        },
        "soa": soa,
        "sweep": sweep_meta,
        "naive_comparison": comparison,
        "min_speedup_required": args.min_speedup,
        "worst_speedup": worst_speedup,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")

    if worst_speedup < args.min_speedup:
        print(
            f"FAIL: SoA kernel is only {worst_speedup:.2f}x faster than the "
            f"naive reference (required: {args.min_speedup:.1f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: SoA kernel >= {args.min_speedup:.1f}x naive "
          f"(worst case {worst_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
