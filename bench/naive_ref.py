"""Deliberately naive object-per-instruction reference simulator.

This module exists only for the benchmark harness: it implements *exactly*
the timing model of :mod:`repro.engine.kernel`, but in the straightforward
object-oriented style the SoA kernel deliberately avoids — one mutable
``NaiveInstruction`` object per dynamic instruction holding references to its
producer objects, ``FunctionalUnit``/``NaiveCluster``/``Frontend`` classes
with a method call per pipeline stage, and latency/FU tables kept as dicts
keyed by enum members.  Because the model is identical, the benchmark asserts
cycle-for-cycle agreement with the SoA kernel before trusting the speedup
number: the reference is the correctness oracle, and the measured ratio is
the price of the object-per-instruction representation.

Kept out of the library on purpose; nothing under ``src/`` imports it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import ProcessorConfig
from repro.common.errors import ConfigurationError, SteeringError
from repro.common.types import (
    DEST_REGCLASS_FOR_CLASS,
    FU_FOR_CLASS,
    FuType,
    InstrClass,
    Topology,
)
from repro.engine.trace import (
    FLAG_L1_MISS,
    FLAG_L2_MISS,
    FLAG_MISPREDICT,
    Trace,
)
from repro.steering import BUILTIN_POLICIES, NaiveSteeringContext, get_policy


@dataclass
class NaiveInstruction:
    """One dynamic instruction, fully materialised as an object."""

    index: int
    opclass: InstrClass
    src1: Optional["NaiveInstruction"]
    src2: Optional["NaiveInstruction"]
    dst_reg: int
    flags: int
    cluster: Optional[int] = None
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    grant_cycle: Optional[int] = None

    @property
    def produces_value(self) -> bool:
        return DEST_REGCLASS_FOR_CLASS[self.opclass] is not None

    @property
    def fu_type(self) -> FuType:
        return FU_FOR_CLASS[self.opclass]


class FunctionalUnit:
    def __init__(self, kind: FuType) -> None:
        self.kind = kind
        self.free_at = 0

    def reserve(self, cycle: int, occupancy: int) -> None:
        self.free_at = cycle + occupancy


class NaiveCluster:
    def __init__(self, index: int, cfg: ProcessorConfig) -> None:
        self.index = index
        self.issue_width = cfg.cluster.issue_width
        self.units: Dict[FuType, List[FunctionalUnit]] = {
            kind: [FunctionalUnit(kind) for _ in range(cfg.cluster.fu_counts[kind])]
            for kind in FuType
        }
        self.issue_slots: Dict[int, int] = {}
        self.bus_slots: Dict[int, int] = {}

    def earliest_unit(self, kind: FuType) -> FunctionalUnit:
        best = self.units[kind][0]
        for unit in self.units[kind][1:]:
            if unit.free_at < best.free_at:
                best = unit
        return best

    def find_issue_slot(self, cycle: int) -> int:
        while self.issue_slots.get(cycle, 0) >= self.issue_width:
            cycle += 1
        self.issue_slots[cycle] = self.issue_slots.get(cycle, 0) + 1
        return cycle


class Interconnect:
    """Bus arbitration and result-availability rules for both topologies.

    ``hop_energy_cost`` is the per-hop energy charge (0 when the energy
    model is off): every hop tallied into the histogram also deposits
    ``cost * distance`` into ``bus_energy`` — the bus component is charged
    at the event site, as the energy model specifies.
    """

    def __init__(self, cfg: ProcessorConfig, clusters: List[NaiveCluster],
                 hop_energy_cost: int = 0) -> None:
        self.topology = cfg.topology
        self.n_clusters = cfg.n_clusters
        self.hop_latency = cfg.bus.hop_latency
        self.bandwidth = cfg.bus.bandwidth
        self.writeback_latency = cfg.bus.writeback_latency
        self.clusters = clusters
        self.communications = 0
        self.hop_histogram: Dict[int, int] = {}
        self.hop_energy_cost = hop_energy_cost
        self.bus_energy = 0

    def inject(self, cluster: NaiveCluster, cycle: int) -> int:
        busy = cluster.bus_slots
        while busy.get(cycle, 0) >= self.bandwidth:
            cycle += 1
        busy[cycle] = busy.get(cycle, 0) + 1
        self.communications += 1
        return cycle

    def availability(self, producer: NaiveInstruction, consumer_cluster: int) -> int:
        pc = producer.cluster
        if self.topology is Topology.RING:
            hops = (consumer_cluster - pc - 1) % self.n_clusters + 1
            self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + 1
            self.bus_energy += self.hop_energy_cost * hops
            return producer.grant_cycle + hops * self.hop_latency + self.writeback_latency
        if consumer_cluster == pc:
            return producer.complete_cycle  # intra-cluster bypass
        if producer.grant_cycle is None:
            producer.grant_cycle = self.inject(
                self.clusters[pc], producer.complete_cycle + self.writeback_latency
            )
        distance = abs(consumer_cluster - pc)
        if self.n_clusters - distance < distance:
            distance = self.n_clusters - distance
        self.hop_histogram[distance] = self.hop_histogram.get(distance, 0) + 1
        self.bus_energy += self.hop_energy_cost * distance
        return producer.grant_cycle + distance * self.hop_latency + self.writeback_latency


class Frontend:
    def __init__(self, cfg: ProcessorConfig) -> None:
        self.fetch_width = cfg.fetch_width
        self.window_size = cfg.window_size
        self.frontend_depth = cfg.frontend_depth
        self.fetch_cycle = 0
        self.fetched_this_cycle = 0
        self.redirect = 0
        self.rob: List[int] = [0] * cfg.window_size

    def fetch(self, instr: NaiveInstruction) -> int:
        if self.fetched_this_cycle >= self.fetch_width:
            self.fetch_cycle += 1
            self.fetched_this_cycle = 0
        if self.redirect > self.fetch_cycle:
            self.fetch_cycle = self.redirect
            self.fetched_this_cycle = 0
        slot_free = (
            self.rob[instr.index % self.window_size]
            if instr.index >= self.window_size
            else 0
        )
        if slot_free > self.fetch_cycle:
            self.fetch_cycle = slot_free
            self.fetched_this_cycle = 0
        self.fetched_this_cycle += 1
        return self.fetch_cycle + self.frontend_depth

    def redirect_at(self, cycle: int) -> None:
        if cycle > self.redirect:
            self.redirect = cycle

    def retire(self, instr: NaiveInstruction, last_retire: int) -> int:
        retire = max(instr.complete_cycle, last_retire)
        self.rob[instr.index % self.window_size] = retire
        return retire


class NaivePipeline:
    """Object-per-instruction twin of :class:`repro.engine.Pipeline`."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config

    def build_instructions(self, trace: Trace) -> List[NaiveInstruction]:
        instructions: List[NaiveInstruction] = []
        for i in range(len(trace)):
            s1 = trace.src1[i]
            s2 = trace.src2[i]
            instructions.append(
                NaiveInstruction(
                    index=i,
                    opclass=InstrClass(trace.opclass[i]),
                    src1=instructions[s1] if s1 >= 0 else None,
                    src2=instructions[s2] if s2 >= 0 else None,
                    dst_reg=trace.dst[i],
                    flags=trace.flags[i],
                )
            )
        return instructions

    def run(self, trace: Trace) -> Dict[str, object]:
        cfg = self.config
        for k in set(trace.opclass):
            klass = InstrClass(k)
            if klass is not InstrClass.NOP and not cfg.cluster.fu_counts[FU_FOR_CLASS[klass]]:
                raise ConfigurationError(
                    f"trace {trace.name!r} contains {klass.name} but the cluster "
                    "configuration has zero units of its functional-unit type"
                )
        latencies = {
            InstrClass.INT_ALU: cfg.latencies.int_alu,
            InstrClass.INT_MUL: cfg.latencies.int_mul,
            InstrClass.INT_DIV: cfg.latencies.int_div,
            InstrClass.FP_ADD: cfg.latencies.fp_add,
            InstrClass.FP_MUL: cfg.latencies.fp_mul,
            InstrClass.FP_DIV: cfg.latencies.fp_div,
            InstrClass.LOAD: cfg.latencies.load,
            InstrClass.FP_LOAD: cfg.latencies.load,
            InstrClass.STORE: cfg.latencies.store,
            InstrClass.FP_STORE: cfg.latencies.store,
            InstrClass.BRANCH: cfg.latencies.branch,
            InstrClass.NOP: 1,
        }
        occupancy = {
            klass: (lat if klass in (InstrClass.INT_DIV, InstrClass.FP_DIV) else 1)
            for klass, lat in latencies.items()
        }

        # Per-event energy accounting (see repro.energy for the model).
        # Deliberately NOT the shared fold helper: every cost is charged at
        # its event site so the differential tests check the kernels' folded
        # accounting against an independent implementation.
        energy_cfg = cfg.energy if cfg.energy.enabled else None
        if energy_cfg is not None:
            fu_energy = {
                klass: energy_cfg.fu.table()[int(klass)] for klass in InstrClass
            }
            e_fetch = e_steer = e_issue = e_operand = e_fu = 0
            e_cache = e_wakeup = 0
            retire_ptr = 0

        clusters = [NaiveCluster(c, cfg) for c in range(cfg.n_clusters)]
        interconnect = Interconnect(
            cfg, clusters,
            hop_energy_cost=energy_cfg.bus_hop if energy_cfg is not None else 0,
        )
        frontend = Frontend(cfg)
        instructions = self.build_instructions(trace)

        is_ring = cfg.topology is Topology.RING
        steer = cfg.steering
        # The three original policies stay inlined below; any other
        # registered policy steers through its object-protocol closure.
        # ``retire_cycles`` (the running max of completion, appended after
        # each retire) feeds both the energy model's wakeup-occupancy scan
        # and occupancy-aware steering plugins.
        plugin = None if steer in BUILTIN_POLICIES else get_policy(steer)
        track_retire = energy_cfg is not None or (
            plugin is not None and plugin.needs_retire
        )
        retire_cycles: List[int] = []
        steer_fn = None
        if plugin is not None:
            steer_fn = plugin.make_naive(NaiveSteeringContext(
                n_clusters=cfg.n_clusters,
                is_ring=is_ring,
                window_size=cfg.window_size,
                fetch_width=cfg.fetch_width,
                instructions=instructions,
                retire_cycles=retire_cycles,
            ))
        rr_counter = 0
        last_retire = 0
        mispredicts = 0
        l1_misses = 0
        l2_misses = 0
        issued_per_cluster = [0] * cfg.n_clusters
        class_counts = [0] * len(InstrClass)
        for instr in instructions:
            class_counts[int(instr.opclass)] += 1

        for instr in instructions:
            ready = frontend.fetch(instr)
            if energy_cfg is not None:
                e_fetch += energy_cfg.fetch
                # Wakeup/select energy scales with the reorder-window
                # occupancy at fetch (this instruction included).
                fetch_cycle = frontend.fetch_cycle
                while (retire_ptr < instr.index
                       and retire_cycles[retire_ptr] <= fetch_cycle):
                    retire_ptr += 1
                e_wakeup += energy_cfg.wakeup * (instr.index - retire_ptr + 1)

            # Steering.
            if steer == "dependence":
                critical = None
                if instr.src1 is not None:
                    critical = instr.src1
                    if (
                        instr.src2 is not None
                        and instr.src2.complete_cycle > instr.src1.complete_cycle
                    ):
                        critical = instr.src2
                elif instr.src2 is not None:
                    critical = instr.src2
                if critical is not None:
                    base = critical.cluster
                    cluster_idx = (base + 1) % cfg.n_clusters if is_ring else base
                else:
                    cluster_idx = rr_counter % cfg.n_clusters
                    rr_counter += 1
            elif steer == "modulo":
                cluster_idx = (instr.index // cfg.fetch_width) % cfg.n_clusters
            elif steer == "round_robin":
                cluster_idx = instr.index % cfg.n_clusters
            else:
                cluster_idx = steer_fn(instr, frontend.fetch_cycle)
                if not 0 <= cluster_idx < cfg.n_clusters:
                    raise SteeringError(
                        f"steering policy {steer!r} returned cluster "
                        f"{cluster_idx!r} for instruction {instr.index} "
                        f"(valid: 0..{cfg.n_clusters - 1})"
                    )
            instr.cluster = cluster_idx
            cluster = clusters[cluster_idx]
            if energy_cfg is not None:
                e_steer += energy_cfg.steer

            # Operand availability.
            for producer in (instr.src1, instr.src2):
                if producer is None:
                    continue
                if energy_cfg is not None:
                    e_operand += energy_cfg.operand_read
                avail = interconnect.availability(producer, cluster_idx)
                if avail > ready:
                    ready = avail

            # Issue.
            if instr.opclass is InstrClass.NOP:
                issue = ready
            else:
                unit = cluster.earliest_unit(instr.fu_type)
                issue = max(ready, unit.free_at)
                issue = cluster.find_issue_slot(issue)
                unit.reserve(issue, occupancy[instr.opclass])
                issued_per_cluster[cluster_idx] += 1
                if energy_cfg is not None:
                    e_issue += energy_cfg.issue
            instr.issue_cycle = issue

            # Execute.
            latency = latencies[instr.opclass]
            if energy_cfg is not None:
                e_fu += fu_energy[instr.opclass]
                if instr.opclass.is_memory:
                    if instr.flags & FLAG_L1_MISS:
                        e_cache += energy_cfg.l1_miss
                        if instr.flags & FLAG_L2_MISS:
                            e_cache += energy_cfg.l2_miss
                    else:
                        e_cache += energy_cfg.l1_hit
            if instr.flags:
                if instr.flags & FLAG_MISPREDICT:
                    mispredicts += 1
                if instr.flags & FLAG_L1_MISS:
                    l1_misses += 1
                    if instr.opclass.is_load:
                        latency += cfg.memory.l1d.miss_penalty
                        if instr.flags & FLAG_L2_MISS:
                            latency += cfg.memory.l2_miss_penalty
                    if instr.flags & FLAG_L2_MISS:
                        l2_misses += 1
            instr.complete_cycle = issue + latency

            # Writeback / interconnect.
            if instr.produces_value:
                if energy_cfg is not None:
                    e_operand += energy_cfg.result_write
                if is_ring:
                    instr.grant_cycle = interconnect.inject(
                        cluster, instr.complete_cycle
                    )
            elif instr.opclass.is_branch and instr.flags & FLAG_MISPREDICT:
                frontend.redirect_at(
                    instr.complete_cycle + cfg.branch.mispredict_penalty
                )

            last_retire = frontend.retire(instr, last_retire)
            if track_retire:
                retire_cycles.append(last_retire)

        n = len(instructions)
        cycles = last_retire + 1 if n else 0
        energy = None
        if energy_cfg is not None:
            energy = {
                "fetch": e_fetch,
                "steer": e_steer,
                "issue": e_issue,
                "operand": e_operand,
                "fu": e_fu,
                "bus": interconnect.bus_energy,
                "cache": e_cache,
                "wakeup": e_wakeup,
            }
            energy["total"] = sum(energy.values())
        return {
            "n_instructions": n,
            "cycles": cycles,
            "ipc": n / cycles if cycles else 0.0,
            "mispredicts": mispredicts,
            "l1_misses": l1_misses,
            "l2_misses": l2_misses,
            "communications": interconnect.communications,
            "hop_histogram": dict(sorted(interconnect.hop_histogram.items())),
            "issued_per_cluster": issued_per_cluster,
            "class_counts": class_counts,
            "energy": energy,
        }


__all__ = ["NaivePipeline", "NaiveInstruction"]
