#!/usr/bin/env python
"""Micro-benchmark for the stats primitives (`repro.common.counters`).

Measures the two hot reporting paths the engine leans on:

* ``Histogram.add`` + ``Histogram.mean`` — the mean is cached incrementally,
  so it must stay O(1) regardless of bin count;
* ``StatGroup.as_dict`` — must be O(members), i.e. flat in the number of
  histogram bins, since sweeps flatten thousands of groups.

Writes ``BENCH_stats.json`` at the repo root (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.common.counters import Histogram, StatGroup


def bench_histogram(n_ops: int, n_bins: int) -> dict:
    hist = Histogram("bench")
    t0 = time.perf_counter()
    for i in range(n_ops):
        hist.add(i % n_bins)
    add_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    acc = 0.0
    for _ in range(n_ops):
        acc += hist.mean()
    mean_elapsed = time.perf_counter() - t0
    assert acc >= 0
    return {
        "n_ops": n_ops,
        "n_bins": n_bins,
        "add_per_sec": round(n_ops / add_elapsed),
        "mean_per_sec": round(n_ops / mean_elapsed),
    }


def bench_as_dict(n_calls: int, n_members: int, n_bins: int) -> dict:
    group = StatGroup("bench")
    for m in range(n_members):
        group.counter(f"counter{m}").add(m)
        group.mean(f"mean{m}").add(float(m))
        hist = group.histogram(f"hist{m}")
        for b in range(n_bins):
            hist.add(b, b + 1)
    t0 = time.perf_counter()
    for _ in range(n_calls):
        group.as_dict()
    elapsed = time.perf_counter() - t0
    return {
        "n_calls": n_calls,
        "n_members": n_members,
        "bins_per_histogram": n_bins,
        "as_dict_per_sec": round(n_calls / elapsed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=500_000)
    parser.add_argument("--calls", type=int, default=5_000)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_path = args.out or os.path.join(repo_root, "BENCH_stats.json")

    report = {
        "histogram_small": bench_histogram(args.ops, n_bins=8),
        "histogram_large": bench_histogram(args.ops, n_bins=4096),
        "as_dict_small_bins": bench_as_dict(args.calls, n_members=20, n_bins=8),
        "as_dict_large_bins": bench_as_dict(args.calls, n_members=20, n_bins=2048),
    }
    # The point of the caching work: mean() and as_dict() must not degrade
    # with bin count.  Allow generous slack for timer noise.
    small, large = report["histogram_small"], report["histogram_large"]
    if large["mean_per_sec"] < small["mean_per_sec"] / 5:
        print("FAIL: Histogram.mean degrades with bin count", file=sys.stderr)
        return 1
    d_small, d_large = report["as_dict_small_bins"], report["as_dict_large_bins"]
    if d_large["as_dict_per_sec"] < d_small["as_dict_per_sec"] / 5:
        print("FAIL: StatGroup.as_dict degrades with histogram bin count",
              file=sys.stderr)
        return 1

    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, entry in report.items():
        print(f"{name}: {entry}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
